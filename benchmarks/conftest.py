"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper, prints it,
and persists the rendered text under ``benchmarks/results/`` so the
artifacts survive pytest's output capture.
"""

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a rendered table and save it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")
