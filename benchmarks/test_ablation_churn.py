"""Ablation — isolation and latency under vNode churn (§V-A dynamics).

The static Table IV experiment fills the PM once; production PMs see
continuous arrivals and departures, each resizing a vNode and extending
or shrinking pinnings.  This bench drives that churn and verifies the
paper's dynamic claims: re-pinning happens only on lifecycle events,
LLC isolation between vNodes survives the movement, and the per-level
latency ordering (premium lowest) holds throughout.
"""

from conftest import publish
from repro.analysis import format_table
from repro.perfmodel import ChurnParams, TestbedParams, run_churn_testbed


def compute():
    return run_churn_testbed(
        ChurnParams(base=TestbedParams(duration=900.0), event_interval=15.0)
    )


def test_churn_ablation(benchmark):
    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [[level, f"{ms:.2f}"] for level, ms in result.median_p90_ms.items()]
    rows += [
        ["churn deploys", result.deploys],
        ["churn removals", result.removals],
        ["pin changes (incl. warm fill)", result.pin_changes],
        ["max LLC groups shared", result.max_llc_violations],
        ["VMs at end", result.final_vms],
    ]
    publish(
        "ablation_churn",
        "Ablation — isolation under vNode churn (median p90, ms)\n"
        + format_table(["metric", "value"], rows),
    )
    assert result.deploys > 0 and result.removals > 0
    medians = result.median_p90_ms
    assert medians["1:1"] <= medians["2:1"] <= medians["3:1"]
    assert result.max_llc_violations <= 2
