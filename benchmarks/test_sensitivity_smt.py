"""Sensitivity — is the Table IV conclusion robust to SMT calibration?

The testbed substitute's central constant is the SMT pair speedup
(throughput of a physical core running both siblings, relative to one
thread).  Literature puts it at 1.2–1.4 for mixed workloads; we sweep
that range and assert the paper's qualitative conclusion — premium
preserved, highest level pays the co-hosting penalty — at every point,
so the reproduction does not hinge on one lucky constant.
"""

from conftest import publish
from repro.analysis import format_table
from repro.perfmodel import TestbedParams, run_testbed

SPEEDUPS = (1.2, 1.3, 1.4)


def compute():
    out = {}
    for speedup in SPEEDUPS:
        result = run_testbed(TestbedParams(smt_speedup=speedup, duration=900.0))
        out[speedup] = result.table4()
    return out


def test_smt_sensitivity(benchmark):
    tables = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for speedup, table in tables.items():
        for level, (base, slack, ratio) in table.items():
            rows.append([f"{speedup:g}", level, f"{base:.2f}", f"{slack:.2f}",
                         f"x{ratio:.2f}"])
    publish(
        "sensitivity_smt",
        "Sensitivity — SMT pair speedup vs Table IV conclusions\n"
        + format_table(
            ["smt_speedup", "level", "baseline (ms)", "slackvm (ms)", "overhead"],
            rows,
        ),
    )
    for speedup, table in tables.items():
        premium = table["1:1"][2]
        highest = table["3:1"][2]
        # Premium level preserved at every calibration point...
        assert premium < 1.3, speedup
        # ...and the top level pays more than premium does.
        assert highest > premium, speedup
        # Baseline ordering by level holds.
        assert table["1:1"][0] <= table["2:1"][0] <= table["3:1"][0] * 1.05
