"""Performance benchmark — incremental vs naive placement kernel.

Runs the ``repro bench engine`` harness on a small grid, verifies the
kernels place identically (the harness does this per cell), and
asserts the incremental kernel is faster on the scored-policy cell —
the speedup grows with cluster size (the committed
``BENCH_engine.json`` holds the full-grid numbers), so the threshold
here is deliberately loose for small grids and noisy machines.
Publishes the measured table to
``benchmarks/results/engine_kernel_speedup.txt``.
"""

from conftest import publish

from repro.bench import EngineBenchSpec, run_engine_bench

SPEC = EngineBenchSpec(
    hosts=(500,),
    policies=("progress", "first_fit", "best_fit"),
    vms_per_host=3.0,
)


def test_engine_kernel_speedup():
    payload = run_engine_bench(SPEC)
    lines = [
        f"placement-kernel speedup, {SPEC.hosts[0]} hosts "
        f"({payload['cells'][0]['num_events']} events, verified identical "
        "placements)",
    ]
    by_policy = {}
    for cell in payload["cells"]:
        by_policy[cell["policy"]] = cell["speedup"]
        inc = cell["kernels"]["incremental"]["events_per_s"]
        naive = cell["kernels"]["naive"]["events_per_s"]
        lines.append(
            f"  {cell['policy']:20s} incremental {inc:9.0f} ev/s  "
            f"naive {naive:9.0f} ev/s  speedup {cell['speedup']:5.2f}x"
        )
    publish("engine_kernel_speedup", "\n".join(lines))
    # Scored policies must beat the naive kernel even at this small
    # scale; first_fit's naive arm is already cheap (no score array),
    # so it only has to stay in the same ballpark.
    assert by_policy["progress"] > 1.05
    assert by_policy["best_fit"] > 1.05
    assert by_policy["first_fit"] > 0.7
