"""Table IV & Figure 2 — p90 response times, dedicated vs co-hosted.

Paper values (median of per-window p90s):
    1:1 : 1.16 ms -> 1.27 ms (x1.09)
    2:1 : 1.46 ms -> 1.65 ms (x1.13)
    3:1 : 3.47 ms -> 7.67 ms (x2.21)

We do not match the testbed's absolute milliseconds (our substrate is a
queueing model, not a physical EPYC worker); the asserted *shape* is:
baseline latency grows with the oversubscription level, premium 1:1 VMs
are preserved under co-hosting, and the highest level pays a clearly
larger penalty than the premium one.
"""

from conftest import RESULTS_DIR, publish
from repro.analysis.export import export_fig2_csv
import numpy as np

from repro.analysis import boxplot, render_fig2, render_table4
from repro.perfmodel import TestbedParams, run_testbed


def compute():
    return run_testbed(TestbedParams())


def test_table4_and_fig2(benchmark):
    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = result.table4()
    rendered = render_table4(table)
    publish("table4", "Table IV — median p90 response times (baseline vs SlackVM)\n" + rendered)
    quartiles = {
        "baseline": {k: v.quartiles_ms() for k, v in result.baseline.items()},
        "slackvm": {k: v.quartiles_ms() for k, v in result.slackvm.items()},
    }
    boxes = {}
    for scenario, perfs in (("baseline", result.baseline),
                            ("slackvm", result.slackvm)):
        for level, perf in perfs.items():
            ms = perf.p90s * 1e3
            boxes[f"{scenario} {level}"] = tuple(
                np.percentile(ms, [5, 25, 50, 75, 95])
            )
    publish(
        "fig2",
        "Figure 2 — p90 distribution quartiles (ms)\n" + render_fig2(quartiles)
        + "\n\nFigure 2 — box plots (whiskers at p5/p95, log axis)\n"
        + boxplot(boxes, width=48, log=True, unit="ms"),
    )
    export_fig2_csv(result, RESULTS_DIR / "fig2.csv")

    # Shape assertions (see module docstring).
    assert table["1:1"][0] <= table["2:1"][0] <= table["3:1"][0]
    premium_overhead = table["1:1"][2]
    highest_overhead = table["3:1"][2]
    assert premium_overhead < 1.25  # premium preserved (paper: x1.09)
    assert highest_overhead > 1.3  # highest level pays (paper: x2.21)
    assert highest_overhead > premium_overhead
    # Co-hosting fills one PM with all three levels in ~equal shares.
    counts = result.slackvm_vm_counts
    assert max(counts.values()) - min(counts.values()) <= 2
