"""Adoption sweep — converting a fraction of the fleet to SlackVM.

Providers do not flip a whole fleet at once.  This experiment sizes
mixed fleets where a fraction ``f`` of the PMs co-host every level
(SlackVM) and the remaining PMs stay dedicated to single levels (split
in the baseline's own proportions), sweeping ``f`` from 0 to 1.  The
savings should grow monotonically-ish with adoption and reach the full
shared-cluster number at 100 % — quantifying the incremental-migration
path the paper's architecture enables.
"""

from conftest import publish
from repro.analysis import format_table
from repro.core import OversubscriptionLevel, SlackVMConfig
from repro.hardware import SIM_WORKER, MachineSpec
from repro.simulator import VectorSimulation, minimal_cluster
from repro.workload import OVHCLOUD, WorkloadParams, generate_workload

SEED = 42
POPULATION = 300
MIX = "F"
FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
ALL_LEVELS = (1.0, 2.0, 3.0)


def compute():
    workload = generate_workload(
        WorkloadParams(catalog=OVHCLOUD, level_mix=MIX,
                       target_population=POPULATION, seed=SEED)
    )
    # Dedicated proportions from per-level baselines (First-Fit).
    per_level = {}
    for ratio in (1.0, 3.0):
        sub = [vm for vm in workload if vm.level.ratio == ratio]
        cfg = SlackVMConfig(levels=(OversubscriptionLevel(ratio),))
        per_level[ratio] = minimal_cluster(
            sub, SIM_WORKER, policy="first_fit", config=cfg
        ).pms
    baseline_total = sum(per_level.values())

    def host_plan(n: int, fraction: float) -> list[tuple[float, ...]]:
        """Level offers per host: the first PMs dedicated (cycled in
        baseline proportions), the last ``fraction`` share fully shared."""
        n_shared = round(fraction * n)
        n_dedicated = n - n_shared
        pattern: list[tuple[float, ...]] = []
        total = sum(per_level.values())
        # Largest-remainder split of the dedicated PMs per level.
        quotas = {
            r: per_level[r] * n_dedicated / total for r in per_level
        }
        counts = {r: int(q) for r, q in quotas.items()}
        leftover = n_dedicated - sum(counts.values())
        for r, _ in sorted(quotas.items(), key=lambda kv: kv[1] - int(kv[1]),
                           reverse=True)[:leftover]:
            counts[r] += 1
        for r in sorted(counts):
            pattern += [(r,)] * counts[r]
        pattern += [ALL_LEVELS] * n_shared
        return pattern

    results = {}
    for fraction in FRACTIONS:
        def factory(machines, fraction=fraction):
            return VectorSimulation(
                machines, config=SlackVMConfig(), policy="progress",
                fail_fast=True, host_levels=host_plan(len(machines), fraction),
            )

        sized = minimal_cluster(workload, SIM_WORKER,
                                simulation_factory=factory)
        results[fraction] = sized.pms
    return baseline_total, results


def test_adoption_sweep(benchmark):
    baseline_total, results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [f"{f:.0%}", pms, f"{100.0 * (baseline_total - pms) / baseline_total:.1f}"]
        for f, pms in results.items()
    ]
    publish(
        "adoption_sweep",
        f"Adoption sweep — SlackVM share of the fleet (OVHcloud {MIX}; "
        f"dedicated baseline {baseline_total} PMs)\n"
        + format_table(["SlackVM PMs share", "fleet size", "saved vs dedicated (%)"],
                       rows),
    )
    # Full adoption must not be worse than zero adoption...
    assert results[1.0] <= results[0.0]
    # ...and zero adoption reproduces the dedicated baseline closely
    # (same First-Fit packing, modulo the progress policy's choices).
    assert abs(results[0.0] - baseline_total) <= 2
    # Partial adoption already captures part of the gain.
    assert results[0.5] <= results[0.0]
