"""Figure 4 variant — the paper's suggested production composition.

§VII-B2: "Production-ready schedulers may therefore benefit from
incorporating our M/C ratio progress score ... complementing it with
their existing scheduling rules."  This bench re-runs the OVHcloud
Fig. 4 sweep with `progress_bestfit` (the progress score blended with a
best-fit packing rule) and checks the composition is at least as good
as the pure metric on every mix.
"""

from conftest import publish
from repro.analysis import fig4_grid, render_fig4
from repro.workload import OVHCLOUD

SEEDS = (42,)
POPULATION = 500


def compute():
    return {
        "progress": fig4_grid(OVHCLOUD, target_population=POPULATION,
                              seeds=SEEDS, policy="progress"),
        "progress_bestfit": fig4_grid(OVHCLOUD, target_population=POPULATION,
                                      seeds=SEEDS, policy="progress_bestfit"),
    }


def test_fig4_combined(benchmark):
    grids = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = []
    for name, grid in grids.items():
        text.append(f"Figure 4 variant — PM savings % with {name} (OVHcloud)")
        text.append(render_fig4(grid))
        text.append("")
    publish("fig4_combined_scheduler", "\n".join(text))
    pure = grids["progress"]
    combined = grids["progress_bestfit"]
    # The composition is at least as good on aggregate...
    assert sum(combined.values()) >= sum(pure.values()) - 1.0
    # ...and never materially worse on any single mix.
    for label in pure:
        assert combined[label] >= pure[label] - 3.0, label
