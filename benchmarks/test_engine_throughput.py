"""Performance benchmark — placement throughput of both engines.

Not a paper figure: guards the repository's own performance claims.
The vectorized engine must stay well ahead of the object path on
cluster-scale scoring, since the Fig. 3/4 sweeps run hundreds of
sizing simulations through it.
"""

import pytest

from repro.core import SlackVMConfig
from repro.hardware import MachineSpec
from repro.scheduling import slackvm_scheduler
from repro.simulator import Simulation, VectorSimulation, build_hosts
from repro.workload import OVHCLOUD, WorkloadParams, generate_workload

NUM_HOSTS = 60
MACHINE = MachineSpec("bench-pm", 32, 128.0)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadParams(catalog=OVHCLOUD, level_mix="E",
                       target_population=400, seed=0)
    )


def test_vector_engine_throughput(benchmark, workload):
    machines = [MachineSpec(f"pm-{i}", 32, 128.0) for i in range(NUM_HOSTS)]

    def run():
        return VectorSimulation(machines, policy="progress").run(workload)

    result = benchmark(run)
    assert result.feasible


def test_object_engine_throughput(benchmark, workload):
    def run():
        hosts = build_hosts(MACHINE, NUM_HOSTS, SlackVMConfig())
        return Simulation(hosts, slackvm_scheduler()).run(workload)

    result = benchmark(run)
    assert result.feasible
