"""Figure 4 — PM savings (%) across level mixes, Azure & OVHcloud.

Paper shape: gains concentrate on mixes combining 1:1 with 3:1 VMs
(complementary CPU-bound + memory-bound workloads) — up to 9.6% for
OVHcloud (distribution F) and 8.8% for Azure at low 1:1 shares — while
the no-3:1 diagonal shows only marginal threshold-effect gains.
"""

import os

from conftest import RESULTS_DIR, publish
from repro.analysis.export import export_fig4_csv
from repro.analysis import render_fig4
from repro.runner import parallel_fig4_grid
from repro.workload import AZURE, OVHCLOUD
from repro.workload.distributions import DISTRIBUTIONS

SEEDS = (42, 7)
POPULATION = 500
WORKERS = min(4, os.cpu_count() or 1)

NO_3TO1 = {"A", "B", "D", "G", "K"}
COMPLEMENTARY = {"E", "F", "I", "J"}  # mixes pairing 1:1 with 3:1


def compute():
    # Sharded over a process pool; bit-identical to the serial driver.
    return {
        "ovhcloud": parallel_fig4_grid(
            OVHCLOUD, target_population=POPULATION, seeds=SEEDS, workers=WORKERS
        ),
        "azure": parallel_fig4_grid(
            AZURE, target_population=POPULATION, seeds=SEEDS, workers=WORKERS
        ),
    }


def test_fig4(benchmark):
    grids = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = []
    for provider, grid in grids.items():
        text.append(f"Figure 4 — PM savings (%) for {provider} "
                    f"({POPULATION} VMs, seeds {SEEDS})")
        text.append(render_fig4(grid))
        text.append("")
    publish("fig4", "\n".join(text))
    for provider, grid in grids.items():
        export_fig4_csv(grid, RESULTS_DIR / f"fig4_{provider}.csv")

    for provider, grid in grids.items():
        # Pure single-level corners have no structural sharing gain.
        assert abs(grid["A"]) < 5.0
        assert abs(grid["O"]) < 5.0
        # Complementary mixes beat the no-3:1 diagonal on average.
        comp = sum(grid[k] for k in COMPLEMENTARY) / len(COMPLEMENTARY)
        diag = sum(grid[k] for k in NO_3TO1) / len(NO_3TO1)
        assert comp > diag
        # Headline magnitude: the best complementary mix lands in the
        # several-percent range the paper reports (9.6% / 8.8%).
        best = max(grid[k] for k in COMPLEMENTARY)
        assert 4.0 <= best <= 20.0

    # OVHcloud's distribution F is a strong saver (paper: 9.6%).
    assert grids["ovhcloud"]["F"] >= 4.0
