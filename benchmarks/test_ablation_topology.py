"""Ablation — topology-aware vs naive CPU selection (Algorithm 1).

Measures the isolation quality of the vNode layouts produced on the
testbed machine: LLC groups shared between vNodes (lower is better) and
vNode compactness (threads per spanned physical core — higher means
sibling threads were integrated, mirroring "a CPU model with fewer
cores").
"""

import numpy as np

from conftest import publish
from repro.analysis import format_table
from repro.core import DEFAULT_LEVELS, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import EPYC_7662_DUAL, epyc_7662_dual
from repro.localsched import LocalScheduler, shared_llc_violations

NUM_VMS = 60


def build(topology_aware: bool):
    rng = np.random.default_rng(1)
    agent = LocalScheduler(
        EPYC_7662_DUAL,
        SlackVMConfig(topology_aware=topology_aware, pooling=False),
        topology=epyc_7662_dual(),
    )
    for i in range(NUM_VMS):
        level = DEFAULT_LEVELS[i % 3]
        vcpus = int(rng.choice([1, 2, 4]))
        agent.deploy(VMRequest(vm_id=f"vm-{i}", spec=VMSpec(vcpus, 4.0), level=level))
    violations = shared_llc_violations(agent)
    topo = agent.topology
    compact = []
    for node in agent.vnodes:
        spanned = topo.physical_cores_spanned(node.cpu_ids)
        compact.append(node.num_cpus / spanned)
    return violations, float(np.mean(compact))


def compute():
    return {"aware": build(True), "naive": build(False)}


def test_topology_ablation(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        ["allocation", "shared LLC groups", "threads per physical core"],
        [[k, v[0], f"{v[1]:.2f}"] for k, v in results.items()],
    )
    publish("ablation_topology",
            "Ablation — Algorithm 1 topology-aware CPU selection\n" + table)
    aware_viol, aware_compact = results["aware"]
    naive_viol, naive_compact = results["naive"]
    assert aware_viol == 0  # full LLC isolation between vNodes
    assert naive_viol > 0
    assert aware_compact > naive_compact  # siblings integrated first
