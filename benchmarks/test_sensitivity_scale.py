"""Sensitivity — do the savings scale with cluster size? (§VII-B2)

The paper distinguishes two gain sources: the *complementarity* gain,
which "scales with the cluster size", and the *threshold effect* (one
partially-filled PM per dedicated cluster), which is "marginal, as it
does not scale with the number of VMs".  Sweeping the target population
on distribution F separates them: the percentage saving should persist
(not vanish) as clusters grow, while a pure threshold effect would
decay like 1/N.
"""

import numpy as np

from conftest import publish
from repro.analysis import evaluate_distribution, format_table
from repro.workload import OVHCLOUD

SEEDS = (42, 7)
POPULATIONS = (125, 250, 500, 1000)


def compute():
    out = {}
    for pop in POPULATIONS:
        outcomes = [
            evaluate_distribution(OVHCLOUD, "F", target_population=pop, seed=s)
            for s in SEEDS
        ]
        out[pop] = (
            float(np.mean([o.baseline_pms for o in outcomes])),
            float(np.mean([o.slackvm_pms for o in outcomes])),
            float(np.mean([o.savings_percent for o in outcomes])),
        )
    return out


def test_scale_sensitivity(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        ["target VMs", "baseline PMs", "slackvm PMs", "saved (%)"],
        [
            [pop, f"{b:.1f}", f"{s:.1f}", f"{p:.1f}"]
            for pop, (b, s, p) in rows.items()
        ],
    )
    publish("sensitivity_scale",
            "Sensitivity — savings vs cluster scale (OVHcloud F)\n" + table)
    # The complementarity gain persists at scale: the largest cluster
    # still saves materially (a pure threshold effect at 1000 VMs would
    # be ~ (n_levels-1)/cluster ~ 1.5%).
    assert rows[POPULATIONS[-1]][2] >= 3.0
    # And savings never trend to zero monotonically.
    savings = [p for _, _, p in rows.values()]
    assert max(savings[-2:]) >= 0.5 * max(savings[:2])
