"""Ablation — Algorithm 2 lines 12-15 (the negative-progress factor).

Compares shared-cluster sizes with the factor enabled vs disabled over
several mixes and seeds.

Observed result (recorded in EXPERIMENTS.md): the factor trades a small
amount of consolidation (~1 PM over the sweep) for rebalancing headroom
— it deliberately routes unbalancing VMs to lightly-loaded PMs, which
"improves our chances of counterbalancing the bias later on" (§VI) but
costs a little immediate packing.  The assertion bounds that cost.
"""

import numpy as np

from conftest import publish
from repro.analysis import format_table
from repro.hardware import SIM_WORKER
from repro.simulator import minimal_cluster
from repro.workload import OVHCLOUD, WorkloadParams, generate_workload

MIXES = ("E", "F", "H", "I")
SEEDS = (42, 7)
POPULATION = 300


def compute():
    rows = {}
    for mix in MIXES:
        with_f, without_f = [], []
        for seed in SEEDS:
            workload = generate_workload(
                WorkloadParams(catalog=OVHCLOUD, level_mix=mix,
                               target_population=POPULATION, seed=seed)
            )
            with_f.append(minimal_cluster(workload, SIM_WORKER, policy="progress").pms)
            without_f.append(
                minimal_cluster(workload, SIM_WORKER, policy="progress_no_factor").pms
            )
        rows[mix] = (float(np.mean(with_f)), float(np.mean(without_f)))
    return rows


def test_negative_factor_ablation(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        ["mix", "PMs with factor", "PMs without factor"],
        [[m, f"{w:.1f}", f"{wo:.1f}"] for m, (w, wo) in rows.items()],
    )
    publish("ablation_negative_factor",
            "Ablation — Algorithm 2 negative-progress factor\n" + table)
    total_with = sum(w for w, _ in rows.values())
    total_without = sum(wo for _, wo in rows.values())
    # The factor's consolidation cost stays small (a couple of PMs over
    # the whole sweep); its benefit is rebalancing headroom, not packing.
    assert total_with <= total_without + 2.5
