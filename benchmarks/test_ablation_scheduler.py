"""Ablation — where does the gain come from: sharing or the metric?

Sizes the same shared cluster under First-Fit, Best-Fit and the
Algorithm 2 progress score, against the dedicated-clusters baseline.

Observed result (also recorded in EXPERIMENTS.md): most of the PM
saving comes from *sharing* the cluster across oversubscription levels;
the progress score stays within one PM of the other policies on final
cluster size while winning on stranded resources (Fig. 3).  This is
consistent with the paper, whose headline comparison is dedicated vs
shared — the metric is an incentive plugged "alongside their other
criteria", not a standalone packing silver bullet.
"""

import numpy as np

from conftest import publish
from repro.analysis import format_table
from repro.core import OversubscriptionLevel, SlackVMConfig
from repro.hardware import SIM_WORKER
from repro.simulator import minimal_cluster
from repro.workload import OVHCLOUD, WorkloadParams, generate_workload

SEEDS = (42, 7, 3)
POPULATION = 500
POLICIES = ("first_fit", "best_fit", "progress", "progress_bestfit")


def compute():
    dedicated_all, shared_all = [], {p: [] for p in POLICIES}
    for seed in SEEDS:
        workload = generate_workload(
            WorkloadParams(catalog=OVHCLOUD, level_mix="F",
                           target_population=POPULATION, seed=seed)
        )
        dedicated = 0
        for ratio in (1.0, 3.0):
            sub = [vm for vm in workload if vm.level.ratio == ratio]
            cfg = SlackVMConfig(levels=(OversubscriptionLevel(ratio),))
            dedicated += minimal_cluster(
                sub, SIM_WORKER, policy="first_fit", config=cfg
            ).pms
        dedicated_all.append(dedicated)
        for policy in POLICIES:
            shared_all[policy].append(
                minimal_cluster(workload, SIM_WORKER, policy=policy).pms
            )
    return float(np.mean(dedicated_all)), {
        p: float(np.mean(v)) for p, v in shared_all.items()
    }


def test_scheduler_ablation(benchmark):
    dedicated, shared = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [["dedicated first-fit (baseline)", f"{dedicated:.1f}", "0.0"]]
    for policy, pms in shared.items():
        saving = 100.0 * (dedicated - pms) / dedicated
        rows.append([f"shared {policy}", f"{pms:.1f}", f"{saving:.1f}"])
    publish(
        "ablation_scheduler",
        "Ablation — scheduler policy on the shared cluster "
        f"(OVHcloud F, mean over seeds {SEEDS})\n"
        + format_table(["configuration", "PMs", "saved (%)"], rows),
    )
    # Sharing helps regardless of policy on this complementary mix...
    assert all(pms < dedicated for pms in shared.values())
    # ...the pure progress score stays within ~2 PMs of the best policy
    # (it optimizes stranded resources, not final cluster size)...
    assert shared["progress"] <= min(shared.values()) + 2.0
    # ...and composing it with an existing packing rule — the paper's
    # suggested production setup — closes the gap.
    assert shared["progress_bestfit"] <= min(shared.values()) + 1.0
