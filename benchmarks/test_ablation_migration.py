"""Ablation — live-migration rebalancing (paper §VIII future work).

Runs the shared cluster with a daily consolidation pass and compares
the minimal cluster size against the no-migration SlackVM scheduler.
Migration can only help (it repairs fragmentation that arrivals and
departures leave behind), at the cost of VM moves.
"""

from conftest import publish
from repro.analysis import format_table
from repro.core import SlackVMConfig
from repro.hardware import SIM_WORKER
from repro.migration import MigratingSimulation
from repro.simulator import minimal_cluster
from repro.workload import OVHCLOUD, WorkloadParams, generate_workload

SEED = 42
POPULATION = 300
DAY = 86_400.0


def compute():
    workload = generate_workload(
        WorkloadParams(catalog=OVHCLOUD, level_mix="F",
                       target_population=POPULATION, seed=SEED)
    )
    plain = minimal_cluster(workload, SIM_WORKER, policy="progress")

    moves = {}

    def factory(machines):
        sim = MigratingSimulation(
            machines, config=SlackVMConfig(), policy="progress",
            fail_fast=True, rebalance_interval=DAY,
        )
        moves["sim"] = sim
        return sim

    migrating = minimal_cluster(workload, SIM_WORKER, simulation_factory=factory)
    return plain.pms, migrating.pms, moves["sim"].total_migrations


def test_migration_ablation(benchmark):
    plain_pms, migrating_pms, migrations = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    table = format_table(
        ["configuration", "PMs", "migrations"],
        [
            ["slackvm (no migration)", plain_pms, 0],
            ["slackvm + daily rebalance", migrating_pms, migrations],
        ],
    )
    publish("ablation_migration",
            "Ablation — live-migration consolidation (future work §VIII)\n" + table)
    assert migrating_pms <= plain_pms
