"""Ablation — heterogeneous hardware and per-PM target ratios (§VI).

"The algorithm computes the target ratio on an individual PM basis,
thereby accommodating variations in hardware settings within a given
cluster."  We size a cluster built from alternating memory-light and
memory-heavy PM generations and compare First-Fit (hardware-blind)
against the progress score (routes each VM to the PM whose own M/C
ratio it balances).
"""

from conftest import publish
from repro.analysis import format_table
from repro.hardware import MachineSpec
from repro.simulator import minimal_cluster
from repro.workload import OVHCLOUD, WorkloadParams, generate_workload

SEED = 42
POPULATION = 300

#: Two PM generations: an older memory-light box and a newer
#: memory-heavy one (target ratios 2.5 and 6 GB/core).
OLD_GEN = MachineSpec("old-gen", 32, 80.0)
NEW_GEN = MachineSpec("new-gen", 32, 192.0)
PATTERN = [OLD_GEN, NEW_GEN]


def compute():
    workload = generate_workload(
        WorkloadParams(catalog=OVHCLOUD, level_mix="E",
                       target_population=POPULATION, seed=SEED)
    )
    out = {}
    for policy in ("first_fit", "progress", "progress_bestfit"):
        sized = minimal_cluster(workload, PATTERN, policy=policy)
        out[policy] = sized.pms
    out["lower_bound"] = minimal_cluster(
        workload, PATTERN, policy="progress"
    ).lower_bound
    return out


def test_heterogeneous_ablation(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    lb = results.pop("lower_bound")
    table = format_table(
        ["policy", "PMs (mixed old/new-gen cluster)"],
        [[p, n] for p, n in results.items()] + [["(lower bound)", lb]],
    )
    publish("ablation_heterogeneous",
            "Ablation — per-PM target ratios on heterogeneous hardware\n" + table)
    # The hardware-aware scores must not lose to hardware-blind First-Fit.
    assert results["progress"] <= results["first_fit"] + 1
    assert results["progress_bestfit"] <= results["first_fit"]
