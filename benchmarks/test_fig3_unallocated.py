"""Figure 3 — unallocated resource shares across distributions A-O.

Paper shape (OVHcloud): low-oversubscription mixes strand memory
(CPU-bound clusters), high mixes strand CPU (memory-bound clusters);
SlackVM reduces stranded resources for the large majority of mixes,
with only marginal changes where all levels saturate the same resource
(A, B, D, G, K — the mixes without 3:1 VMs).
"""

import os

from conftest import RESULTS_DIR, publish
from repro.analysis.export import export_fig3_csv
from repro.analysis import grouped_hbar, render_fig3
from repro.runner import parallel_fig3_series
from repro.workload import OVHCLOUD

SEED = 42
POPULATION = 500
WORKERS = min(4, os.cpu_count() or 1)


def compute():
    # Sharded over a process pool; bit-identical to the serial driver.
    return parallel_fig3_series(
        OVHCLOUD, target_population=POPULATION, seed=SEED, workers=WORKERS
    )


def test_fig3(benchmark):
    outcomes = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish(
        "fig3",
        "Figure 3 — unallocated resources at peak, dedicated vs SlackVM "
        f"(OVHcloud, {POPULATION} VMs, seed {SEED})\n" + render_fig3(outcomes),
    )
    export_fig3_csv(outcomes, RESULTS_DIR / "fig3.csv")
    chart = grouped_hbar(
        list(outcomes),
        {
            "baseline CPU": [o.baseline_unallocated.cpu * 100 for o in outcomes.values()],
            "baseline MEM": [o.baseline_unallocated.mem * 100 for o in outcomes.values()],
            "slackvm  CPU": [o.slackvm_unallocated.cpu * 100 for o in outcomes.values()],
            "slackvm  MEM": [o.slackvm_unallocated.mem * 100 for o in outcomes.values()],
        },
        width=36,
        unit="%",
    )
    (RESULTS_DIR / "fig3_chart.txt").write_text(chart + "\n", encoding="utf-8")

    # CPU-bound end: pure 1:1 strands far more memory than CPU.
    a = outcomes["A"].baseline_unallocated
    assert a.mem > 2 * a.cpu
    # Memory-bound end: pure 3:1 strands far more CPU than memory.
    o = outcomes["O"].baseline_unallocated
    assert o.cpu > 2 * o.mem
    # SlackVM reduces combined stranding on most mixed distributions.
    improved = 0
    for label, out in outcomes.items():
        base = out.baseline_unallocated.cpu + out.baseline_unallocated.mem
        slack = out.slackvm_unallocated.cpu + out.slackvm_unallocated.mem
        if slack < base + 1e-9:
            improved += 1
    assert improved >= 11  # "a large majority of the explored distributions"
    # The flagship complementary mix improves on both dimensions.
    f = outcomes["F"]
    assert f.slackvm_unallocated.cpu < f.baseline_unallocated.cpu
    assert f.slackvm_unallocated.mem < f.baseline_unallocated.mem
