"""Ablation — §V-B pooling of oversubscribed vNodes.

Pooling lets a looser-level VM use a stricter oversubscribed vNode's
slack when its own vNode cannot grow ("upgrading" the VM).  On tightly
packed clusters this admits deployments that would otherwise be
rejected, so the minimal cluster with pooling can only be smaller or
equal.
"""

from conftest import publish
from repro.analysis import format_table
from repro.core import SlackVMConfig
from repro.hardware import SIM_WORKER
from repro.simulator import minimal_cluster
from repro.workload import OVHCLOUD, WorkloadParams, generate_workload

MIXES = ("H", "L", "M")  # mixes with meaningful 2:1 + 3:1 coexistence
SEED = 42
POPULATION = 300


def compute():
    out = {}
    for mix in MIXES:
        workload = generate_workload(
            WorkloadParams(catalog=OVHCLOUD, level_mix=mix,
                           target_population=POPULATION, seed=SEED)
        )
        pooled = minimal_cluster(
            workload, SIM_WORKER, policy="progress", config=SlackVMConfig(pooling=True)
        )
        unpooled = minimal_cluster(
            workload, SIM_WORKER, policy="progress", config=SlackVMConfig(pooling=False)
        )
        out[mix] = (pooled.pms, pooled.result.pooled_placements, unpooled.pms)
    return out


def test_pooling_ablation(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        ["mix", "PMs pooled", "upgraded placements", "PMs unpooled"],
        [[m, p, n, u] for m, (p, n, u) in rows.items()],
    )
    publish("ablation_pooling", "Ablation — §V-B oversubscribed-vNode pooling\n" + table)
    for mix, (pooled_pms, upgrades, unpooled_pms) in rows.items():
        assert pooled_pms <= unpooled_pms + 1
    # Pooling actually fires somewhere in the sweep.
    assert any(n > 0 for _, n, _ in rows.values())
