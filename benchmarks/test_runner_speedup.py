"""Runner scaling: a 16-cell Fig.4-style sweep at 1 vs 4 workers.

Demonstrates the acceptance criterion of the parallel runner: on a
machine with >= 4 cores, sharding the sweep over 4 worker processes
cuts wall clock by >= 2x while the sorted checkpoint stays
byte-identical to the serial run (the determinism contract).

On smaller machines the speedup assertion is skipped, but the parity
check always runs and the measured numbers are published to
``benchmarks/results/runner_speedup.txt`` either way.
"""

import os
import time
from pathlib import Path

import pytest

from conftest import RESULTS_DIR, publish
from repro.runner import SweepSpec, run_sweep

# 8 mixes x 2 seeds = 16 cells, each hiding a minimal_cluster search
# for the baseline levels plus the shared cluster.
SPEC = SweepSpec(
    providers=("ovhcloud",),
    mixes=("A", "C", "E", "F", "H", "J", "M", "O"),
    seeds=(42, 7),
    target_population=400,
)
CORES = os.cpu_count() or 1


def _timed_sweep(workers: int, out: Path) -> tuple[float, "object"]:
    started = time.perf_counter()
    result = run_sweep(SPEC, workers=workers, out=str(out))
    return time.perf_counter() - started, result


def test_runner_speedup(tmp_path):
    serial_s, serial = _timed_sweep(1, tmp_path / "serial.jsonl")
    parallel_s, parallel = _timed_sweep(4, tmp_path / "parallel.jsonl")
    assert serial.ok and parallel.ok

    serial_lines = sorted((tmp_path / "serial.jsonl").read_text().splitlines())
    parallel_lines = sorted((tmp_path / "parallel.jsonl").read_text().splitlines())
    assert serial_lines == parallel_lines  # bit-identical sorted JSONL

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    publish(
        "runner_speedup",
        "\n".join(
            [
                f"16-cell fig4-style sweep ({SPEC.target_population} VMs/cell), "
                f"{CORES} cores available",
                f"  --workers 1 : {serial_s:7.2f}s",
                f"  --workers 4 : {parallel_s:7.2f}s",
                f"  speedup     : {speedup:7.2f}x",
                "  sorted checkpoints byte-identical: yes",
            ]
        ),
    )
    if CORES < 4:
        pytest.skip(f"only {CORES} core(s); speedup demonstrated in CI")
    assert speedup >= 2.0
