"""Ablation — memory oversubscription (paper §VIII / footnote 2).

The paper's evaluation never oversubscribes memory, but notes providers
"may opt to oversubscribe DRAM to a limited extent" (OpenStack default:
1.5:1) and lists memory partitioning as future work.  This bench applies
a 1.5:1 memory ratio to the oversubscribed levels of a memory-bound mix
(OVHcloud, distribution M: 50% 2:1 + 50% 3:1): the physical memory
reservation per VM drops, shifting the bottleneck back toward CPU and
shrinking the cluster.
"""

from conftest import publish
from repro.analysis import format_table
from repro.core import OversubscriptionLevel, SlackVMConfig
from repro.hardware import SIM_WORKER
from repro.simulator import minimal_cluster, unallocated_at_peak
from repro.workload import OVHCLOUD, WorkloadParams, generate_workload, remap_levels

SEED = 42
POPULATION = 300
MIX = "M"  # 0% 1:1, 50% 2:1, 50% 3:1 — heavily memory-bound

PLAIN_LEVELS = (
    OversubscriptionLevel(2.0),
    OversubscriptionLevel(3.0),
)
MEMORY_LEVELS = (
    OversubscriptionLevel(2.0, mem_ratio=1.5),
    OversubscriptionLevel(3.0, mem_ratio=1.5),
)


def compute():
    trace = generate_workload(
        WorkloadParams(catalog=OVHCLOUD, level_mix=MIX,
                       target_population=POPULATION, seed=SEED)
    )
    out = {}
    for label, levels in (("memory 1:1", PLAIN_LEVELS), ("memory 1.5:1", MEMORY_LEVELS)):
        workload = remap_levels(trace, levels)
        cfg = SlackVMConfig(levels=levels)
        sized = minimal_cluster(workload, SIM_WORKER, policy="progress", config=cfg)
        shares = unallocated_at_peak(sized.result)
        out[label] = (sized.pms, shares.cpu, shares.mem)
    return out


def test_memory_oversubscription_ablation(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        ["configuration", "PMs", "CPU unalloc (%)", "MEM unalloc (%)"],
        [
            [label, pms, f"{cpu * 100:.1f}", f"{mem * 100:.1f}"]
            for label, (pms, cpu, mem) in rows.items()
        ],
    )
    publish("ablation_memory_oversub",
            f"Ablation — DRAM oversubscription on mix {MIX} (OVHcloud)\n" + table)
    plain_pms, plain_cpu, _ = rows["memory 1:1"]
    over_pms, over_cpu, _ = rows["memory 1.5:1"]
    # Memory oversubscription shrinks the memory-bound cluster...
    assert over_pms < plain_pms
    # ...by converting stranded CPU into hosted VMs.
    assert over_cpu < plain_cpu
