"""Table I — average vCPU & vRAM requests per VM (Azure, OVHcloud).

Paper values: Azure 2.25 vCPUs / 4.8 GB; OVHcloud 3.24 vCPUs / 10.05 GB.
"""

import pytest

from conftest import publish
from repro.analysis import render_table1, table1_row
from repro.workload import PROVIDERS

PAPER = {"azure": (2.25, 4.8), "ovhcloud": (3.24, 10.05)}


def compute():
    return {name: table1_row(cat) for name, cat in PROVIDERS.items()}


def test_table1(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    rendered = render_table1(
        {name: (r.mean_vcpus, r.mean_mem_gb) for name, r in rows.items()}
    )
    publish("table1", "Table I — mean vCPU & vRAM per VM\n" + rendered)
    for name, (vcpu, vram) in PAPER.items():
        assert rows[name].mean_vcpus == pytest.approx(vcpu, abs=0.005)
        assert rows[name].mean_mem_gb == pytest.approx(vram, abs=0.01)
