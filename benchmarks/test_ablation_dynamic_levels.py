"""Ablation — dynamic oversubscription levels (paper §VIII future work).

"While our vNodes adopted static oversubscription levels, they could
potentially benefit from dynamically computed levels.  This dynamic
approach has the potential to further enhance PM resource utilization."

Dynamic sizing reserves CPUs for the *predicted peak demand* instead of
the sold worst case, so its headroom depends on how far real usage sits
below ``1/ratio``.  We contrast two workloads on Azure's CPU-bound
2:1-only mix (distribution K):

* an *interactive-heavy* mix (the paper's default 10/60/30 behaviour
  split) — usage is close to the 2:1 worst case, so dynamic sizing
  falls back to (almost) static reservations and saves nothing;
* a *batch/storage-heavy* mix (50% idle VMs — the paper notes such
  workloads tolerate much higher oversubscription) — predicted peaks
  sit far below the static reservation and whole PMs are saved.
"""

from conftest import publish
from repro.analysis import format_table
from repro.core import SlackVMConfig
from repro.dynamiclevels import DynamicLevelParams, DynamicLevelSimulation
from repro.hardware import SIM_WORKER
from repro.simulator import minimal_cluster
from repro.workload import AZURE, WorkloadParams, generate_workload

SEED = 42
POPULATION = 300
MIX = "K"  # 100% 2:1 — CPU-bound on Azure (M/C 3.0 vs target 4)

BEHAVIOURS = {
    "interactive-heavy": {"idle": 0.10, "stress": 0.60, "interactive": 0.30},
    "batch-heavy": {"idle": 0.50, "stress": 0.40, "interactive": 0.10},
}


def compute():
    out = {}
    for label, shares in BEHAVIOURS.items():
        workload = generate_workload(
            WorkloadParams(catalog=AZURE, level_mix=MIX,
                           target_population=POPULATION, seed=SEED,
                           behaviour_shares=shares)
        )
        static = minimal_cluster(workload, SIM_WORKER, policy="progress")

        def factory(machines):
            return DynamicLevelSimulation(
                machines, config=SlackVMConfig(), policy="progress",
                fail_fast=True, params=DynamicLevelParams(max_ratio=6.0),
            )

        # The default search floor assumes static CPU accounting; the
        # dynamic engine can pack below it, so search from 1.
        dynamic = minimal_cluster(workload, SIM_WORKER,
                                  simulation_factory=factory, lower_bound=1)
        out[label] = (static.pms, dynamic.pms)
    return out


def test_dynamic_levels_ablation(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        ["workload", "PMs static", "PMs dynamic", "extra saved (%)"],
        [
            [m, s, d, f"{100.0 * (s - d) / s:.1f}"]
            for m, (s, d) in rows.items()
        ],
    )
    publish("ablation_dynamic_levels",
            "Ablation — static vs dynamic oversubscription levels "
            f"(Azure, mix {MIX})\n" + table)
    # Dynamic sizing never reserves more than static...
    for label, (static_pms, dynamic_pms) in rows.items():
        assert dynamic_pms <= static_pms
    # ...and pays off on batch/storage-like low-usage workloads.
    static_b, dynamic_b = rows["batch-heavy"]
    assert dynamic_b < static_b
