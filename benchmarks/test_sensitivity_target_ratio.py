"""Sensitivity — PM hardware M/C ratio vs. SlackVM gains (§III-B).

The paper argues the whole mechanism hinges on where the workload's
per-level M/C ratios sit relative to the *hardware* target ratio: at
2 GB/core every level is memory-bound (no complementarity, nothing to
pool); at 4 GB/core OVHcloud's 1:1 (3.1) and 3:1 (5.8) straddle the
target and complement each other.  This bench sweeps the PM memory
size for distribution F and shows the savings peak where the target
ratio separates the levels.
"""

from conftest import publish
from repro.analysis import evaluate_distribution, format_table
from repro.hardware import MachineSpec
from repro.workload import OVHCLOUD

SEED = 42
POPULATION = 300
#: PM generations: 32 cores with increasing memory (M/C 2, 3, 4, 6).
MEM_SIZES = (64.0, 96.0, 128.0, 192.0)


def compute():
    out = {}
    for mem in MEM_SIZES:
        machine = MachineSpec(f"pm-{int(mem)}", 32, mem)
        outcome = evaluate_distribution(
            OVHCLOUD, "F", machine=machine,
            target_population=POPULATION, seed=SEED,
        )
        out[machine.target_ratio] = (
            outcome.baseline_pms, outcome.slackvm_pms, outcome.savings_percent
        )
    return out


def test_target_ratio_sensitivity(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        ["PM M/C (GB/core)", "baseline PMs", "slackvm PMs", "saved (%)"],
        [
            [f"{ratio:g}", base, slack, f"{saving:.1f}"]
            for ratio, (base, slack, saving) in rows.items()
        ],
    )
    publish("sensitivity_target_ratio",
            "Sensitivity — PM target ratio vs SlackVM gains (OVHcloud F)\n" + table)
    # At 2 GB/core both levels are memory-bound (1:1 at 3.1 and 3:1 at
    # 5.8 both exceed 2): no complementarity to harvest.
    assert rows[2.0][2] <= rows[4.0][2]
    # The 4 GB/core point — the paper's configuration — straddles the
    # levels and shows material savings.
    assert rows[4.0][2] >= 4.0
