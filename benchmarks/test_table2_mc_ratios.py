"""Table II — M/C ratio of oversubscribed VMs (GB per provisioned core).

Paper values:
    Azure    : 2.1 / 3.0 / 4.5 at 1:1 / 2:1 / 3:1
    OVHcloud : 3.1 / 3.9 / 5.8
"""

import pytest

from conftest import publish
from repro.analysis import render_table2, table2_row
from repro.workload import PROVIDERS

PAPER = {
    "azure": {1.0: 2.1, 2.0: 3.0, 3.0: 4.5},
    "ovhcloud": {1.0: 3.1, 2.0: 3.9, 3.0: 5.8},
}


def compute():
    return {name: table2_row(cat) for name, cat in PROVIDERS.items()}


def test_table2(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    rendered = render_table2({name: r.ratios for name, r in rows.items()})
    publish("table2", "Table II — M/C ratio per oversubscription level\n" + rendered)
    for name, expected in PAPER.items():
        for level, value in expected.items():
            assert rows[name].ratios[level] == pytest.approx(value, abs=0.05)
