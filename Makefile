PYTHON ?= python

.PHONY: install test bench repro examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -p no:randomly --ignore=tests/test_examples.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

repro:
	$(PYTHON) scripts/reproduce_all.py -o REPORT.md

repro-fast:
	$(PYTHON) scripts/reproduce_all.py --fast -o REPORT.md

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
