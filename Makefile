PYTHON ?= python

.PHONY: install test bench bench-engine bench-shard golden repro examples clean lint lint-graph typecheck sweep-oversub-smoke serve-smoke

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -p no:randomly --ignore=tests/test_examples.py

test-quick:
	$(PYTHON) -m pytest tests/ -x -q -m "not slow" --ignore=tests/test_examples.py

# Determinism & simulation-safety static analysis (rules R001-R013).
# Exit codes: 0 clean, 1 new findings, 2 usage error.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.devtools.lint src scripts --baseline lint-baseline.json

# Index-cache smoke: cold run builds .reprolint-cache.json, warm run
# must reuse it end-to-end (zero reparses) — both dump the import
# graph and exit 0.
lint-graph:
	rm -f .reprolint-cache.json
	PYTHONPATH=src $(PYTHON) -m repro.devtools.lint src scripts --graph > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro.devtools.lint src scripts --graph \
		| $(PYTHON) -c "import json,sys; g=json.load(sys.stdin); \
			assert g['cache']['parsed'] == 0, g['cache']; \
			assert not g['violations'] and not g['cycles'], g['violations'] or g['cycles']; \
			print('warm graph: %d modules, %d edges, cache fully reused' \
				% (len(g['modules']), len(g['edges'])))"

# mypy --strict via the [tool.mypy] config in pyproject.toml (the
# lenient modules are per-module overrides there).  Needs the `dev`
# extra: pip install -e .[dev]
typecheck:
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		|| { echo "mypy not installed — pip install -e .[dev]"; exit 1; }
	$(PYTHON) -m mypy -p repro

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate the committed placement-kernel baseline (quiet machine!).
# Includes the 50k/100k-host scale tier — budget ~30-45 minutes, the
# naive reference arm is milliseconds per event at 100k hosts.
bench-engine:
	$(PYTHON) -m repro bench engine --scale-hosts 50000,100000 \
		-o BENCH_engine.json

# Sharded-dispatcher bench: one verified 4-shard 50k-host cell
# (serial pruned vs pooled vs inline; records the measured pool wall
# ratio and the critical-path speedup).  Not written to the committed
# baseline — use bench-engine with --shard-hosts for that.
bench-shard:
	PYTHONPATH=src $(PYTHON) -m repro bench engine --hosts 500 \
		--policies progress --shard-hosts 50000 --shard-counts 4 \
		-o bench_shard.json

# Regenerate the golden decision-trace corpus (tests/fixtures/golden).
golden:
	$(PYTHON) scripts/regen_golden.py

# Dynamic-oversubscription smoke: the StaticRatio no-op contract
# (byte-identical golden traces on both kernels) plus a small strategy
# sweep through the CLI.
sweep-oversub-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/oversub/test_golden_static.py -q
	PYTHONPATH=src $(PYTHON) -m repro oversub --population 60 --seed 3 \
		--update-every 1800

# Online-service smoke: the serving suite, a 30s-virtual-time run at a
# fixed seed (completes in well under a second of wall time) with a
# parseable SLO report and finite p99, and a clean determinism lint on
# the package (no baseline allowance).  Mirrors CI's serving-smoke job.
serve-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/serving -q
	PYTHONPATH=src $(PYTHON) -m repro serve --duration 30 --rate 50 \
		--seed 7 --report serving_slo.json
	PYTHONPATH=src $(PYTHON) -c "import json, math; \
		r = json.load(open('serving_slo.json')); \
		p99 = r['latency']['placement_p99_s']; \
		assert math.isfinite(p99) and p99 > 0, p99; \
		print('p99 %.3f ms, %d arrivals' % (p99 * 1e3, r['counts']['arrivals']))"
	PYTHONPATH=src $(PYTHON) -m repro.devtools.lint src/repro/serving

repro:
	$(PYTHON) scripts/reproduce_all.py -o REPORT.md

repro-fast:
	$(PYTHON) scripts/reproduce_all.py --fast -o REPORT.md

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	rm -f .reprolint-cache.json
	find . -name __pycache__ -type d -exec rm -rf {} +
