"""Control-plane service tests."""

import pytest

from repro.controlplane import CloudController, VMState
from repro.core import (
    CapacityError,
    ConfigError,
    LEVEL_1_1,
    LEVEL_2_1,
    LEVEL_3_1,
    OversubscriptionLevel,
    SlackVMConfig,
    VMSpec,
)
from repro.hardware import MachineSpec


def controller(n=2, cpus=8, mem=32.0, **kw):
    return CloudController(
        [MachineSpec(f"pm-{i}", cpus, mem) for i in range(n)], **kw
    )


class TestLifecycle:
    def test_request_places_vm(self):
        c = controller()
        ticket = c.request(VMSpec(2, 4.0), LEVEL_2_1)
        assert ticket.state is VMState.ACTIVE
        assert ticket.host in (0, 1)
        assert c.state().active_vms == 1

    def test_ids_are_unique_and_sequential(self):
        c = controller()
        a = c.request(VMSpec(1, 1.0), LEVEL_1_1)
        b = c.request(VMSpec(1, 1.0), LEVEL_1_1)
        assert a.vm_id != b.vm_id

    def test_delete_frees_capacity(self):
        c = controller(n=1, cpus=4)
        t = c.request(VMSpec(4, 4.0), LEVEL_1_1)
        c.delete(t.vm_id)
        assert c.state().active_vms == 0
        t2 = c.request(VMSpec(4, 4.0), LEVEL_1_1)
        assert t2.state is VMState.ACTIVE

    def test_double_delete_rejected(self):
        c = controller()
        t = c.request(VMSpec(1, 1.0), LEVEL_1_1)
        c.delete(t.vm_id)
        with pytest.raises(CapacityError):
            c.delete(t.vm_id)

    def test_unknown_vm_rejected(self):
        with pytest.raises(CapacityError):
            controller().delete("ghost")
        with pytest.raises(CapacityError):
            controller().ticket("ghost")

    def test_unoffered_level_rejected(self):
        c = controller(config=SlackVMConfig(levels=(LEVEL_1_1,)))
        with pytest.raises(ConfigError):
            c.request(VMSpec(1, 1.0), LEVEL_3_1)


class TestPendingQueue:
    def test_overflow_goes_pending(self):
        c = controller(n=1, cpus=4)
        c.request(VMSpec(4, 4.0), LEVEL_1_1)
        waiting = c.request(VMSpec(2, 2.0), LEVEL_1_1)
        assert waiting.state is VMState.PENDING
        assert c.state().pending_vms == 1

    def test_delete_drains_pending_fifo(self):
        c = controller(n=1, cpus=4)
        first = c.request(VMSpec(4, 4.0), LEVEL_1_1)
        queued = c.request(VMSpec(4, 4.0), LEVEL_1_1)
        c.delete(first.vm_id)
        assert c.ticket(queued.vm_id).state is VMState.ACTIVE
        assert c.state().pending_vms == 0

    def test_smaller_request_can_overtake_blocked_head(self):
        c = controller(n=1, cpus=4)
        filler = c.request(VMSpec(3, 3.0), LEVEL_1_1)
        big = c.request(VMSpec(4, 4.0), LEVEL_1_1)  # blocked
        small = c.request(VMSpec(2, 2.0), LEVEL_1_1)  # also queued
        c.delete(filler.vm_id)
        # 4 CPUs free: big (head) takes them; small stays queued.
        assert c.ticket(big.vm_id).state is VMState.ACTIVE
        assert c.ticket(small.vm_id).state is VMState.PENDING

    def test_pending_vm_can_be_cancelled(self):
        c = controller(n=1, cpus=2)
        c.request(VMSpec(2, 2.0), LEVEL_1_1)
        queued = c.request(VMSpec(2, 2.0), LEVEL_1_1)
        c.delete(queued.vm_id)
        assert c.state().pending_vms == 0

    def test_drain_is_fifo_fair_across_multiple_deletes(self):
        # Regression for the serving layer's fairness contract: with
        # equally-sized waiters, repeated deletes must promote them in
        # strict arrival order — no later request may jump the queue.
        c = controller(n=1, cpus=4)
        active = [c.request(VMSpec(2, 2.0), LEVEL_1_1) for _ in range(2)]
        waiters = [c.request(VMSpec(2, 2.0), LEVEL_1_1) for _ in range(4)]
        assert all(w.state is VMState.PENDING for w in waiters)
        for i, victim in enumerate(active):
            c.delete(victim.vm_id)
            promoted = [w for w in waiters
                        if c.ticket(w.vm_id).state is VMState.ACTIVE]
            assert promoted == waiters[: i + 1]
        assert c.state().pending_vms == 2

    def test_queue_cap(self):
        c = controller(n=1, cpus=1, max_pending=1)
        c.request(VMSpec(1, 1.0), LEVEL_1_1)
        c.request(VMSpec(1, 1.0), LEVEL_1_1)  # queued
        with pytest.raises(CapacityError):
            c.request(VMSpec(1, 1.0), LEVEL_1_1)


class TestInspection:
    def test_cluster_state_shares(self):
        c = controller(n=2, cpus=8, mem=32.0)
        c.request(VMSpec(4, 16.0), LEVEL_1_1)
        state = c.state()
        assert state.cpu_allocation_share == pytest.approx(4 / 16)
        assert state.mem_allocation_share == pytest.approx(16 / 64)

    def test_describe_host(self):
        c = controller()
        t = c.request(VMSpec(2, 4.0), LEVEL_2_1)
        snap = c.describe_host(t.host)
        assert snap["num_vms"] == 1

    def test_audit_log_records_decisions(self):
        c = controller(n=1, cpus=4)
        t = c.request(VMSpec(4, 4.0), LEVEL_1_1)
        c.request(VMSpec(2, 2.0), LEVEL_1_1)  # queued
        c.delete(t.vm_id)
        actions = [a for a, _, _ in c.audit_log]
        assert actions == ["place", "queue", "delete", "place"]

    def test_list_vms_filter(self):
        c = controller(n=1, cpus=4)
        c.request(VMSpec(4, 4.0), LEVEL_1_1)
        c.request(VMSpec(4, 4.0), LEVEL_1_1)
        assert len(c.list_vms(VMState.ACTIVE)) == 1
        assert len(c.list_vms(VMState.PENDING)) == 1
        assert len(c.list_vms()) == 2


class TestPoolingThroughService:
    def test_pooled_placement_reported(self):
        c = controller(n=1, cpus=8, mem=32.0,
                       config=SlackVMConfig(pooling=True))
        c.request(VMSpec(6, 4.0), LEVEL_1_1)
        c.request(VMSpec(3, 4.0), LEVEL_2_1)
        t = c.request(VMSpec(1, 2.0), LEVEL_3_1)
        assert t.state is VMState.ACTIVE
        assert t.pooled
