"""Merge conformance at 2/4/8 shards over the 5000-host scale fixture.

The sharded dispatcher changes *which* host a VM lands on (each shard
packs its own block), so its stream cannot match the unsharded golden
— what must hold instead is the determinism contract: for every shard
count the merged result is a pure function of (plan, workload, seed),
accounting closes, placements stay inside their owning shard's block,
and the event timeline keeps one sample per global event.  Run with
``-m slow``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.hardware import MachineSpec
from repro.sharding import ShardedSimulation
from repro.simulator import result_stream
from repro.workload.traces import load_trace

SCALE_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden" / "scale"

pytestmark = pytest.mark.slow

SHARD_COUNTS = (2, 4, 8)


@pytest.fixture(scope="module")
def manifest() -> dict:
    return json.loads((SCALE_DIR / "manifest.json").read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def workload():
    return load_trace(SCALE_DIR / "trace.jsonl")


@pytest.fixture(scope="module")
def machines(manifest):
    return [
        MachineSpec(f"pm-{i}", manifest["host_cpus"], manifest["host_mem_gb"])
        for i in range(manifest["num_hosts"])
    ]


@pytest.fixture(scope="module")
def streams(machines, workload):
    # One inline run per shard count, shared across the assertions
    # below — at 5000 hosts each run is the expensive part.
    out = {}
    for shards in SHARD_COUNTS:
        sim = ShardedSimulation(
            machines, shards=shards, kernel="pruned", workers=1, seed=1234
        )
        result = sim.run(workload)
        out[shards] = (sim, result, result_stream(result))
    return out


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_merged_run_is_seed_reproducible(streams, machines, workload, shards):
    _, _, stream = streams[shards]
    again = ShardedSimulation(
        machines, shards=shards, kernel="pruned", workers=1, seed=1234
    ).run(workload)
    assert result_stream(again) == stream


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_accounting_closes_at_scale(streams, workload, shards):
    _, result, _ = streams[shards]
    assert len(result.placements) + len(result.rejections) == len(workload)
    n_events = len(workload) + sum(1 for vm in workload if vm.departure is not None)
    assert len(result.timeline.times) == n_events


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_placements_stay_inside_shard_blocks(streams, workload, shards):
    sim, result, _ = streams[shards]
    _, _, sub = sim._route(list(workload))
    owner = {vm.vm_id: s for s, vms in enumerate(sub) for vm in vms}
    for vm_id, rec in result.placements.items():
        block = sim.plan.block(owner[vm_id])
        assert block.start <= rec.host < block.stop


def test_distinct_shard_counts_disagree(streams):
    # Sanity on the fixture itself: the plans genuinely differ, so the
    # reproducibility assertions above are not vacuous.
    unique = {stream for _, _, stream in streams.values()}
    assert len(unique) == len(SHARD_COUNTS)


def test_kernels_agree_under_sharding(machines, workload):
    # The kernel seam is per-shard: every kernel must merge to the
    # same stream for the same plan.
    base = None
    for kernel in ("incremental", "pruned"):
        stream = result_stream(
            ShardedSimulation(
                machines, shards=4, kernel=kernel, workers=1, seed=1234
            ).run(workload)
        )
        base = stream if base is None else base
        assert stream == base
