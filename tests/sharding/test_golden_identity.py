"""``shards=1`` byte-identity against the golden decision corpus.

The sharded dispatcher's load-bearing contract: with one shard it must
be indistinguishable — byte for byte — from the unsharded engine.  The
instrumented corpus (``tests/fixtures/golden/``) locks the recorded
decision stream for every policy and kernel; the scale corpus
(``tests/fixtures/golden/scale/``, slow tier) locks the uninstrumented
fast path's canonical result stream through the same delegation.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.hardware import MachineSpec
from repro.obs.records import JsonlRecorder
from repro.sharding import ShardedSimulation
from repro.simulator import VectorSimulation, result_stream
from repro.simulator.vectorpool import KERNELS, POLICIES
from repro.workload.traces import load_trace

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"
GOLDEN_DIR = FIXTURES / "golden"
SCALE_DIR = GOLDEN_DIR / "scale"


@pytest.fixture(scope="module")
def workload():
    return load_trace(GOLDEN_DIR / "trace.jsonl")


@pytest.fixture(scope="module")
def machines():
    manifest = json.loads((GOLDEN_DIR / "manifest.json").read_text(encoding="utf-8"))
    return [
        MachineSpec(m["name"], m["cpus"], m["mem_gb"]) for m in manifest["machines"]
    ]


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("policy", POLICIES)
def test_one_shard_replays_golden_corpus_byte_identically(
    machines, workload, policy, kernel
):
    golden = (GOLDEN_DIR / f"{policy}.jsonl").read_text(encoding="utf-8")
    sink = io.StringIO()
    ShardedSimulation(
        machines,
        policy=policy,
        kernel=kernel,
        shards=1,
        recorder=JsonlRecorder(sink),
    ).run(workload)
    assert sink.getvalue() == golden


@pytest.mark.parametrize("kernel", KERNELS)
def test_one_shard_matches_unsharded_result_stream(machines, workload, kernel):
    # Uninstrumented fast path: the dispatcher's shards=1 delegation
    # must return the VectorSimulation result verbatim.
    direct = VectorSimulation(machines, policy="progress", kernel=kernel).run(
        workload
    )
    sharded = ShardedSimulation(
        machines, policy="progress", kernel=kernel, shards=1
    ).run(workload)
    assert result_stream(sharded) == result_stream(direct)


@pytest.mark.slow
@pytest.mark.parametrize("kernel", KERNELS)
def test_one_shard_replays_scale_stream_byte_identically(kernel):
    manifest = json.loads((SCALE_DIR / "manifest.json").read_text(encoding="utf-8"))
    machines = [
        MachineSpec(f"pm-{i}", manifest["host_cpus"], manifest["host_mem_gb"])
        for i in range(manifest["num_hosts"])
    ]
    workload = load_trace(SCALE_DIR / "trace.jsonl")
    golden = (SCALE_DIR / "progress.stream").read_text(encoding="utf-8")
    result = ShardedSimulation(
        machines, policy="progress", kernel=kernel, shards=1
    ).run(workload)
    assert result_stream(result) == golden
