"""Property tests for the sharding layer (hypothesis).

The two properties ISSUE 8's determinism contract rests on:

* routing is a pure function of ``(seed, plan, workload)`` — repeated
  runs agree, and the assignment never depends on list order beyond
  the canonical event sort;
* the merged result is invariant to worker scheduling — harvesting
  shard results in *any* order produces the same stream, because the
  merge is keyed by shard index, not completion order.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import OversubscriptionLevel, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.sharding import ShardedSimulation
from repro.sharding.dispatcher import _run_shard
from repro.sharding.merge import merge_shard_results
from repro.simulator import result_stream

pytestmark = pytest.mark.slow

NUM_HOSTS = 8


@st.composite
def workload(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    vms = []
    for i in range(n):
        arrival = draw(st.floats(min_value=0.0, max_value=40.0))
        departs = draw(st.booleans())
        vms.append(
            VMRequest(
                vm_id=f"vm-{i:03d}",
                spec=VMSpec(
                    draw(st.sampled_from([1, 2, 4])),
                    float(draw(st.sampled_from([2, 4, 8]))),
                ),
                level=OversubscriptionLevel(draw(st.sampled_from([1.0, 2.0, 3.0]))),
                arrival=arrival,
                departure=arrival + draw(st.floats(min_value=0.5, max_value=30.0))
                if departs
                else None,
            )
        )
    return vms


def _sim(wl_unused, shards, router, seed, workers=1):
    machines = [MachineSpec(f"pm-{i}", 16, 64.0) for i in range(NUM_HOSTS)]
    return ShardedSimulation(
        machines, shards=shards, router=router, seed=seed, workers=workers
    )


@settings(max_examples=40, deadline=None)
@given(
    wl=workload(),
    shards=st.sampled_from([2, 3, 4]),
    router=st.sampled_from(["hash", "score"]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_routing_is_deterministic_in_the_seed(wl, shards, router, seed):
    one = _sim(wl, shards, router, seed)
    two = _sim(wl, shards, router, seed)
    ev1, shards1, sub1 = one._route(list(wl))
    ev2, shards2, sub2 = two._route(list(wl))
    assert shards1 == shards2
    assert [[vm.vm_id for vm in s] for s in sub1] == [
        [vm.vm_id for vm in s] for s in sub2
    ]
    # ...and the full runs agree byte-for-byte.
    assert result_stream(one.run(list(wl))) == result_stream(two.run(list(wl)))


@settings(max_examples=25, deadline=None)
@given(
    wl=workload(),
    shards=st.sampled_from([2, 4]),
    router=st.sampled_from(["hash", "score"]),
    order_seed=st.randoms(use_true_random=False),
)
def test_merge_is_invariant_to_worker_completion_order(
    wl, shards, router, order_seed
):
    # Execute every shard payload by hand in a shuffled order — a
    # stand-in for arbitrary pool completion order — and merge.  The
    # stream must match the dispatcher's own serial run.
    sim = _sim(wl, shards, router, seed=7)
    reference = result_stream(sim.run(list(wl)))

    events, event_shards, sub = sim._route(list(wl))
    from repro.runner.spec import derive_seeds
    from repro.sharding.dispatcher import _config_payload
    from repro.workload.traces import vm_to_dict

    seeds = derive_seeds(sim.seed, shards)
    payloads = [
        {
            "shard": s,
            "seed": seeds[s],
            "policy": sim.policy,
            "kernel": sim.kernel,
            "config": _config_payload(sim.config),
            "machines": [
                [m.name, m.cpus, m.mem_gb]
                for m in sim.machines[sim.plan.block(s)]
            ],
            "workload": [vm_to_dict(vm) for vm in sub[s]],
        }
        for s in range(shards)
    ]
    order = list(range(shards))
    order_seed.shuffle(order)
    harvested: dict[int, dict] = {}
    for s in order:
        harvested[s] = _run_shard(payloads[s])
        assert harvested[s]["ok"]
    merged = merge_shard_results(
        sim.plan, events, event_shards, [harvested[s] for s in range(shards)]
    )
    assert result_stream(merged) == reference


@settings(max_examples=40, deadline=None)
@given(
    wl=workload(),
    shards=st.sampled_from([1, 2, 3, 4]),
    router=st.sampled_from(["hash", "score"]),
)
def test_accounting_closes_for_any_shard_count(wl, shards, router):
    result = _sim(wl, shards, router, seed=3).run(list(wl))
    assert len(result.placements) + len(result.rejections) == len(wl)
    assert result.num_hosts == NUM_HOSTS
    # One timeline sample per event, exactly.
    n_events = len(wl) + sum(1 for vm in wl if vm.departure is not None)
    assert len(result.timeline.times) == n_events
