"""Dispatcher units: plan geometry, guardrails, metrics, merge identity."""

import pytest

from repro.core import OversubscriptionLevel, SlackVMConfig, VMRequest, VMSpec
from repro.core.errors import ConfigError
from repro.hardware import MachineSpec
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry
from repro.obs.records import MemoryRecorder
from repro.oversub.controller import OversubParams
from repro.oversub.estimators import make_estimator
from repro.sharding import ShardPlan, ShardedSimulation, workload_digest
from repro.simulator import result_stream


def _machines(n: int, cpus: int = 16, mem: float = 64.0):
    return [MachineSpec(f"pm-{i}", cpus, mem) for i in range(n)]


def _workload(n: int, lifetime: float = 20.0):
    vms = []
    for i in range(n):
        vms.append(
            VMRequest(
                vm_id=f"vm-{i:04d}",
                spec=VMSpec(2 + (i % 3), float(4 << (i % 3))),
                level=OversubscriptionLevel(float(1 + i % 3)),
                arrival=float(i),
                departure=float(i) + lifetime if i % 4 else None,
            )
        )
    return vms


class TestShardPlan:
    def test_balanced_contiguous_blocks(self):
        plan = ShardPlan.build(num_hosts=10, shards=4)
        assert plan.sizes == (3, 3, 2, 2)
        assert plan.offsets == (0, 3, 6, 8)
        assert [plan.block(s) for s in range(4)] == [
            slice(0, 3), slice(3, 6), slice(6, 8), slice(8, 10)
        ]

    def test_geometry_validation(self):
        with pytest.raises(ConfigError, match="at least one shard"):
            ShardPlan.build(num_hosts=4, shards=0)
        with pytest.raises(ConfigError, match="cannot split"):
            ShardPlan.build(num_hosts=3, shards=4)
        with pytest.raises(ConfigError, match="unknown router"):
            ShardPlan.build(num_hosts=4, shards=2, router="nope")
        with pytest.raises(ConfigError, match="unknown policy"):
            ShardPlan.build(num_hosts=4, shards=2, policy="nope")
        with pytest.raises(ConfigError, match="unknown kernel"):
            ShardPlan.build(num_hosts=4, shards=2, kernel="nope")

    def test_fingerprint_keys_plan_and_trace(self):
        a = ShardPlan.build(num_hosts=8, shards=2)
        b = ShardPlan.build(num_hosts=8, shards=4)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint("abc") != a.fingerprint("def")
        assert a.fingerprint("abc") == ShardPlan.build(8, 2).fingerprint("abc")


def test_workload_digest_is_order_insensitive():
    wl = _workload(12)
    assert workload_digest(wl) == workload_digest(list(reversed(wl)))
    assert workload_digest(wl) != workload_digest(wl[:-1])


class TestGuardrails:
    def test_global_features_require_one_shard(self):
        machines = _machines(4)
        with pytest.raises(ConfigError, match="fail_fast"):
            ShardedSimulation(machines, shards=2, fail_fast=True)
        with pytest.raises(ConfigError, match="oversubscription"):
            ShardedSimulation(
                machines,
                shards=2,
                oversub=OversubParams(estimator=make_estimator("percentile")),
            )
        with pytest.raises(ConfigError, match="decision recording"):
            ShardedSimulation(machines, shards=2, recorder=MemoryRecorder())

    def test_geometry_validated_eagerly(self):
        with pytest.raises(ConfigError, match="cannot split"):
            ShardedSimulation(_machines(2), shards=3)


def test_pool_and_inline_execution_are_byte_identical():
    # Worker scheduling must be invisible: a process pool and the
    # serial in-process path produce the same merged stream.
    machines = _machines(8)
    wl = _workload(60)
    pooled = ShardedSimulation(machines, shards=4, workers=4).run(wl)
    inline = ShardedSimulation(machines, shards=4, workers=1).run(wl)
    assert result_stream(pooled) == result_stream(inline)


@pytest.mark.parametrize("router", ["hash", "score"])
def test_runs_are_seed_reproducible(router):
    machines = _machines(6)
    wl = _workload(40)
    one = ShardedSimulation(machines, shards=3, router=router, workers=1).run(wl)
    two = ShardedSimulation(machines, shards=3, router=router, workers=1).run(wl)
    assert result_stream(one) == result_stream(two)


def test_merged_result_respects_shard_blocks():
    machines = _machines(8)
    wl = _workload(60)
    sim = ShardedSimulation(machines, shards=4, workers=1)
    result = sim.run(wl)
    # Every placement's global host index lies inside the block of the
    # shard that owns the VM.
    events, event_shards, sub = sim._route(wl)
    owner = {}
    for vms, shard in ((vms, s) for s, vms in enumerate(sub)):
        for vm in vms:
            owner[vm.vm_id] = shard
    for vm_id, rec in result.placements.items():
        block = sim.plan.block(owner[vm_id])
        assert block.start <= rec.host < block.stop
    # Accounting closes: every arrival is placed or rejected.
    assert len(result.placements) + len(result.rejections) == len(wl)
    assert result.num_hosts == 8


def test_same_timestamp_departure_and_arrival_merge_cleanly():
    # lifetime=4 makes vm-0001's departure (5.0) collide with
    # vm-0005's arrival (5.0).  Departures sort before arrivals at
    # equal timestamps; the merge must keep every shard cursor aligned
    # through the collision.
    machines = _machines(4)
    wl = _workload(20, lifetime=4.0)
    result = ShardedSimulation(machines, shards=2, workers=1).run(wl)
    assert len(result.placements) + len(result.rejections) == len(wl)


def test_shard_metrics_are_emitted():
    metrics = MetricsRegistry()
    machines = _machines(6)
    wl = _workload(40)
    sim = ShardedSimulation(machines, shards=3, workers=1, metrics=metrics)
    sim.run(wl)
    snapshot = metrics.to_dict()
    assert snapshot[metric_names.SHARD_COUNT]["value"] == 3
    assert snapshot[metric_names.SHARD_ROUTED]["value"] == len(wl)
    assert snapshot[metric_names.SHARD_QUEUE_DEPTH]["count"] == 3
    assert snapshot[metric_names.SHARD_IMBALANCE]["value"] >= 1.0
    assert snapshot[metric_names.SHARD_WALL_S]["count"] == 3
    assert snapshot[metric_names.SHARD_MERGE_S]["count"] == 1
    assert sim.shard_walls and len(sim.shard_walls) == 3


def test_single_shard_emits_count_gauge_only():
    metrics = MetricsRegistry()
    sim = ShardedSimulation(_machines(3), shards=1, metrics=metrics)
    sim.run(_workload(10))
    assert metrics.to_dict()[metric_names.SHARD_COUNT]["value"] == 1
    assert sim.shard_walls == ()


def test_custom_config_reaches_the_workers():
    # Pooling off must survive the payload round-trip into the shard
    # workers: no pooled placements can come back.
    machines = _machines(4)
    wl = _workload(40)
    result = ShardedSimulation(
        machines, SlackVMConfig(pooling=False), shards=2, workers=1
    ).run(wl)
    assert result.pooled_placements == 0
