"""Routing-policy units: determinism, distribution, demand tracking."""

import pytest

from repro.core import OversubscriptionLevel, VMRequest, VMSpec
from repro.core.errors import ConfigError
from repro.sharding import HashRouter, ROUTERS, ScoreRouter, make_router
from repro.sharding.router import stable_hash_64


def _vm(i: int, cpus: int = 2, mem: float = 8.0, ratio: float = 1.0) -> VMRequest:
    return VMRequest(
        vm_id=f"vm-{i:04d}",
        spec=VMSpec(cpus, mem),
        level=OversubscriptionLevel(ratio),
        arrival=float(i),
    )


def test_stable_hash_is_process_independent():
    # SHA-256 prefix: fixed forever, unlike builtin hash().
    assert stable_hash_64("vm-0001") == stable_hash_64("vm-0001")
    assert stable_hash_64("") == 0xE3B0C44298FC1C14


def test_registry_and_unknown_router():
    assert ROUTERS == ("hash", "score")
    with pytest.raises(ConfigError, match="unknown router"):
        make_router("nope", 2)


def test_hash_router_is_pure_in_seed_and_id():
    a = HashRouter(8, seed=3)
    b = HashRouter(8, seed=3)
    vms = [_vm(i) for i in range(200)]
    assert [a.route(vm) for vm in vms] == [b.route(vm) for vm in vms]


def test_hash_router_seed_salts_the_ring():
    vms = [_vm(i) for i in range(200)]
    one = [HashRouter(8, seed=1).route(vm) for vm in vms]
    two = [HashRouter(8, seed=2).route(vm) for vm in vms]
    assert one != two  # different ring, different mapping


def test_hash_router_spreads_keys_over_every_shard():
    router = HashRouter(4, seed=0)
    counts = [0, 0, 0, 0]
    for i in range(400):
        counts[router.route(_vm(i))] += 1
    assert all(c > 0 for c in counts)
    assert max(counts) < 400  # not degenerate


def test_hash_router_single_shard_short_circuits():
    router = HashRouter(1, seed=9)
    assert all(router.route(_vm(i)) == 0 for i in range(10))


def test_consistent_hashing_moves_few_keys_on_reshard():
    # The consistent-hashing property: growing 4 -> 5 shards remaps
    # roughly 1/5 of the keys, not all of them.
    vms = [_vm(i) for i in range(1000)]
    four = [HashRouter(4, seed=0).route(vm) for vm in vms]
    five = [HashRouter(5, seed=0).route(vm) for vm in vms]
    moved = sum(1 for a, b in zip(four, five) if a != b)
    assert moved < 500


def test_score_router_needs_capacities():
    with pytest.raises(ConfigError, match="per-shard capacities"):
        ScoreRouter(2)
    with pytest.raises(ConfigError, match="per-shard capacities"):
        make_router("score", 2)
    with pytest.raises(ConfigError, match="expected 2"):
        ScoreRouter(2, shard_cap_cpu=[8.0], shard_cap_mem=[32.0])


def test_score_router_balances_load():
    # Equal-capacity shards, identical VMs: the load penalty must
    # alternate placements rather than pile onto shard 0.
    router = ScoreRouter(
        2, shard_cap_cpu=[32.0, 32.0], shard_cap_mem=[128.0, 128.0]
    )
    shards = [router.route(_vm(i)) for i in range(10)]
    assert set(shards) == {0, 1}


def test_score_router_release_restores_state():
    caps = dict(shard_cap_cpu=[32.0, 32.0], shard_cap_mem=[128.0, 128.0])
    a = ScoreRouter(2, **caps)
    b = ScoreRouter(2, **caps)
    vm = _vm(0)
    shard = a.route(vm)
    a.release(vm, shard)
    # After a full route/release cycle the router state is pristine:
    # the next 10 routes match a fresh router's.
    follow = [_vm(i + 1) for i in range(10)]
    assert [a.route(v) for v in follow] == [b.route(v) for v in follow]


def test_score_router_ties_break_to_lowest_index():
    router = ScoreRouter(
        3, shard_cap_cpu=[16.0] * 3, shard_cap_mem=[64.0] * 3
    )
    # Empty shards with identical capacities score identically; the
    # deterministic tie-break sends the first VM to shard 0.
    assert router.route(_vm(0)) == 0
