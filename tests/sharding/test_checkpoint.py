"""Shard checkpoint: resume, fingerprint refusal, torn-line tolerance."""

import json

import pytest

from repro.core import OversubscriptionLevel, VMRequest, VMSpec
from repro.core.errors import ShardingError
from repro.hardware import MachineSpec
from repro.sharding import ShardCheckpoint, ShardedSimulation
from repro.simulator import result_stream


def _machines(n: int):
    return [MachineSpec(f"pm-{i}", 16, 64.0) for i in range(n)]


def _workload(n: int):
    return [
        VMRequest(
            vm_id=f"vm-{i:04d}",
            spec=VMSpec(2, 8.0),
            level=OversubscriptionLevel(float(1 + i % 3)),
            arrival=float(i),
            departure=float(i) + 15.0 if i % 3 else None,
        )
        for i in range(n)
    ]


def _truncate_to_shards(path, n: int) -> None:
    lines = path.read_text(encoding="utf-8").splitlines()
    path.write_text("\n".join(lines[: 1 + n]) + "\n", encoding="utf-8")


def test_checkpointed_run_writes_header_and_one_record_per_shard(tmp_path):
    out = tmp_path / "shards.jsonl"
    sim = ShardedSimulation(
        _machines(6), shards=3, workers=1, checkpoint=str(out)
    )
    sim.run(_workload(30))
    lines = out.read_text(encoding="utf-8").splitlines()
    header = json.loads(lines[0])
    assert header["kind"] == "header"
    assert header["plan"]["shards"] == 3
    shards = [json.loads(line)["shard"] for line in lines[1:]]
    assert sorted(shards) == [0, 1, 2]


def test_resume_replays_missing_shards_byte_identically(tmp_path):
    out = tmp_path / "shards.jsonl"
    machines, wl = _machines(6), _workload(30)
    full = ShardedSimulation(
        machines, shards=3, workers=1, checkpoint=str(out)
    ).run(wl)

    # Simulate a run killed after one shard completed.
    _truncate_to_shards(out, 1)
    resumed = ShardedSimulation(
        machines, shards=3, workers=1, checkpoint=str(out), resume=True
    ).run(wl)
    assert result_stream(resumed) == result_stream(full)
    # The file is whole again: a second resume runs nothing new.
    again = ShardedSimulation(
        machines, shards=3, workers=1, checkpoint=str(out), resume=True
    ).run(wl)
    assert result_stream(again) == result_stream(full)


def test_resume_tolerates_torn_last_line(tmp_path):
    out = tmp_path / "shards.jsonl"
    machines, wl = _machines(6), _workload(30)
    full = ShardedSimulation(
        machines, shards=3, workers=1, checkpoint=str(out)
    ).run(wl)
    text = out.read_text(encoding="utf-8").splitlines()
    out.write_text("\n".join(text[:2]) + '\n{"kind": "shard", "sh',
                   encoding="utf-8")
    resumed = ShardedSimulation(
        machines, shards=3, workers=1, checkpoint=str(out), resume=True
    ).run(wl)
    assert result_stream(resumed) == result_stream(full)


def test_resume_refuses_foreign_plan(tmp_path):
    out = tmp_path / "shards.jsonl"
    machines, wl = _machines(6), _workload(30)
    ShardedSimulation(machines, shards=3, workers=1, checkpoint=str(out)).run(wl)
    with pytest.raises(ShardingError, match="different plan or workload"):
        ShardedSimulation(
            machines, shards=2, workers=1, checkpoint=str(out), resume=True
        ).run(wl)


def test_resume_refuses_foreign_trace(tmp_path):
    out = tmp_path / "shards.jsonl"
    machines = _machines(6)
    ShardedSimulation(
        machines, shards=3, workers=1, checkpoint=str(out)
    ).run(_workload(30))
    with pytest.raises(ShardingError, match="different plan or workload"):
        ShardedSimulation(
            machines, shards=3, workers=1, checkpoint=str(out), resume=True
        ).run(_workload(31))


def test_load_rejects_non_checkpoint_files(tmp_path):
    path = tmp_path / "junk.jsonl"
    path.write_text('{"kind": "cell"}\n', encoding="utf-8")
    with pytest.raises(ShardingError, match="no header"):
        ShardCheckpoint(path).load()
    missing = ShardCheckpoint(tmp_path / "nope.jsonl")
    with pytest.raises(ShardingError, match="no shard checkpoint"):
        missing.load()
