"""Estimator unit tests + the effective-capacity bounds property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigError
from repro.oversub.estimators import (
    STRATEGIES,
    DoaEstimator,
    GreedyEstimator,
    HostWindow,
    PercentileEstimator,
    StaticRatio,
    make_estimator,
)


def window(samples, physical=16.0, allocated=8.0, host=0, time=0.0):
    return HostWindow(
        host=host,
        time=time,
        physical=physical,
        allocated=allocated,
        samples=np.asarray(samples, dtype=float),
    )


class TestHostWindow:
    def test_used_is_peak_capped_by_physical(self):
        w = window([2.0, 5.0, 3.0], physical=4.0)
        assert w.peak_demand == 5.0
        assert w.used == 4.0

    def test_empty_window(self):
        w = window([])
        assert w.used == 0.0
        assert w.peak_demand == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigError):
            window([1.0], physical=-1.0)
        with pytest.raises(ConfigError):
            window([1.0], allocated=-0.5)


class TestStaticRatio:
    def test_default_is_exactly_physical(self):
        # The golden-trace identity hinges on this being exact, not
        # approximate: ratio 1.0 must reproduce the physical capacity.
        est = StaticRatio()
        assert est.effective_capacity(window([3.0], physical=16.0)) == 16.0
        assert est.effective_capacity(window([], physical=7.0)) == 7.0

    def test_ratio_scales_physical(self):
        est = StaticRatio(ratio=2.0)
        assert est.effective_capacity(window([0.0], physical=16.0)) == 32.0

    def test_ratio_below_one_rejected(self):
        with pytest.raises(ConfigError):
            StaticRatio(ratio=0.5)


class TestPercentileEstimator:
    def test_idle_reserved_host_earns_capacity(self):
        # 8 cores reserved, peak usage ~1.6 cores: reservations barely
        # translate into usage, so effective capacity rises above
        # physical (clamped by ratio_cap).
        est = PercentileEstimator()
        w = window([1.0, 1.5, 1.6], physical=16.0, allocated=8.0)
        assert est.effective_capacity(w) > 16.0

    def test_hot_host_shrinks_toward_used(self):
        est = PercentileEstimator()
        w = window([14.0, 15.5, 15.0], physical=16.0, allocated=16.0)
        eff = est.effective_capacity(w)
        assert w.used <= eff < 16.0 * est.ratio_cap
        assert eff < 17.0

    def test_no_signal_is_neutral(self):
        est = PercentileEstimator()
        assert est.effective_capacity(window([], allocated=4.0)) == 16.0
        assert est.effective_capacity(window([1.0], allocated=0.0)) == 16.0

    def test_zero_peak_hits_the_ceiling(self):
        est = PercentileEstimator(ratio_cap=2.5)
        w = window([0.0, 0.0], physical=16.0, allocated=8.0)
        assert est.effective_capacity(w) == 2.5 * 16.0

    def test_headroom_validated(self):
        with pytest.raises(ConfigError):
            PercentileEstimator(headroom=1.0)


class TestDoaEstimator:
    def test_alert_decreases_immediately(self):
        est = DoaEstimator(alert=0.8, decrease=0.5, ratio_cap=3.0)
        # Warm up to a raised ratio: identical quiet windows are stable.
        quiet = [window([1.0, 1.0], physical=16.0) for _ in range(6)]
        for w in quiet:
            est.effective_capacity(w)
        raised = est.effective_capacity(window([1.0, 1.0], physical=16.0))
        assert raised > 16.0
        hot = est.effective_capacity(window([15.0, 15.5], physical=16.0))
        assert hot < raised

    def test_unstable_hosts_do_not_creep_up(self):
        est = DoaEstimator(stability_margin=0.01, stable_windows=2)
        # Peaks jump around: never stable, ratio stays at 1.
        for peak in (1.0, 5.0, 2.0, 7.0, 3.0):
            eff = est.effective_capacity(window([peak], physical=16.0))
        assert eff == 16.0

    def test_state_is_per_host(self):
        est = DoaEstimator(stable_windows=1)
        for _ in range(4):
            est.effective_capacity(window([1.0], physical=16.0, host=0))
        fresh = est.effective_capacity(window([1.0], physical=16.0, host=1))
        warmed = est.effective_capacity(window([1.0], physical=16.0, host=0))
        assert warmed > fresh

    def test_reset_clears_state(self):
        est = DoaEstimator(stable_windows=1)
        for _ in range(4):
            est.effective_capacity(window([1.0], physical=16.0))
        est.reset()
        assert est.effective_capacity(window([1.0], physical=16.0)) == 16.0


class TestGreedyEstimator:
    def test_quiescent_steps_up(self):
        est = GreedyEstimator(quiet=0.7, step=0.25, ratio_cap=3.0)
        w = window([2.0], physical=16.0)
        first = est.effective_capacity(w)
        second = est.effective_capacity(w)
        assert first == 1.25 * 16.0
        assert second == 1.5 * 16.0

    def test_breach_backs_off_multiplicatively(self):
        est = GreedyEstimator(quiet=0.7, step=0.5, backoff=0.5)
        quiet = window([2.0], physical=16.0)
        for _ in range(4):
            est.effective_capacity(quiet)  # ratio -> 3.0 capped
        loud = window([15.0], physical=16.0)
        eff = est.effective_capacity(loud)
        # ratio 3.0 -> 1 + 2.0 * 0.5 = 2.0
        assert eff == pytest.approx(2.0 * 16.0)

    def test_never_below_physical_when_quiet(self):
        est = GreedyEstimator()
        w = window([15.9], physical=16.0)
        for _ in range(10):
            eff = est.effective_capacity(w)
        assert eff >= 16.0 - 1e-9


class TestRegistry:
    def test_all_strategies_constructible(self):
        for name in STRATEGIES:
            est = make_estimator(name)
            assert est.name == name

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError):
            make_estimator("oracle")


# ---------------------------------------------------------------------------
# Property: every estimator's effective capacity stays within
# [used, ratio_cap × physical] — the contract the engines rely on.
# ---------------------------------------------------------------------------

windows = st.builds(
    window,
    samples=st.lists(st.floats(0.0, 64.0), min_size=0, max_size=12),
    physical=st.floats(1.0, 64.0),
    allocated=st.floats(0.0, 192.0),
    host=st.integers(0, 3),
)


@settings(max_examples=200, deadline=None)
@given(seq=st.lists(windows, min_size=1, max_size=8))
@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_effective_capacity_bounds(strategy, seq):
    est = make_estimator(strategy)
    for w in seq:
        eff = est.effective_capacity(w)
        assert eff >= w.used - 1e-9
        assert eff <= est.ratio_cap * w.physical + 1e-9
