"""Sweep-evaluation tests (kept tiny: real engine runs per cell)."""

import pytest

from repro.core import ConfigError
from repro.hardware.machine import MachineSpec
from repro.oversub.evaluate import (
    OversubSweepSpec,
    render_oversub_table,
    run_oversub_sweep,
)

# Small population + small machine keeps each cell to a handful of
# hosts while still producing rejections under scarcity.
TINY = dict(
    target_population=24,
    machine=MachineSpec("tiny", 8, 32.0),
    scarcity=0.5,
    update_every=1800.0,
    samples_per_window=4,
)


@pytest.fixture(scope="module")
def sweep():
    return run_oversub_sweep(
        OversubSweepSpec(strategies=("static", "percentile"), seeds=(3,), **TINY)
    )


def test_grid_shape(sweep):
    assert len(sweep.cells) == 2
    assert [c.strategy for c in sweep.cells] == ["static", "percentile"]
    assert all(c.provider == "azure" and c.mix_label == "F" for c in sweep.cells)


def test_static_is_its_own_baseline(sweep):
    static = sweep.cells[0]
    assert static.packing_gain_percent == 0.0
    assert static.eff_ratio_mean == pytest.approx(1.0)


def test_scarce_cluster_actually_rejects(sweep):
    # Without rejections the gain column measures nothing.
    assert sweep.cells[0].rejected > 0
    assert sweep.cells[0].placed + sweep.cells[0].rejected == sweep.cells[0].arrivals


def test_dynamic_strategy_never_packs_fewer(sweep):
    # Effective capacity >= used >= nothing below physical at admission
    # time, so a dynamic strategy can only open headroom here.
    assert sweep.cells[1].placed >= sweep.cells[0].placed


def test_sweep_is_deterministic(sweep):
    again = run_oversub_sweep(
        OversubSweepSpec(strategies=("static", "percentile"), seeds=(3,), **TINY)
    )
    assert again.to_dicts() == sweep.to_dicts()


def test_naive_kernel_agrees_with_incremental(sweep):
    naive = run_oversub_sweep(
        OversubSweepSpec(
            strategies=("static", "percentile"), seeds=(3,), kernel="naive", **TINY
        )
    )
    assert [c.placed for c in naive.cells] == [c.placed for c in sweep.cells]
    assert [c.violation_rate for c in naive.cells] == [
        c.violation_rate for c in sweep.cells
    ]


def test_table_renders_all_cells(sweep):
    table = sweep.table()
    lines = table.splitlines()
    assert len(lines) == 1 + len(sweep.cells)
    assert lines[0].startswith("strategy")
    assert "static" in lines[1] and "percentile" in lines[2]
    # Empty input still renders the header row (widths shrink to it).
    empty = render_oversub_table([]).splitlines()
    assert len(empty) == 1 and empty[0].startswith("strategy")


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(strategies=()),
        dict(strategies=("oracle",)),
        dict(providers=("aws",)),
        dict(mixes=()),
        dict(seeds=()),
        dict(scarcity=0.0),
        dict(scarcity=2.5),
        dict(policy="wishful"),
        dict(kernel="quantum"),
        dict(target_population=0),
    ],
)
def test_spec_validation(kwargs):
    with pytest.raises(ConfigError):
        OversubSweepSpec(**kwargs)
