"""Controller tests: update cadence, violation ledger, metrics."""

import numpy as np
import pytest

from repro.core import ConfigError, LEVEL_1_1, VMRequest, VMSpec
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry
from repro.oversub.controller import OversubController, OversubParams, OversubSummary
from repro.oversub.estimators import PercentileEstimator, StaticRatio


def vm(vm_id="vm", param=0.5, vcpus=4):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, 4.0), level=LEVEL_1_1,
                     usage_kind="stress", usage_param=param)


class FakeTarget:
    """In-memory CapacityTarget recording every applied vector."""

    def __init__(self, physical, allocated=None):
        self.physical = list(physical)
        self.allocated = list(allocated or [0.0] * len(self.physical))
        self.live = []
        self.applied = []

    def placements(self):
        return list(self.live)

    def physical_capacity(self):
        return self.physical

    def allocated_capacity(self):
        return self.allocated

    def apply_effective_capacity(self, eff):
        self.applied.append(np.asarray(eff, dtype=float).copy())


class TestParams:
    def test_window_defaults_to_update_every(self):
        params = OversubParams(StaticRatio(), update_every=600.0)
        controller = params.build_controller()
        assert controller.monitor.window == 600.0

    def test_explicit_window_kept(self):
        params = OversubParams(StaticRatio(), update_every=600.0, window=120.0)
        assert params.build_controller().monitor.window == 120.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(update_every=0.0),
            dict(window=-5.0),
            dict(violation_threshold=0.0),
            dict(slack_weight=-0.1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            OversubParams(StaticRatio(), **kwargs)


class TestAdvance:
    def test_updates_fire_at_exact_multiples(self):
        controller = OversubParams(StaticRatio(), update_every=100.0).build_controller()
        target = FakeTarget([16.0])
        controller.advance(target, 99.9)
        assert controller.updates == 0
        controller.advance(target, 100.0)
        assert controller.updates == 1
        # A long gap catches up on every missed instant.
        controller.advance(target, 350.0)
        assert controller.updates == 3
        controller.advance(target, 350.0)  # idempotent at the same time
        assert controller.updates == 3

    def test_static_ratio_applies_physical(self):
        controller = OversubParams(StaticRatio(), update_every=50.0).build_controller()
        target = FakeTarget([16.0, 8.0])
        controller.advance(target, 50.0)
        assert target.applied[0] == pytest.approx([16.0, 8.0])

    def test_reset_called_on_build(self):
        est = PercentileEstimator()
        # Build twice: each controller starts the estimator fresh.
        OversubParams(est, update_every=50.0).build_controller()
        controller = OversubParams(est, update_every=50.0).build_controller()
        assert controller.estimator is est


class TestLedger:
    def test_violations_counted_per_breaching_window(self):
        controller = OversubParams(StaticRatio(), update_every=100.0).build_controller()
        # Host 0 demands 2.0 on 16 physical cores (fine); host 1
        # demands 32 on 16 (breach) every window.
        target = FakeTarget([16.0, 16.0], allocated=[4.0, 16.0])
        target.live = [(vm("ok", param=0.5, vcpus=4), 0),
                       (vm("hot", param=1.0, vcpus=32), 1)]
        controller.advance(target, 300.0)
        assert controller.updates == 3
        assert controller.host_windows == 6
        assert controller.violations == 3
        summary = controller.summary()
        assert summary.violation_rate == pytest.approx(0.5)
        assert summary.strategy == "static"

    def test_summary_without_updates_is_neutral(self):
        controller = OversubParams(StaticRatio()).build_controller()
        summary = controller.summary()
        assert summary == OversubSummary(
            strategy="static", updates=0, host_windows=0, violations=0,
            eff_ratio_mean=1.0,
        )
        assert summary.violation_rate == 0.0

    def test_to_dict_round_trip_uses_plain_floats(self):
        controller = OversubParams(StaticRatio(), update_every=10.0).build_controller()
        controller.advance(FakeTarget([16.0]), 10.0)
        d = controller.summary().to_dict()
        assert type(d["eff_ratio_mean"]) is float
        assert d["updates"] == 1

    def test_eff_ratio_mean_tracks_estimator(self):
        controller = OversubParams(
            StaticRatio(ratio=2.0), update_every=10.0
        ).build_controller()
        controller.advance(FakeTarget([16.0, 8.0]), 20.0)
        assert controller.summary().eff_ratio_mean == pytest.approx(2.0)


class TestMetrics:
    def test_emitted_through_registered_names(self):
        metrics = MetricsRegistry()
        controller = OversubParams(StaticRatio(), update_every=100.0).build_controller(
            metrics
        )
        target = FakeTarget([16.0])
        target.live = [(vm("hot", param=1.0, vcpus=32), 0)]
        controller.advance(target, 200.0)
        assert metrics.counter(metric_names.OVERSUB_UPDATES).value == 2
        assert metrics.counter(metric_names.OVERSUB_HOST_WINDOWS).value == 2
        assert metrics.counter(metric_names.OVERSUB_VIOLATIONS).value == 2
        assert metrics.gauge(metric_names.OVERSUB_EFF_CPU_TOTAL).value == 16.0

    def test_null_registry_stays_silent(self):
        controller = OversubParams(StaticRatio(), update_every=100.0).build_controller()
        controller.advance(FakeTarget([16.0]), 100.0)  # must not raise
        assert controller.updates == 1
