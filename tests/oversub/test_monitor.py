"""Usage-monitor tests: profile resolution and window collection."""

import numpy as np
import pytest

from repro.core import ConfigError, LEVEL_1_1, VMRequest, VMSpec
from repro.oversub.monitor import ClusterUsageMonitor, profile_for_vm, stable_phase
from repro.workload.usage import IdleProfile, InteractiveProfile, StressProfile


def vm(vm_id="vm", kind="stress", param=0.5, vcpus=4, arrival=0.0, **metadata):
    return VMRequest(
        vm_id=vm_id,
        spec=VMSpec(vcpus, 4.0),
        level=LEVEL_1_1,
        arrival=arrival,
        usage_kind=kind,
        usage_param=param,
        metadata=dict(metadata),
    )


class TestStablePhase:
    def test_in_unit_interval(self):
        for name in ("a", "vm-0001", "x" * 50, ""):
            assert 0.0 <= stable_phase(name) < 1.0

    def test_deterministic_and_distinct(self):
        assert stable_phase("vm-1") == stable_phase("vm-1")
        assert stable_phase("vm-1") != stable_phase("vm-2")


class TestProfileForVm:
    def test_known_kinds_dispatch(self):
        assert isinstance(profile_for_vm(vm(kind="idle", param=0.0)), IdleProfile)
        assert isinstance(profile_for_vm(vm(kind="stress", param=0.3)), StressProfile)
        assert isinstance(
            profile_for_vm(vm(kind="interactive", param=0.4)), InteractiveProfile
        )

    def test_interactive_phase_is_stable_per_vm(self):
        p = profile_for_vm(vm(vm_id="web-7", kind="interactive", param=0.4))
        assert p.phase == stable_phase("web-7")

    def test_metadata_phase_overrides(self):
        p = profile_for_vm(vm(kind="interactive", param=0.4, phase=0.25))
        assert p.phase == 0.25

    def test_zero_param_interactive_is_silent(self):
        p = profile_for_vm(vm(kind="interactive", param=0.0))
        assert isinstance(p, StressProfile)
        assert p.demand(0.0) == 0.0

    def test_unknown_kind_is_conservative(self):
        p = profile_for_vm(vm(kind="batch", param=0.1))
        assert isinstance(p, StressProfile)
        assert p.demand(0.0) == 1.0

    def test_out_of_range_param_clipped(self):
        assert profile_for_vm(vm(kind="stress", param=7.0)).demand(0.0) == 1.0
        assert profile_for_vm(vm(kind="stress", param=-2.0)).demand(0.0) == 0.0


class TestCollect:
    def test_demand_sums_per_host(self):
        mon = ClusterUsageMonitor(window=100.0, samples_per_window=4)
        placements = [
            (vm("a", param=0.5, vcpus=4), 0),
            (vm("b", param=0.25, vcpus=8), 0),
            (vm("c", param=1.0, vcpus=2), 1),
        ]
        windows = mon.collect(placements, [16.0, 16.0, 16.0], [12.0, 2.0, 0.0], 200.0)
        assert [w.host for w in windows] == [0, 1, 2]
        # Stress profiles are flat: host 0 sees 0.5*4 + 0.25*8 = 4.0.
        assert windows[0].samples == pytest.approx([4.0] * 4)
        assert windows[1].samples == pytest.approx([2.0] * 4)
        assert windows[2].samples == pytest.approx([0.0] * 4)
        assert windows[0].allocated == 12.0
        assert all(w.time == 200.0 for w in windows)

    def test_arrival_masks_pre_arrival_demand(self):
        mon = ClusterUsageMonitor(window=90.0, samples_per_window=4)
        # Window grid at t=100 covers [10, 40, 70, 100]; arrival at 50
        # zeroes the first two samples.
        windows = mon.collect(
            [(vm("late", param=1.0, vcpus=2, arrival=50.0), 0)], [8.0], [2.0], 100.0
        )
        assert windows[0].samples == pytest.approx([0.0, 0.0, 2.0, 2.0])

    def test_window_clamped_at_time_zero(self):
        mon = ClusterUsageMonitor(window=1000.0, samples_per_window=3)
        windows = mon.collect([], [8.0], [0.0], 10.0)
        assert windows[0].samples == pytest.approx([0.0, 0.0, 0.0])
        assert windows[0].time == 10.0

    def test_demand_is_unclipped_by_capacity(self):
        # Breaches must stay visible: that's the violation signal.
        mon = ClusterUsageMonitor(window=10.0, samples_per_window=2)
        windows = mon.collect(
            [(vm("big", param=1.0, vcpus=32), 0)], [16.0], [16.0], 20.0
        )
        assert windows[0].peak_demand == pytest.approx(32.0)
        assert windows[0].used == 16.0

    def test_shape_mismatch_rejected(self):
        mon = ClusterUsageMonitor()
        with pytest.raises(ConfigError):
            mon.collect([], [8.0, 8.0], [0.0], 10.0)

    def test_params_validated(self):
        with pytest.raises(ConfigError):
            ClusterUsageMonitor(window=0.0)
        with pytest.raises(ConfigError):
            ClusterUsageMonitor(samples_per_window=0)

    def test_interactive_contribution_is_diurnal(self):
        mon = ClusterUsageMonitor(window=43_200.0, samples_per_window=8)
        windows = mon.collect(
            [(vm("web", kind="interactive", param=0.5, vcpus=4, phase=0.0), 0)],
            [16.0],
            [4.0],
            86_400.0,
        )
        samples = windows[0].samples
        assert samples.max() > samples.min()  # actually varies over the day
        assert np.all(samples >= 0.0)
