"""StaticRatio golden-trace conformance (the acceptance criterion).

``StaticRatio(1.0)`` sets every host's effective capacity to physical —
exactly the capacities the engines already use — so enabling the
dynamic-oversubscription loop with it must be a **structural no-op**:
the recorded decision stream stays byte-identical to the frozen golden
corpus on both vector kernels, and the object engine's decisions stay
field-identical.  This is the contract that makes the dynamic layer
safe to ship default-off: the paper-baseline configuration cannot drift.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.hardware import MachineSpec
from repro.localsched.agent import LocalScheduler
from repro.obs.audit import diff_decision_streams
from repro.obs.records import JsonlRecorder, MemoryRecorder, load_jsonl_records
from repro.oversub import OversubParams, StaticRatio
from repro.scheduling.baselines import scheduler_for_policy
from repro.simulator import VectorSimulation
from repro.simulator.engine import Simulation
from repro.simulator.vectorpool import POLICIES
from repro.workload.traces import load_trace

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden"

# A cadence that actually fires during the golden trace — the no-op
# must hold because each update applies identical capacities, not
# because no update ever runs.
STATIC = dict(update_every=900.0, samples_per_window=4)


@pytest.fixture(scope="module")
def workload():
    return load_trace(GOLDEN_DIR / "trace.jsonl")


@pytest.fixture(scope="module")
def machines():
    manifest = json.loads((GOLDEN_DIR / "manifest.json").read_text(encoding="utf-8"))
    return [
        MachineSpec(m["name"], m["cpus"], m["mem_gb"]) for m in manifest["machines"]
    ]


@pytest.mark.parametrize("kernel", ["incremental", "naive"])
@pytest.mark.parametrize("policy", POLICIES)
def test_vector_static_ratio_is_byte_identical(machines, workload, policy, kernel):
    sink = io.StringIO()
    result = VectorSimulation(
        machines,
        policy=policy,
        kernel=kernel,
        recorder=JsonlRecorder(sink),
        oversub=OversubParams(StaticRatio(), **STATIC),
    ).run(workload)
    golden = (GOLDEN_DIR / f"{policy}.jsonl").read_text(encoding="utf-8")
    assert sink.getvalue() == golden
    # The controller genuinely ran — the identity is not vacuous.
    assert result.oversub is not None
    assert result.oversub.updates > 0
    assert result.oversub.eff_ratio_mean == pytest.approx(1.0)


@pytest.mark.parametrize("policy", POLICIES)
def test_object_static_ratio_matches_golden(machines, workload, policy):
    golden_decisions, golden_admissions = load_jsonl_records(
        GOLDEN_DIR / f"{policy}.jsonl"
    )
    recorder = MemoryRecorder()
    hosts = [LocalScheduler(m, recorder=recorder) for m in machines]
    result = Simulation(
        hosts,
        scheduler_for_policy(policy),
        recorder=recorder,
        oversub=OversubParams(StaticRatio(), **STATIC),
    ).run(workload)
    divergences = diff_decision_streams(recorder.decisions, golden_decisions)
    assert not divergences, divergences[0].describe()
    assert recorder.admissions == golden_admissions
    assert result.oversub is not None and result.oversub.updates > 0
