"""Object-pipeline tests: view, filter, weigher, engine integration."""

import numpy as np
import pytest

from repro.core import ConfigError, LEVEL_1_1, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.oversub.controller import OversubParams
from repro.oversub.estimators import StaticRatio
from repro.oversub.pipeline import (
    EffectiveCapacityFilter,
    EffectiveCapacityView,
    SlackAwareWeigher,
    with_oversub,
)
from repro.scheduling import first_fit_scheduler, slackvm_scheduler
from repro.simulator import Simulation, build_hosts

MACHINE = MachineSpec("pm", 8, 32.0)


def vm(vm_id, vcpus=2, mem=4.0, level=LEVEL_1_1, arrival=0.0, departure=None,
       kind="stress", param=0.5):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level,
                     arrival=arrival, departure=departure,
                     usage_kind=kind, usage_param=param)


class TestView:
    def test_starts_at_physical(self):
        view = EffectiveCapacityView(["a", "b"], [8.0, 16.0])
        assert view.effective_for("a") == 8.0
        assert view.physical_for("b") == 16.0

    def test_update_replaces_vector(self):
        view = EffectiveCapacityView(["a", "b"], [8.0, 16.0])
        view.update(np.array([12.0, 10.0]))
        assert view.effective_for("a") == 12.0
        assert view.effective_for("b") == 10.0
        assert view.physical_for("a") == 8.0  # physical untouched

    def test_shape_mismatch_rejected(self):
        view = EffectiveCapacityView(["a"], [8.0])
        with pytest.raises(ConfigError):
            view.update(np.array([1.0, 2.0]))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            EffectiveCapacityView(["a", "a"], [8.0, 8.0])
        with pytest.raises(ConfigError):
            EffectiveCapacityView(["a"], [8.0, 8.0])


class TestFilter:
    def test_passes_at_physical_effective(self):
        (host,) = build_hosts(MACHINE, 1)
        view = EffectiveCapacityView([host.machine.name], [8.0])
        filt = EffectiveCapacityFilter(view)
        assert filt.passes(host, vm("v", vcpus=4))

    def test_restricts_when_effective_below_physical(self):
        (host,) = build_hosts(MACHINE, 1)
        view = EffectiveCapacityView([host.machine.name], [8.0])
        view.update(np.array([2.0]))
        filt = EffectiveCapacityFilter(view)
        assert filt.passes(host, vm("small", vcpus=2))
        assert not filt.passes(host, vm("big", vcpus=4))

    def test_rejects_physically_infeasible(self):
        (host,) = build_hosts(MACHINE, 1)
        view = EffectiveCapacityView([host.machine.name], [8.0])
        view.update(np.array([100.0]))  # generous effective capacity
        filt = EffectiveCapacityFilter(view)
        # plan() is None: 16 vcpus never fit 8 physical slots.
        assert not filt.passes(host, vm("huge", vcpus=16))


class TestWeigher:
    def test_prefers_most_slack(self):
        hosts = build_hosts(MACHINE, 2)
        hosts[0].deploy(vm("seed", vcpus=4))
        names = [h.machine.name for h in hosts]
        view = EffectiveCapacityView(names, [8.0, 8.0])
        weigher = SlackAwareWeigher(view)
        candidate = vm("new", vcpus=2)
        assert weigher.weigh(hosts[1], candidate, 1) > weigher.weigh(
            hosts[0], candidate, 0
        )

    def test_estimated_quiet_host_outranks_hot_one(self):
        hosts = build_hosts(MACHINE, 2)
        for h in hosts:
            h.deploy(vm(f"seed-{h.machine.name}", vcpus=4))
        view = EffectiveCapacityView([h.machine.name for h in hosts], [8.0, 8.0])
        # Equal reservations, but the estimator thinks host 1 is quiet.
        view.update(np.array([8.0, 12.0]))
        weigher = SlackAwareWeigher(view)
        candidate = vm("new", vcpus=2)
        assert weigher.weigh(hosts[1], candidate, 1) > weigher.weigh(
            hosts[0], candidate, 0
        )


class TestWithOversub:
    def test_appends_filter_and_names_scheduler(self):
        view = EffectiveCapacityView(["a"], [8.0])
        base = slackvm_scheduler()
        wrapped = with_oversub(base, view)
        assert wrapped.name == f"{base.name}+oversub"
        assert len(wrapped.filters) == len(base.filters) + 1
        assert isinstance(wrapped.filters[-1], EffectiveCapacityFilter)
        assert wrapped.weighers == base.weighers

    def test_slack_weight_adds_weigher(self):
        view = EffectiveCapacityView(["a"], [8.0])
        wrapped = with_oversub(slackvm_scheduler(), view, slack_weight=0.5)
        weigher, weight = wrapped.weighers[-1]
        assert isinstance(weigher, SlackAwareWeigher)
        assert weight == 0.5

    def test_negative_weight_rejected(self):
        view = EffectiveCapacityView(["a"], [8.0])
        with pytest.raises(ConfigError):
            with_oversub(slackvm_scheduler(), view, slack_weight=-1.0)


class TestEngineIntegration:
    TRACE = [
        vm("a", vcpus=4, mem=4.0, arrival=0.0, departure=5000.0),
        vm("b", vcpus=4, mem=4.0, arrival=100.0),
        vm("c", vcpus=4, mem=4.0, arrival=2000.0),
        vm("d", vcpus=4, mem=4.0, arrival=6000.0),
    ]

    def test_static_ratio_matches_baseline_run(self):
        base = Simulation(build_hosts(MACHINE, 2), first_fit_scheduler()).run(
            self.TRACE
        )
        oversub = Simulation(
            build_hosts(MACHINE, 2),
            first_fit_scheduler(),
            oversub=OversubParams(StaticRatio(), update_every=500.0),
        ).run(self.TRACE)
        assert {k: v.host for k, v in oversub.placements.items()} == {
            k: v.host for k, v in base.placements.items()
        }
        assert oversub.rejections == base.rejections
        assert oversub.oversub is not None
        assert oversub.oversub.updates > 0
        assert base.oversub is None

    def test_summary_reports_strategy(self):
        result = Simulation(
            build_hosts(MACHINE, 2),
            first_fit_scheduler(),
            oversub=OversubParams(StaticRatio(), update_every=1000.0),
        ).run(self.TRACE)
        assert result.oversub.strategy == "static"
        assert result.oversub.eff_ratio_mean == pytest.approx(1.0)

    def test_live_set_shrinks_on_departure(self):
        sim = Simulation(
            build_hosts(MACHINE, 2),
            first_fit_scheduler(),
            oversub=OversubParams(StaticRatio(), update_every=1000.0),
        )
        sim.run(self.TRACE)
        # "a" departed at t=5000; the target must only hold live VMs.
        live_ids = set(sim._oversub_target.live)
        assert live_ids == {"b", "c", "d"}
