"""Project index: fingerprint cache reuse, invalidation, resilience.

The whole-program pass parses every file once into a
:class:`~repro.devtools.index.ProjectIndex`; per-file rule findings and
module summaries are cached keyed on content fingerprints so a warm run
reparses nothing and an edit reparses exactly the changed file.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.devtools.index import INDEX_CACHE_VERSION, ProjectIndex
from repro.devtools.lint import build_index, findings_from_index


def src(code: str) -> str:
    return textwrap.dedent(code).lstrip()


CLEAN = src(
    """
    def place(vm, hosts):
        return sorted(hosts)[0]
    """
)

DIRTY = src(
    """
    import time

    def stamp():
        return time.time()
    """
)


def write_tree(root: Path) -> dict[str, Path]:
    files = {
        "src/repro/core/clean.py": CLEAN,
        "src/repro/core/dirty.py": DIRTY,
        "src/repro/scheduling/policy.py": CLEAN,
    }
    out = {}
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body, encoding="utf-8")
        out[rel] = path
    return out


def finding_keys(index: ProjectIndex) -> list[tuple]:
    return [
        (f.rule_id, f.path, f.line, f.col, f.message)
        for f in findings_from_index(index)
    ]


def test_cold_build_parses_everything(tmp_path):
    write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    index = build_index([tmp_path / "src"], root=tmp_path, cache=cache)
    assert index.parsed == 3
    assert index.reused == 0
    assert any(f.rule_id == "R001" for f in findings_from_index(index))


def test_warm_build_reuses_cache_without_reparsing(tmp_path):
    write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    cold = build_index([tmp_path / "src"], root=tmp_path, cache=cache)
    cold.save_cache()

    warm = build_index([tmp_path / "src"], root=tmp_path, cache=cache)
    assert warm.parsed == 0
    assert warm.reused == 3
    # Cached per-file findings round-trip exactly.
    assert finding_keys(warm) == finding_keys(cold)


def test_content_change_invalidates_only_that_file(tmp_path):
    files = write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    build_index([tmp_path / "src"], root=tmp_path, cache=cache).save_cache()

    # Fix the R001 violation: only dirty.py should reparse.
    files["src/repro/core/dirty.py"].write_text(CLEAN, encoding="utf-8")
    index = build_index([tmp_path / "src"], root=tmp_path, cache=cache)
    assert index.parsed == 1
    assert index.reused == 2
    assert not any(f.rule_id == "R001" for f in findings_from_index(index))


def test_new_file_joins_cache_incrementally(tmp_path):
    write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    build_index([tmp_path / "src"], root=tmp_path, cache=cache).save_cache()

    extra = tmp_path / "src/repro/core/extra.py"
    extra.write_text(DIRTY, encoding="utf-8")
    index = build_index([tmp_path / "src"], root=tmp_path, cache=cache)
    assert index.parsed == 1
    assert index.reused == 3
    r001 = [f for f in findings_from_index(index) if f.rule_id == "R001"]
    assert {f.path for f in r001} == {
        "src/repro/core/dirty.py",
        "src/repro/core/extra.py",
    }


def test_graph_rules_run_at_full_strength_on_a_warm_cache(tmp_path):
    # An R009 violation lives only in the cached summaries: the warm run
    # must still surface it with zero reparses.
    write_tree(tmp_path)
    bad = tmp_path / "src/repro/core/upward.py"
    bad.write_text("import repro.scheduling.policy\n", encoding="utf-8")
    cache = tmp_path / "cache.json"
    build_index([tmp_path / "src"], root=tmp_path, cache=cache).save_cache()

    warm = build_index([tmp_path / "src"], root=tmp_path, cache=cache)
    assert warm.parsed == 0
    r009 = [f for f in findings_from_index(warm) if f.rule_id == "R009"]
    assert len(r009) == 1
    assert r009[0].path == "src/repro/core/upward.py"


def test_malformed_cache_is_tolerated(tmp_path):
    write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    cache.write_text("{ this is not json", encoding="utf-8")
    index = build_index([tmp_path / "src"], root=tmp_path, cache=cache)
    assert index.parsed == 3
    index.save_cache()
    payload = json.loads(cache.read_text(encoding="utf-8"))
    assert payload["version"] == INDEX_CACHE_VERSION


def test_stale_cache_version_forces_full_reparse(tmp_path):
    write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    build_index([tmp_path / "src"], root=tmp_path, cache=cache).save_cache()
    payload = json.loads(cache.read_text(encoding="utf-8"))
    payload["version"] = INDEX_CACHE_VERSION + 1
    cache.write_text(json.dumps(payload), encoding="utf-8")

    index = build_index([tmp_path / "src"], root=tmp_path, cache=cache)
    assert index.parsed == 3
    assert index.reused == 0


def test_partial_scope_run_keeps_out_of_scope_cache_entries(tmp_path):
    # CI lints subsets (e.g. src/repro/devtools alone); a scoped run
    # must not evict the rest of the project from the cache.
    write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    build_index([tmp_path / "src"], root=tmp_path, cache=cache).save_cache()

    scoped = build_index(
        [tmp_path / "src/repro/core"], root=tmp_path, cache=cache
    )
    assert scoped.parsed == 0
    scoped.save_cache()

    warm = build_index([tmp_path / "src"], root=tmp_path, cache=cache)
    assert warm.parsed == 0
    assert warm.reused == 3


def test_no_cache_path_never_touches_disk(tmp_path):
    write_tree(tmp_path)
    index = build_index([tmp_path / "src"], root=tmp_path, cache=None)
    index.save_cache()
    assert not list(tmp_path.glob("*.json"))
    assert index.parsed == 3
