"""Graph rules: R009 import layering, R010 async safety, R011 single-writer.

Each test writes a small ``src/repro/...`` tree and asserts on the
whole-program pass — good fixtures lint clean, bad fixtures produce
exactly the expected finding.
"""

from __future__ import annotations

import textwrap


def src(code: str) -> str:
    return textwrap.dedent(code).lstrip()


# ---------------------------------------------------------------------------
# R009 — import layering
# ---------------------------------------------------------------------------


def test_r009_downward_import_is_clean(tree):
    tree.write("src/repro/core/thing.py", "X = 1\n")
    tree.write("src/repro/api/surface.py", "import repro.core.thing\n")
    assert tree.rule_ids() == []


def test_r009_upward_import_is_flagged(tree):
    tree.write("src/repro/core/thing.py", "import repro.api.surface\n")
    tree.write("src/repro/api/surface.py", "X = 1\n")
    findings = [f for f in tree.lint() if f.rule_id == "R009"]
    assert len(findings) == 1
    f = findings[0]
    assert f.path == "src/repro/core/thing.py"
    assert "upward import repro.core.thing -> repro.api.surface" in f.message
    assert f.line == 1


def test_r009_same_rank_cross_package_import_is_flagged(tree):
    # scheduling and perfmodel share the policy layer: neither may
    # import the other at module level.
    tree.write("src/repro/scheduling/pol.py", "import repro.perfmodel.band\n")
    tree.write("src/repro/perfmodel/band.py", "X = 1\n")
    findings = [f for f in tree.lint() if f.rule_id == "R009"]
    assert len(findings) == 1
    assert "same-rank import" in findings[0].message


def test_r009_type_checking_guard_is_exempt(tree):
    tree.write(
        "src/repro/core/thing.py",
        src(
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                import repro.api.surface
            """
        ),
    )
    tree.write("src/repro/api/surface.py", "X = 1\n")
    assert tree.rule_ids() == []


def test_r009_function_scoped_import_is_exempt(tree):
    tree.write(
        "src/repro/core/thing.py",
        src(
            """
            def late_bound():
                import repro.api.surface
                return repro.api.surface
            """
        ),
    )
    tree.write("src/repro/api/surface.py", "X = 1\n")
    assert tree.rule_ids() == []


def test_r009_same_package_cycle_is_flagged(tree):
    tree.write("src/repro/core/a.py", "import repro.core.b\n")
    tree.write("src/repro/core/b.py", "import repro.core.a\n")
    findings = [f for f in tree.lint() if f.rule_id == "R009"]
    assert len(findings) == 1
    assert "module-level import cycle" in findings[0].message
    assert "repro.core.a" in findings[0].message
    assert "repro.core.b" in findings[0].message


def test_r009_deferred_edge_breaks_a_cycle(tree):
    tree.write("src/repro/core/a.py", "import repro.core.b\n")
    tree.write(
        "src/repro/core/b.py",
        src(
            """
            def back():
                import repro.core.a
                return repro.core.a
            """
        ),
    )
    assert tree.rule_ids() == []


def test_r009_unknown_package_must_be_placed_in_a_layer(tree):
    tree.write("src/repro/mystery/x.py", "X = 1\n")
    findings = [f for f in tree.lint() if f.rule_id == "R009"]
    assert len(findings) == 1
    assert "'repro.mystery' is not in the architecture DAG" in findings[0].message


# ---------------------------------------------------------------------------
# R010 — async safety in repro.serving
# ---------------------------------------------------------------------------

R010_GOOD = src(
    """
    import asyncio


    class Service:
        def __init__(self, clock):
            self.clock = clock

        async def run(self):
            await self.clock.sleep(1.0)
            await asyncio.sleep(0)
            return self.clock.now()
    """
)

R010_BAD = src(
    """
    import asyncio
    import time


    class Service:
        async def run(self):
            time.sleep(0.1)
            await asyncio.sleep(1.0)
            loop = asyncio.get_event_loop()
            return loop.time()
    """
)


def test_r010_virtual_clock_usage_is_clean(tree):
    tree.write("src/repro/serving/svc.py", R010_GOOD)
    assert tree.rule_ids() == []


def test_r010_blocking_and_bare_sleep_and_loop_time_are_flagged(tree):
    tree.write("src/repro/serving/svc.py", R010_BAD)
    messages = [f.message for f in tree.lint() if f.rule_id == "R010"]
    assert len(messages) == 3
    assert any("blocking call time.sleep()" in m for m in messages)
    assert any("bare asyncio.sleep bypasses VirtualClock" in m for m in messages)
    assert any("loop.time() bypasses VirtualClock" in m for m in messages)


def test_r010_unawaited_coroutine_is_flagged(tree):
    tree.write(
        "src/repro/serving/svc.py",
        src(
            """
            class Service:
                async def _tick(self):
                    return 1

                def kick(self):
                    self._tick()
            """
        ),
    )
    findings = [f for f in tree.lint() if f.rule_id == "R010"]
    assert len(findings) == 1
    assert "coroutine _tick() created but never awaited" in findings[0].message


def test_r010_only_applies_to_serving(tree):
    tree.write("src/repro/core/svc.py", R010_BAD)
    assert "R010" not in tree.rule_ids()


# ---------------------------------------------------------------------------
# R011 — single-writer controller invariant
# ---------------------------------------------------------------------------

R011_GOOD = src(
    """
    class Service:
        def __init__(self, controllers):
            self.controllers = list(controllers)

        async def _scheduler_loop(self):  # reprolint: writer
            self._apply()

        def _apply(self):
            self.controllers[0].request("vm-1")

        def report(self):
            return [c.state() for c in self.controllers]
    """
)

R011_BAD_MUTATION = src(
    """
    class Service:
        def __init__(self, controllers):
            self.controllers = list(controllers)

        async def _scheduler_loop(self):  # reprolint: writer
            self._apply()

        def _apply(self):
            self.controllers[0].request("vm-1")

        async def handle(self, vm):
            self.controllers[0].delete(vm)
    """
)

R011_NO_WRITER = src(
    """
    class Service:
        def __init__(self, controllers):
            self.controllers = list(controllers)

        async def handle(self, vm):
            self.controllers[0].request(vm)
    """
)


def test_r011_annotated_writer_closure_is_clean(tree):
    tree.write("src/repro/serving/svc.py", R011_GOOD)
    assert tree.rule_ids() == []


def test_r011_mutation_outside_writer_closure_is_flagged(tree):
    tree.write("src/repro/serving/svc.py", R011_BAD_MUTATION)
    findings = [f for f in tree.lint() if f.rule_id == "R011"]
    assert len(findings) == 1
    f = findings[0]
    assert "Service.handle calls controller.delete()" in f.message
    assert "outside the single-writer scheduler closure" in f.message


def test_r011_mutating_class_without_annotation_is_flagged(tree):
    tree.write("src/repro/serving/svc.py", R011_NO_WRITER)
    findings = [f for f in tree.lint() if f.rule_id == "R011"]
    assert len(findings) == 1
    assert "no method is annotated `# reprolint: writer`" in findings[0].message


def test_r011_init_only_mutation_needs_no_annotation(tree):
    # __init__ builds the fleet before any task exists: setup-phase
    # writes alone don't require a writer annotation.
    tree.write(
        "src/repro/serving/svc.py",
        src(
            """
            class Service:
                def __init__(self, controllers):
                    self.controllers = list(controllers)
                    self.controllers[0].request("warmup")

                def report(self):
                    return [c.state() for c in self.controllers]
            """
        ),
    )
    assert tree.rule_ids() == []


def test_r011_readonly_iteration_in_comprehension_is_clean(tree):
    tree.write(
        "src/repro/serving/svc.py",
        src(
            """
            class Service:
                def __init__(self, controllers):
                    self.controllers = list(controllers)

                def tickets(self):
                    return [c.ticket() for c in self.controllers]
            """
        ),
    )
    assert tree.rule_ids() == []


def test_r011_mutating_comprehension_alias_is_flagged(tree):
    tree.write(
        "src/repro/serving/svc.py",
        src(
            """
            class Service:
                def __init__(self, controllers):
                    self.controllers = list(controllers)

                def drain(self):
                    return [c.delete("vm") for c in self.controllers]
            """
        ),
    )
    findings = [f for f in tree.lint() if f.rule_id == "R011"]
    assert len(findings) == 1
    assert "no method is annotated" in findings[0].message


def test_r011_only_applies_to_serving(tree):
    tree.write("src/repro/core/svc.py", R011_NO_WRITER)
    assert "R011" not in tree.rule_ids()
