"""R012 process-boundary hygiene and R013 determinism taint.

R012: executor submissions in ``repro.sharding``/``repro.runner`` must
be module-level callables with JSON-primitive payloads — no lambdas,
nested functions, bound methods, RNGs or open handles across the fork.

R013: wall-clock-derived values (``time.perf_counter`` and friends) may
exist as telemetry but must never flow into a replayable artifact — a
decision log, checkpoint, or fingerprint digest.
"""

from __future__ import annotations

import textwrap


def src(code: str) -> str:
    return textwrap.dedent(code).lstrip()


# ---------------------------------------------------------------------------
# R012 — process-boundary hygiene
# ---------------------------------------------------------------------------

R012_GOOD = src(
    """
    from concurrent.futures import ProcessPoolExecutor


    def _run_shard(payload):
        return payload["seed"]


    def dispatch(specs):
        results = []
        with ProcessPoolExecutor(2) as pool:
            futures = [
                pool.submit(_run_shard, {"seed": spec, "hosts": 100})
                for spec in specs
            ]
            results = [f.result() for f in futures]
        return results
    """
)


def test_r012_module_level_worker_with_json_payload_is_clean(tree):
    tree.write("src/repro/sharding/disp.py", R012_GOOD)
    assert tree.rule_ids() == []


def test_r012_lambda_submission_is_flagged(tree):
    tree.write(
        "src/repro/sharding/disp.py",
        src(
            """
            from concurrent.futures import ProcessPoolExecutor


            def dispatch(specs):
                with ProcessPoolExecutor(2) as pool:
                    return [pool.submit(lambda s: s, spec) for spec in specs]
            """
        ),
    )
    findings = [f for f in tree.lint() if f.rule_id == "R012"]
    assert len(findings) == 1
    assert "lambda submitted across the process boundary" in findings[0].message


def test_r012_nested_function_submission_is_flagged(tree):
    tree.write(
        "src/repro/runner/pool.py",
        src(
            """
            from concurrent.futures import ProcessPoolExecutor


            def dispatch(specs):
                def worker(spec):
                    return spec

                with ProcessPoolExecutor(2) as pool:
                    return [pool.submit(worker, spec) for spec in specs]
            """
        ),
    )
    findings = [f for f in tree.lint() if f.rule_id == "R012"]
    assert len(findings) == 1
    assert "nested function worker() submitted" in findings[0].message


def test_r012_bound_method_submission_is_flagged(tree):
    tree.write(
        "src/repro/sharding/disp.py",
        src(
            """
            from concurrent.futures import ProcessPoolExecutor


            class Dispatcher:
                def run_one(self, spec):
                    return spec

                def dispatch(self, specs):
                    with ProcessPoolExecutor(2) as pool:
                        return [pool.submit(self.run_one, s) for s in specs]
            """
        ),
    )
    findings = [f for f in tree.lint() if f.rule_id == "R012"]
    assert len(findings) == 1
    assert "submit a module-level function instead of a bound method" in (
        findings[0].message
    )


def test_r012_rng_handle_in_payload_is_flagged(tree):
    tree.write(
        "src/repro/sharding/disp.py",
        src(
            """
            from concurrent.futures import ProcessPoolExecutor

            from numpy.random import default_rng


            def _run_shard(rng):
                return rng.integers(10)


            def dispatch(seed):
                rng = default_rng(seed)
                with ProcessPoolExecutor(2) as pool:
                    return pool.submit(_run_shard, rng).result()
            """
        ),
    )
    findings = [f for f in tree.lint() if f.rule_id == "R012"]
    assert len(findings) == 1
    assert "payload carries numpy.random.default_rng() handle 'rng'" in (
        findings[0].message
    )


def test_r012_inline_open_handle_in_payload_is_flagged(tree):
    tree.write(
        "src/repro/runner/pool.py",
        src(
            """
            from concurrent.futures import ProcessPoolExecutor


            def _run_shard(handle):
                return handle.read()


            def dispatch(path):
                with ProcessPoolExecutor(2) as pool:
                    return pool.submit(_run_shard, open(path)).result()
            """
        ),
    )
    findings = [f for f in tree.lint() if f.rule_id == "R012"]
    assert len(findings) == 1
    assert "payload constructs open() inline" in findings[0].message


def test_r012_only_applies_to_sharding_and_runner(tree):
    tree.write(
        "src/repro/core/disp.py",
        src(
            """
            from concurrent.futures import ProcessPoolExecutor


            def dispatch(specs):
                with ProcessPoolExecutor(2) as pool:
                    return [pool.submit(lambda s: s, spec) for spec in specs]
            """
        ),
    )
    assert "R012" not in tree.rule_ids()


# ---------------------------------------------------------------------------
# R013 — determinism taint (wall clock -> replayable artifacts)
# ---------------------------------------------------------------------------


def test_r013_wall_clock_into_decision_log_is_flagged(tree):
    tree.write(
        "src/repro/runner/cell.py",
        src(
            """
            import time


            def run(decision_log):
                started = time.perf_counter()
                wall = time.perf_counter() - started
                decision_log.append({"wall_s": wall})
            """
        ),
    )
    findings = [f for f in tree.lint() if f.rule_id == "R013"]
    assert len(findings) == 1
    assert "flows into decision_log.append" in findings[0].message


def test_r013_taint_flows_through_a_helper_return(tree):
    tree.write(
        "src/repro/runner/cell.py",
        src(
            """
            import time


            def _elapsed(started):
                return time.perf_counter() - started


            def harvest(checkpoint, started):
                record = {"wall": _elapsed(started)}
                checkpoint.append(record)
            """
        ),
    )
    findings = [f for f in tree.lint() if f.rule_id == "R013"]
    assert len(findings) == 1
    assert "(checkpoint)" in findings[0].message


def test_r013_taint_flows_into_a_callee_parameter(tree):
    tree.write(
        "src/repro/sharding/log.py",
        src(
            """
            import time


            def persist(checkpoint, record):
                checkpoint.append(record)


            def run(checkpoint):
                wall = time.perf_counter()
                persist(checkpoint, {"wall": wall})
            """
        ),
    )
    findings = [f for f in tree.lint() if f.rule_id == "R013"]
    assert len(findings) == 1
    assert "(checkpoint)" in findings[0].message


def test_r013_wall_clock_into_fingerprint_digest_is_flagged(tree):
    tree.write(
        "src/repro/runner/fp.py",
        src(
            """
            import hashlib
            import time


            def fingerprint():
                digest = hashlib.sha256()
                digest.update(str(time.perf_counter()).encode())
                return digest.hexdigest()
            """
        ),
    )
    findings = [f for f in tree.lint() if f.rule_id == "R013"]
    assert len(findings) == 1
    assert "fingerprint digest" in findings[0].message


def test_r013_telemetry_outside_replay_artifacts_is_clean(tree):
    tree.write(
        "src/repro/runner/cell.py",
        src(
            """
            import time


            def run(histogram):
                started = time.perf_counter()
                wall = time.perf_counter() - started
                histogram.observe(wall)
                return {"wall_s": wall}
            """
        ),
    )
    assert tree.rule_ids() == []


def test_r013_accepts_a_justified_pragma(tree):
    tree.write(
        "src/repro/runner/cell.py",
        src(
            """
            import time


            def run(checkpoint):
                wall = time.perf_counter()
                # wall_s is operator telemetry; replay never reads it.
                checkpoint.append({"wall_s": wall})  # reprolint: disable=R013
            """
        ),
    )
    assert tree.rule_ids() == []


def test_r013_only_applies_to_decision_packages(tree):
    tree.write(
        "src/repro/core/cell.py",
        src(
            """
            import time


            def run(decision_log):
                decision_log.append({"wall": time.perf_counter()})
            """
        ),
    )
    assert "R013" not in tree.rule_ids()
