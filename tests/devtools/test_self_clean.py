"""The repo's own source must satisfy its lint gate.

This is the dogfooding test behind ``make lint`` / the CI lint job:
``src`` and ``scripts`` lint clean modulo the committed baseline, and
the determinism rules (which admit no baseline) are clean outright.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.devtools.baseline import Baseline
from repro.devtools.lint import LintReport, lint_paths
from repro.devtools.rules import DETERMINISM_RULES

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "lint-baseline.json"


def repo_paths() -> list[Path]:
    paths = [REPO_ROOT / "src"]
    if (REPO_ROOT / "scripts").is_dir():
        paths.append(REPO_ROOT / "scripts")
    return paths


@pytest.fixture(scope="module")
def findings():
    return lint_paths(repo_paths(), root=REPO_ROOT)


def test_src_and_scripts_clean_modulo_baseline(findings):
    baseline = Baseline.load(BASELINE) if BASELINE.exists() else Baseline({})
    report = LintReport(findings, baseline)
    assert report.ok, "new lint findings:\n" + report.to_text()


def test_determinism_rules_admit_zero_findings(findings):
    hard = [f for f in findings if f.rule_id in DETERMINISM_RULES]
    assert hard == [], "determinism findings (unbaselinable):\n" + "\n".join(
        f"{f.path}:{f.line}: {f.rule_id} {f.message}" for f in hard
    )


def test_committed_baseline_loads_and_is_empty():
    # The acceptance bar for this repo: no legacy debt at all.  If a
    # future change needs a baseline entry, relax this to a load-only
    # check — determinism rules will still be rejected by Baseline.load.
    assert BASELINE.exists(), "lint-baseline.json must be committed"
    assert len(Baseline.load(BASELINE)) == 0
