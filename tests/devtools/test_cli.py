"""CLI contract: exit codes 0/1/2, reporters, baseline flags.

Exercised through ``python -m repro.devtools.lint``'s ``main()`` and,
for the integration path, through ``repro lint`` (``repro.cli.main``).
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.devtools.lint import main as lint_main

CLEAN = "def add(a, b):\n    return a + b\n"
DIRTY = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
).lstrip()
# A baselinable (non-determinism) violation: exact float == on a score.
BASELINABLE = textwrap.dedent(
    """
    def same(score_a, score_b):
        return score_a == score_b
    """
).lstrip()


@pytest.fixture
def project(tmp_path, monkeypatch):
    """A minimal repo layout; cwd moved there so default paths resolve."""
    (tmp_path / "src" / "repro" / "scheduling").mkdir(parents=True)
    (tmp_path / "scripts").mkdir()
    monkeypatch.chdir(tmp_path)
    return tmp_path


def write(root, rel, text):
    (root / rel).write_text(text, encoding="utf-8")


def test_exit_0_on_clean_tree(project, capsys):
    write(project, "src/repro/scheduling/ok.py", CLEAN)
    assert lint_main(["src"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_exit_1_on_findings_with_hint_in_text(project, capsys):
    write(project, "scripts/run.py", DIRTY)
    assert lint_main(["scripts"]) == 1
    out = capsys.readouterr().out
    assert "R001" in out and "hint:" in out and "scripts/run.py:4" in out


def test_default_paths_are_src_and_scripts(project, capsys):
    write(project, "scripts/run.py", DIRTY)
    assert lint_main([]) == 1
    assert "R001" in capsys.readouterr().out


def test_json_report_shape(project, capsys):
    write(project, "scripts/run.py", DIRTY)
    assert lint_main(["scripts", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["counts"] == {"R001": 1}
    (entry,) = payload["findings"]
    assert entry["rule"] == "R001"
    assert entry["path"] == "scripts/run.py"
    assert entry["fingerprint"].startswith("R001:scripts/run.py:")


def test_usage_errors_exit_2(project, capsys):
    assert lint_main(["no/such/dir"]) == 2
    assert lint_main(["src", "--rules", "R999"]) == 2
    assert lint_main(["src", "--format", "yaml"]) == 2  # argparse itself
    assert lint_main(["src", "--write-baseline"]) == 2  # needs --baseline
    capsys.readouterr()


def test_malformed_baseline_exits_2(project, capsys):
    write(project, "src/repro/scheduling/ok.py", CLEAN)
    write(project, "baseline.json", "{broken")
    assert lint_main(["src", "--baseline", "baseline.json"]) == 2
    assert "usage error" in capsys.readouterr().err


def test_write_baseline_then_clean_then_new_finding(project, capsys):
    write(project, "src/repro/scheduling/score.py", BASELINABLE)
    assert lint_main(["src", "--baseline", "b.json", "--write-baseline"]) == 0
    capsys.readouterr()

    # Baselined: the legacy violation no longer fails the run...
    assert lint_main(["src", "--baseline", "b.json"]) == 0
    assert "1 baselined occurrence(s)" in capsys.readouterr().out

    # ...but a second, new violation still does.
    write(
        project,
        "src/repro/scheduling/score.py",
        BASELINABLE + "\ndef worse(ratio):\n    return ratio == 0.5\n",
    )
    assert lint_main(["src", "--baseline", "b.json"]) == 1


def test_write_baseline_refuses_determinism_findings(project, capsys):
    write(project, "scripts/run.py", DIRTY)
    assert lint_main(["scripts", "--baseline", "b.json", "--write-baseline"]) == 2
    assert "cannot be baselined" in capsys.readouterr().err
    assert not (project / "b.json").exists()


def test_rules_subset(project, capsys):
    write(project, "scripts/run.py", DIRTY)
    assert lint_main(["scripts", "--rules", "R002"]) == 0
    assert lint_main(["scripts", "--rules", "r001,R002"]) == 1
    capsys.readouterr()


def test_list_rules(project, capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R001", "R004", "R008"):
        assert rule_id in out


def test_graph_dump_shape_and_exit_0(project, capsys):
    write(project, "src/repro/scheduling/ok.py", CLEAN)
    assert lint_main(["src", "--graph"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "repro.scheduling.ok" in payload["modules"]
    assert payload["modules"]["repro.scheduling.ok"]["package"] == "scheduling"
    assert payload["violations"] == []
    assert payload["cycles"] == []
    assert payload["cache"]["files"] == 1


def test_default_cache_written_and_reused(project, capsys):
    write(project, "src/repro/scheduling/ok.py", CLEAN)
    assert lint_main(["src", "--graph"]) == 0
    assert json.loads(capsys.readouterr().out)["cache"]["parsed"] == 1
    assert (project / ".reprolint-cache.json").exists()

    assert lint_main(["src", "--graph"]) == 0
    warm = json.loads(capsys.readouterr().out)["cache"]
    assert warm == {"files": 1, "parsed": 0, "reused": 1}


def test_no_cache_flag_skips_the_cache_file(project, capsys):
    write(project, "src/repro/scheduling/ok.py", CLEAN)
    assert lint_main(["src", "--no-cache"]) == 0
    assert not (project / ".reprolint-cache.json").exists()
    capsys.readouterr()


def test_cache_flag_relocates_the_cache_file(project, capsys):
    write(project, "src/repro/scheduling/ok.py", CLEAN)
    assert lint_main(["src", "--cache", "custom-cache.json"]) == 0
    assert (project / "custom-cache.json").exists()
    assert not (project / ".reprolint-cache.json").exists()
    capsys.readouterr()


def test_repro_cli_lint_graph_passthrough(project, capsys):
    write(project, "src/repro/scheduling/ok.py", CLEAN)
    assert cli_main(["lint", "src", "--graph"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "repro.scheduling.ok" in payload["modules"]


def test_repro_cli_lint_subcommand(project, capsys):
    write(project, "scripts/run.py", DIRTY)
    assert cli_main(["lint", "scripts"]) == 1
    assert "R001" in capsys.readouterr().out
    write(project, "scripts/run.py", CLEAN)
    assert cli_main(["lint", "scripts", "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out)["ok"] is True
