"""Shared helper: lint an in-memory source tree.

Each test writes fixture modules into a temp directory laid out like
the real repo (``src/repro/...``, ``scripts/...``) so package-scoped
rules (R004, R005) and the cross-module kernel-parity rule (R007) see
the dotted module names they key on.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint import lint_paths
from repro.devtools.rules import Finding


class LintTree:
    """A temp source tree plus a one-call lint runner."""

    def __init__(self, root: Path):
        self.root = root

    def write(self, rel_path: str, source: str) -> Path:
        path = self.root / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        return path

    def lint(self, *rel_paths: str) -> list[Finding]:
        paths = [self.root / p for p in rel_paths] if rel_paths else [self.root]
        return lint_paths(paths, root=self.root)

    def rule_ids(self, *rel_paths: str) -> list[str]:
        return [f.rule_id for f in self.lint(*rel_paths)]


@pytest.fixture
def tree(tmp_path: Path) -> LintTree:
    return LintTree(tmp_path)
