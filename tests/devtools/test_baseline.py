"""Baseline round-trips, count budgets, and determinism-rule refusal."""

from __future__ import annotations

import json

import pytest

from repro.devtools.baseline import BASELINE_VERSION, Baseline, BaselineError
from repro.devtools.rules import Finding


def finding(rule_id="R005", path="src/a.py", line=3, snippet="x == y"):
    return Finding(
        rule_id=rule_id,
        path=path,
        line=line,
        col=0,
        message="m",
        hint="h",
        snippet=snippet,
    )


def test_round_trip_write_load_filter(tmp_path):
    path = tmp_path / "baseline.json"
    findings = [finding(), finding(line=9), finding(path="src/b.py")]
    Baseline.from_findings(findings).save(path)

    loaded = Baseline.load(path)
    assert len(loaded) == 3
    # Every baselined finding is absorbed, regardless of line number.
    assert loaded.filter_new(findings) == []
    # A third copy of the same source line exceeds the count budget.
    extra = finding(line=42)
    assert loaded.filter_new([*findings, extra]) == [extra]
    # Unknown fingerprints are always new.
    fresh = finding(rule_id="R008")
    assert loaded.filter_new([fresh]) == [fresh]


def test_fingerprint_is_line_number_free():
    assert finding(line=3).fingerprint() == finding(line=300).fingerprint()
    assert finding(snippet="a == b").fingerprint() != finding().fingerprint()


def test_saved_file_is_stable_json(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.from_findings([finding(), finding(line=9)]).save(path)
    payload = json.loads(path.read_text())
    assert payload["version"] == BASELINE_VERSION
    assert payload["findings"] == {"R005:src/a.py:x == y": 2}
    # Re-saving an identical baseline is byte-stable (sorted keys).
    before = path.read_text()
    Baseline.load(path).save(path)
    assert path.read_text() == before


@pytest.mark.parametrize("rule_id", ["R001", "R002", "R003", "R004", "R013"])
def test_determinism_rules_cannot_be_written(rule_id):
    # R013 rides along: a wall-clock flow into a replayable artifact is
    # never legacy debt (pragma with justification is the only out).
    with pytest.raises(BaselineError, match="cannot be baselined"):
        Baseline.from_findings([finding(rule_id=rule_id)])


@pytest.mark.parametrize("rule_id", ["R001", "R002", "R003", "R004", "R013"])
def test_determinism_rules_rejected_at_load(tmp_path, rule_id):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {"version": 1, "findings": {f"{rule_id}:src/a.py:import time": 1}}
        )
    )
    with pytest.raises(BaselineError, match="zero suppressions"):
        Baseline.load(path)


def _layering_tree(tree):
    tree.write("src/repro/core/thing.py", "import repro.api.surface\n")
    tree.write(
        "src/repro/serving/svc.py",
        "class Service:\n"
        "    def __init__(self, controllers):\n"
        "        self.controllers = list(controllers)\n"
        "\n"
        "    async def handle(self, vm):\n"
        "        self.controllers[0].request(vm)\n",
    )
    tree.write("src/repro/api/surface.py", "X = 1\n")


def test_cross_file_findings_round_trip_through_a_baseline(tree, tmp_path):
    # Graph-rule findings (R009 layering, R011 single-writer) baseline
    # and filter exactly like per-file findings.
    _layering_tree(tree)
    findings = tree.lint()
    assert sorted(f.rule_id for f in findings) == ["R009", "R011"]

    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(path)
    assert Baseline.load(path).filter_new(findings) == []


def test_cross_file_fingerprints_survive_unrelated_edits(tree, tmp_path):
    # Fingerprints are line-number-free: pushing the violating import
    # down the file must not resurrect a baselined R009 finding.
    _layering_tree(tree)
    path = tmp_path / "baseline.json"
    Baseline.from_findings(tree.lint()).save(path)

    tree.write(
        "src/repro/core/thing.py",
        '"""Docstring added above the import."""\n\n'
        "import repro.api.surface\n",
    )
    moved = tree.lint()
    assert any(f.rule_id == "R009" and f.line == 3 for f in moved)
    assert Baseline.load(path).filter_new(moved) == []


def test_fingerprints_are_stable_under_finding_reorder(tree):
    _layering_tree(tree)
    findings = tree.lint()
    forward = Baseline.from_findings(findings)
    backward = Baseline.from_findings(list(reversed(findings)))
    assert forward.fingerprints == backward.fingerprints


@pytest.mark.parametrize(
    "payload",
    [
        "not json {",
        json.dumps([1, 2]),
        json.dumps({"version": 99, "findings": {}}),
        json.dumps({"version": 1, "findings": [1]}),
        json.dumps({"version": 1, "findings": {"R005:a:b": 0}}),
        json.dumps({"version": 1, "findings": {"R005:a:b": "two"}}),
    ],
)
def test_malformed_baselines_rejected(tmp_path, payload):
    path = tmp_path / "baseline.json"
    path.write_text(payload)
    with pytest.raises(BaselineError):
        Baseline.load(path)
