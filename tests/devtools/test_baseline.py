"""Baseline round-trips, count budgets, and determinism-rule refusal."""

from __future__ import annotations

import json

import pytest

from repro.devtools.baseline import BASELINE_VERSION, Baseline, BaselineError
from repro.devtools.rules import Finding


def finding(rule_id="R005", path="src/a.py", line=3, snippet="x == y"):
    return Finding(
        rule_id=rule_id,
        path=path,
        line=line,
        col=0,
        message="m",
        hint="h",
        snippet=snippet,
    )


def test_round_trip_write_load_filter(tmp_path):
    path = tmp_path / "baseline.json"
    findings = [finding(), finding(line=9), finding(path="src/b.py")]
    Baseline.from_findings(findings).save(path)

    loaded = Baseline.load(path)
    assert len(loaded) == 3
    # Every baselined finding is absorbed, regardless of line number.
    assert loaded.filter_new(findings) == []
    # A third copy of the same source line exceeds the count budget.
    extra = finding(line=42)
    assert loaded.filter_new([*findings, extra]) == [extra]
    # Unknown fingerprints are always new.
    fresh = finding(rule_id="R008")
    assert loaded.filter_new([fresh]) == [fresh]


def test_fingerprint_is_line_number_free():
    assert finding(line=3).fingerprint() == finding(line=300).fingerprint()
    assert finding(snippet="a == b").fingerprint() != finding().fingerprint()


def test_saved_file_is_stable_json(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.from_findings([finding(), finding(line=9)]).save(path)
    payload = json.loads(path.read_text())
    assert payload["version"] == BASELINE_VERSION
    assert payload["findings"] == {"R005:src/a.py:x == y": 2}
    # Re-saving an identical baseline is byte-stable (sorted keys).
    before = path.read_text()
    Baseline.load(path).save(path)
    assert path.read_text() == before


@pytest.mark.parametrize("rule_id", ["R001", "R002", "R003", "R004"])
def test_determinism_rules_cannot_be_written(rule_id):
    with pytest.raises(BaselineError, match="cannot be baselined"):
        Baseline.from_findings([finding(rule_id=rule_id)])


@pytest.mark.parametrize("rule_id", ["R001", "R002", "R003", "R004"])
def test_determinism_rules_rejected_at_load(tmp_path, rule_id):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {"version": 1, "findings": {f"{rule_id}:src/a.py:import time": 1}}
        )
    )
    with pytest.raises(BaselineError, match="zero suppressions"):
        Baseline.load(path)


@pytest.mark.parametrize(
    "payload",
    [
        "not json {",
        json.dumps([1, 2]),
        json.dumps({"version": 99, "findings": {}}),
        json.dumps({"version": 1, "findings": [1]}),
        json.dumps({"version": 1, "findings": {"R005:a:b": 0}}),
        json.dumps({"version": 1, "findings": {"R005:a:b": "two"}}),
    ],
)
def test_malformed_baselines_rejected(tmp_path, payload):
    path = tmp_path / "baseline.json"
    path.write_text(payload)
    with pytest.raises(BaselineError):
        Baseline.load(path)
