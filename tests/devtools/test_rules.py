"""Good/bad fixture pairs for the per-file reprolint rules (R001-R008).

The whole-program rules have their own fixture suites: R009-R011 in
test_graph_rules.py, R012-R013 in test_boundary_taint.py, and the index
cache in test_index.py.

Each test writes a tiny module that either violates exactly one rule
(the *bad* fixture — the rule must fire) or uses the blessed idiom
(the *good* fixture — the rule must stay silent).
"""

from __future__ import annotations

import textwrap

from repro.devtools.rules import DETERMINISM_RULES, RULES, rule_table


def src(text: str) -> str:
    return textwrap.dedent(text).lstrip()


# ---------------------------------------------------------------------------
# R001 — wall clock / entropy
# ---------------------------------------------------------------------------


def test_r001_flags_wall_clock_and_entropy(tree):
    tree.write(
        "src/repro/workload/gen.py",
        src(
            """
            import time
            import uuid
            import os

            def stamp():
                return time.time(), uuid.uuid4(), os.urandom(8)
            """
        ),
    )
    assert tree.rule_ids() == ["R001", "R001", "R001"]


def test_r001_resolves_import_aliases(tree):
    tree.write(
        "src/repro/workload/gen.py",
        src(
            """
            from time import time as wall
            from datetime import datetime

            def stamp():
                return wall(), datetime.now()
            """
        ),
    )
    assert tree.rule_ids() == ["R001", "R001"]


def test_r001_allows_perf_counter_and_timing_shim(tree):
    tree.write(
        "src/repro/workload/gen.py",
        src(
            """
            import time

            def elapsed(t0):
                return time.perf_counter() - t0
            """
        ),
    )
    # The obs timing shim module itself may read the wall clock.
    tree.write(
        "src/repro/obs/metrics.py",
        src(
            """
            import time

            def now():
                return time.time()
            """
        ),
    )
    assert tree.rule_ids() == []


def test_r001_flags_monotonic_clocks(tree):
    # monotonic reads are still wall-clock state: a replay on another
    # machine sees different values.
    tree.write(
        "src/repro/workload/gen.py",
        src(
            """
            import time

            def stamp():
                return time.monotonic(), time.monotonic_ns()
            """
        ),
    )
    assert tree.rule_ids() == ["R001", "R001"]


def test_r001_flags_every_secrets_function(tree):
    # The whole secrets module is an entropy source — banned by prefix,
    # not by enumeration.
    tree.write(
        "src/repro/workload/gen.py",
        src(
            """
            import secrets
            from secrets import token_hex

            def ident():
                return token_hex(8), secrets.randbelow(10)
            """
        ),
    )
    assert tree.rule_ids() == ["R001", "R001"]


# ---------------------------------------------------------------------------
# R002 — global RNG
# ---------------------------------------------------------------------------


def test_r002_flags_stdlib_and_numpy_global_rng(tree):
    tree.write(
        "src/repro/workload/gen.py",
        src(
            """
            import random
            import numpy as np

            def draw():
                return random.random(), np.random.rand(3), np.random.shuffle([1])
            """
        ),
    )
    assert tree.rule_ids() == ["R002", "R002", "R002"]


def test_r002_allows_explicit_generators(tree):
    tree.write(
        "src/repro/workload/gen.py",
        src(
            """
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                ss = np.random.SeedSequence(seed)
                return rng.random(), np.random.PCG64(seed), ss
            """
        ),
    )
    assert tree.rule_ids() == []


# ---------------------------------------------------------------------------
# R003 — unseeded default_rng
# ---------------------------------------------------------------------------


def test_r003_flags_unseeded_default_rng(tree):
    tree.write(
        "src/repro/workload/gen.py",
        src(
            """
            from numpy.random import default_rng

            def draw():
                return default_rng().random()
            """
        ),
    )
    assert tree.rule_ids() == ["R003"]


def test_r003_allows_seeded_default_rng(tree):
    tree.write(
        "src/repro/workload/gen.py",
        src(
            """
            import numpy as np

            def draw(seed):
                return np.random.default_rng(seed).random()

            def draw_kw(seed):
                return np.random.default_rng(seed=seed).random()
            """
        ),
    )
    assert tree.rule_ids() == []


# ---------------------------------------------------------------------------
# R004 — unordered iteration in decision paths
# ---------------------------------------------------------------------------


def test_r004_flags_set_iteration_in_decision_package(tree):
    tree.write(
        "src/repro/scheduling/pick.py",
        src(
            """
            def pick(hosts):
                seen: set[int] = set()
                for h in seen:
                    yield h
                return [h for h in {1, 2, 3}]
            """
        ),
    )
    assert tree.rule_ids() == ["R004", "R004"]


def test_r004_flags_self_attr_sets_and_keys_and_set_ops(tree):
    tree.write(
        "src/repro/simulator/state.py",
        src(
            """
            class S:
                def __init__(self):
                    self._dirty = set()

                def flush(self, table, other):
                    for j in self._dirty:
                        pass
                    for k in table.keys():
                        pass
                    return list(self._dirty - other)
            """
        ),
    )
    assert tree.rule_ids() == ["R004", "R004", "R004"]


def test_r004_silent_when_sorted_or_outside_decision_packages(tree):
    tree.write(
        "src/repro/simulator/state.py",
        src(
            """
            class S:
                def __init__(self):
                    self._dirty = set()

                def flush(self):
                    for j in sorted(self._dirty):
                        pass
            """
        ),
    )
    # Same hash-order iteration, but in a non-decision package.
    tree.write(
        "src/repro/analysis/report.py",
        src(
            """
            def tags(items):
                return [t for t in set(items)]
            """
        ),
    )
    assert tree.rule_ids() == []


# ---------------------------------------------------------------------------
# R005 — exact float comparison on scoring expressions
# ---------------------------------------------------------------------------


def test_r005_flags_float_equality_on_scores(tree):
    tree.write(
        "src/repro/scheduling/score.py",
        src(
            """
            import math

            def same(score_a, score_b, ratio):
                if score_a == score_b:
                    return True
                return ratio != math.pi
            """
        ),
    )
    assert tree.rule_ids() == ["R005", "R005"]


def test_r005_honours_pragma_and_helpers(tree):
    tree.write(
        "src/repro/scheduling/score.py",
        src(
            """
            from repro.scheduling.constants import floats_equal

            def same(score_a, score_b, ratio, baseline_ratio):
                if floats_equal(score_a, score_b):
                    return True
                return ratio == baseline_ratio  # reprolint: disable=R005
            """
        ),
    )
    assert tree.rule_ids() == []


def test_r005_scoped_to_scheduling_and_simulator(tree):
    tree.write(
        "src/repro/analysis/post.py",
        src(
            """
            def same(score_a, score_b):
                return score_a == score_b
            """
        ),
    )
    assert tree.rule_ids() == []


# ---------------------------------------------------------------------------
# R006 — mutable defaults / frozen-dataclass backdoors
# ---------------------------------------------------------------------------


def test_r006_flags_mutable_defaults_and_setattr_backdoor(tree):
    tree.write(
        "src/repro/runner/cfg.py",
        src(
            """
            def collect(items=[], table={}):
                return items, table

            class Frozen:
                def rewrite(self, value):
                    object.__setattr__(self, "x", value)
            """
        ),
    )
    assert tree.rule_ids() == ["R006", "R006", "R006"]


def test_r006_allows_none_default_and_post_init(tree):
    tree.write(
        "src/repro/runner/cfg.py",
        src(
            """
            def collect(items=None):
                return list(items or [])

            class Frozen:
                def __post_init__(self):
                    object.__setattr__(self, "x", 1)
            """
        ),
    )
    assert tree.rule_ids() == []


# ---------------------------------------------------------------------------
# R007 — kernel signature parity
# ---------------------------------------------------------------------------

_REF = """
def naive_feasibility(cluster, vm, strict=True):
    pass
"""

_VEC_OK = """
class VectorCluster:
    def feasibility(self, vm, strict=True):
        pass
"""

_VEC_DRIFT = """
class VectorCluster:
    def feasibility(self, vm, strict=False):
        pass
"""


def test_r007_silent_when_signatures_match(tree):
    tree.write("src/repro/simulator/refkernel.py", src(_REF))
    tree.write("src/repro/simulator/vectorpool.py", src(_VEC_OK))
    assert tree.rule_ids() == []


def test_r007_flags_default_drift_and_missing_counterpart(tree):
    tree.write(
        "src/repro/simulator/refkernel.py",
        src(_REF) + src("def naive_orphan(cluster, vm):\n    pass"),
    )
    tree.write("src/repro/simulator/vectorpool.py", src(_VEC_DRIFT))
    findings = tree.lint()
    assert [f.rule_id for f in findings] == ["R007", "R007"]
    messages = "\n".join(f.message for f in findings)
    assert "signature drift" in messages
    assert "naive_orphan" in messages


def test_r007_silent_on_partial_lint_run(tree):
    # Only one of the kernel modules in the lint set: no comparison.
    tree.write("src/repro/simulator/refkernel.py", src(_REF))
    assert tree.rule_ids() == []


_PRUNE_OK = """
def pruned_feasibility(cluster, vm, strict=True):
    pass
"""

_PRUNE_DRIFT = """
def pruned_feasibility(cluster, request, strict=True):
    pass


def pruned_orphan(cluster):
    pass


def _pruned_helper(cluster, anything, goes=1):
    pass
"""


def test_r007_covers_prunekernel_mirrors(tree):
    tree.write("src/repro/simulator/vectorpool.py", src(_VEC_OK))
    tree.write("src/repro/simulator/prunekernel.py", src(_PRUNE_OK))
    assert tree.rule_ids() == []


def test_r007_flags_prunekernel_drift_but_not_private_helpers(tree):
    tree.write("src/repro/simulator/vectorpool.py", src(_VEC_OK))
    tree.write("src/repro/simulator/prunekernel.py", src(_PRUNE_DRIFT))
    findings = tree.lint()
    assert [f.rule_id for f in findings] == ["R007", "R007"]
    messages = "\n".join(f.message for f in findings)
    assert "prunekernel.pruned_feasibility" in messages
    assert "pruned_orphan" in messages
    assert "_pruned_helper" not in messages


# ---------------------------------------------------------------------------
# R008 — metric emit sites
# ---------------------------------------------------------------------------


def test_r008_flags_inline_metric_names(tree):
    tree.write(
        "src/repro/simulator/emit.py",
        src(
            """
            def run(metrics):
                metrics.counter("arrivals")
                self.metrics.gauge("final_alloc_cpu", 1.0)
            """
        ),
    )
    assert tree.rule_ids() == ["R008", "R008"]


def test_r008_allows_registered_constants(tree):
    tree.write(
        "src/repro/simulator/emit.py",
        src(
            """
            from repro.obs import names as metric_names

            def run(metrics):
                metrics.counter(metric_names.ARRIVALS)
            """
        ),
    )
    assert tree.rule_ids() == []


# ---------------------------------------------------------------------------
# pragma anchoring on multi-line statements
# ---------------------------------------------------------------------------


def test_pragma_on_first_line_covers_wrapped_statement(tree):
    # Formatters anchor the finding on the continuation line, but the
    # author can only write the pragma on the line black leaves intact:
    # the first line of the statement.
    tree.write(
        "src/repro/scheduling/pol.py",
        src(
            """
            def admits(score):
                flag = bool(  # reprolint: disable=R005
                    score == 1.0,
                )
                return flag
            """
        ),
    )
    assert tree.rule_ids() == []


def test_pragma_on_continuation_line_still_works(tree):
    tree.write(
        "src/repro/scheduling/pol.py",
        src(
            """
            def admits(score):
                flag = bool(
                    score == 1.0,  # reprolint: disable=R005
                )
                return flag
            """
        ),
    )
    assert tree.rule_ids() == []


def test_pragma_on_compound_header_does_not_cover_the_suite(tree):
    # An `if` header pragma must not silence the whole block.
    tree.write(
        "src/repro/scheduling/pol.py",
        src(
            """
            def admits(score):
                if score:  # reprolint: disable=R005
                    return score == 1.0
                return False
            """
        ),
    )
    assert tree.rule_ids() == ["R005"]


# ---------------------------------------------------------------------------
# registry invariants
# ---------------------------------------------------------------------------


def test_rule_registry_is_consistent():
    ids = [r.rule_id for r in RULES]
    assert ids == sorted(ids) and len(ids) == len(set(ids))
    assert DETERMINISM_RULES == {"R001", "R002", "R003", "R004"}
    assert [row[0] for row in rule_table()] == ids
    assert all(r.hint for r in RULES)


def test_determinism_rules_ignore_pragmas(tree):
    tree.write(
        "src/repro/workload/gen.py",
        src(
            """
            import time

            def stamp():
                return time.time()  # reprolint: disable=R001
            """
        ),
    )
    assert tree.rule_ids() == ["R001"]
