"""Smoke tests: every example script must run end-to-end.

Examples are the library's advertised entry points; these tests run
each one in a subprocess (with downsized arguments where the script
accepts them) and assert on a fragment of its expected output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 300.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "SlackVM shared cluster" in out
    assert "% of the fleet saved" in out


def test_provider_study_small():
    out = run_example("provider_study.py", "azure", "60")
    assert "Figure 3" in out and "Figure 4" in out
    assert "Best mix:" in out


def test_testbed_isolation_short():
    out = run_example("testbed_isolation.py", "120")
    assert "Table IV" in out
    assert "1:1" in out and "3:1" in out


def test_capacity_planning(tmp_path):
    out = run_example("capacity_planning.py")
    assert "Theoretical lower bound" in out
    assert "progress" in out


def test_topology_pinning():
    out = run_example("topology_pinning.py")
    assert "LLC groups shared between vNodes: 0" in out
    assert "Naive (index-order) allocation" in out


def test_resilience_study():
    out = run_example("resilience_study.py")
    assert "Injecting 2 PM failures" in out
    assert "spare PMs" in out


def test_utilization_study():
    out = run_example("utilization_study.py")
    assert "efficiency" in out
    assert "1:1" in out and "4:1" in out


def test_control_plane():
    out = run_example("control_plane.py")
    assert "Audit log:" in out
    assert "pending" in out


def test_custom_provider():
    out = run_example("custom_provider.py")
    assert "Calibrating a catalog" in out
    assert "savings" in out
