"""Edge cases for live-migration consolidation
(:mod:`repro.migration.rebalancer`).

Covers the no-op corners — an empty cluster, a single occupied host,
``max_migrations=0`` — and the contract that a
:class:`MigratingSimulation` whose interval never fires (so its
migration list stays empty) is indistinguishable from the plain
:class:`VectorSimulation`.
"""

import numpy as np
import pytest

from repro.core import OversubscriptionLevel, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.migration.rebalancer import MigratingSimulation, Rebalancer
from repro.simulator import VectorSimulation
from repro.simulator.vectorpool import VectorCluster


def _machines(n=4, cpus=16, mem=64.0):
    return [MachineSpec(f"pm-{i}", cpus, mem) for i in range(n)]


def _vm(i, arrival=0.0, departure=None, vcpus=2, mem=4.0, ratio=2.0):
    return VMRequest(
        vm_id=f"vm-{i:03d}",
        spec=VMSpec(vcpus, mem),
        level=OversubscriptionLevel(ratio),
        arrival=arrival,
        departure=departure,
    )


def test_consolidate_empty_cluster_is_a_noop():
    cluster = VectorCluster(_machines(), SlackVMConfig())
    report = Rebalancer().consolidate(cluster)
    assert report.num_migrations == 0
    assert report.hosts_emptied == 0
    assert float(cluster.alloc_cpu.sum()) == 0.0


def test_consolidate_single_occupied_host_is_a_noop():
    cluster = VectorCluster(_machines(), SlackVMConfig())
    cluster.deploy(_vm(0), 1)
    before = cluster.alloc_cpu.copy()
    report = Rebalancer().consolidate(cluster)
    assert report.num_migrations == 0
    assert np.array_equal(cluster.alloc_cpu, before)


def test_consolidate_respects_max_migrations_zero():
    cluster = VectorCluster(_machines(), SlackVMConfig())
    for i, host in enumerate((0, 1, 2, 3)):
        cluster.deploy(_vm(i), host)
    report = Rebalancer(max_migrations=0).consolidate(cluster)
    assert report.num_migrations == 0
    assert report.hosts_emptied == 0


def test_consolidate_preserves_total_allocation_and_empties_sources():
    # Spread light VMs across every host: consolidation must empty at
    # least one and move nothing off a cliff.
    cluster = VectorCluster(_machines(), SlackVMConfig())
    for i, host in enumerate((0, 1, 2, 3, 0, 1)):
        cluster.deploy(_vm(i, vcpus=1, mem=2.0), host)
    cpu_before = float(cluster.alloc_cpu.sum())
    mem_before = float(cluster.alloc_mem.sum())
    report = Rebalancer().consolidate(cluster)
    assert report.hosts_emptied > 0
    for migration in report.migrations:
        assert migration.source != migration.target
    # Memory is conserved exactly; CPU may shrink when a vacated vNode
    # releases slack capacity, but never grows.
    assert float(cluster.alloc_mem.sum()) == pytest.approx(mem_before)
    assert float(cluster.alloc_cpu.sum()) <= cpu_before + 1e-9
    # Each distinct source was emptied once (it may be *refilled* later
    # as the target of a subsequent evacuation — that's consolidation).
    assert report.hosts_emptied == len({m.source for m in report.migrations})
    assert len(cluster.placed_vm_ids) == 6  # nothing lost or duplicated


@pytest.mark.parametrize("policy", ["progress", "first_fit"])
def test_interval_beyond_horizon_matches_plain_vector_simulation(policy):
    workload = [
        _vm(i, arrival=float(i), departure=float(i) + 25.0) for i in range(20)
    ]
    plain = VectorSimulation(_machines(), policy=policy).run(workload)
    migrating = MigratingSimulation(
        _machines(), policy=policy, rebalance_interval=10_000.0
    )
    result = migrating.run(workload)
    assert migrating.total_migrations == 0
    assert {k: (p.host, p.hosted_ratio, p.pooled) for k, p in result.placements.items()} \
        == {k: (p.host, p.hosted_ratio, p.pooled) for k, p in plain.placements.items()}
    assert result.rejections == plain.rejections
    assert result.timeline.times == plain.timeline.times
    assert result.timeline.alloc_cpu == plain.timeline.alloc_cpu
    assert result.timeline.alloc_mem == plain.timeline.alloc_mem


def test_migrating_simulation_updates_placement_records():
    # Force a consolidation pass mid-run and check every migration is
    # reflected in the final placement map.
    workload = [
        _vm(i, arrival=float(i), departure=200.0 + i, vcpus=1, mem=2.0)
        for i in range(8)
    ]
    sim = MigratingSimulation(_machines(), rebalance_interval=10.0)
    result = sim.run(workload)
    if sim.total_migrations:
        final = {m.vm_id: m.target for r in [sim.last_report] for m in r.migrations}
        for vm_id, target in final.items():
            if vm_id in result.placements:
                # The record reflects the post-migration host unless a
                # later pass moved it again (single pass here).
                assert result.placements[vm_id].host == target
    _, cpu, mem = result.timeline.as_arrays()
    assert np.all(cpu >= -1e-9) and np.all(mem >= -1e-9)
