"""Focused tests of MigratingSimulation bookkeeping."""

from repro.core import LEVEL_1_1, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.migration import MigratingSimulation


def vm(vm_id, vcpus=4, mem=4.0, arrival=0.0, departure=None):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=LEVEL_1_1,
                     arrival=arrival, departure=departure)


def machines(n, cpus=8, mem=32.0):
    return [MachineSpec(f"pm-{i}", cpus, mem) for i in range(n)]


def test_placement_records_follow_migrations():
    """After a consolidation pass, the result's placement records must
    point at the hosts the VMs actually ended on, and the whole-PM gap
    created by the migration must be usable."""
    sim = MigratingSimulation(machines(2), policy="first_fit",
                              rebalance_interval=10.0)
    trace = [
        vm("a", vcpus=4, departure=5.0),   # host 0, gone before rebalance
        vm("b", vcpus=4),                   # host 0 (now half empty)
        vm("c", vcpus=2, arrival=1.0),      # host 0 full at t=1 -> host 1
        vm("late", vcpus=8, arrival=20.0),  # needs a fully-empty PM
    ]
    result = sim.run(trace)
    # Without migration 'late' (8 vCPUs) fits nowhere (hosts hold 4 and
    # 2); the t=10 consolidation moves 'c' next to 'b' and frees host 1.
    assert result.feasible
    assert sim.total_migrations == 1
    assert result.placements["c"].host == 0  # record updated by the move
    assert result.placements["late"].host == 1


def test_no_migrations_when_already_consolidated():
    sim = MigratingSimulation(machines(2), policy="first_fit",
                              rebalance_interval=5.0)
    trace = [vm("a"), vm("late", arrival=11.0, vcpus=1)]
    sim.run(trace)
    assert sim.total_migrations == 0


def test_multiple_rebalance_intervals_fire():
    sim = MigratingSimulation(machines(3), policy="first_fit",
                              rebalance_interval=5.0)
    trace = [
        vm("a", vcpus=6, departure=30.0),
        vm("b", vcpus=6, arrival=1.0),
        vm("c", vcpus=2, arrival=2.0),
        vm("late", vcpus=1, arrival=21.0),
    ]
    result = sim.run(trace)
    assert result.feasible
    assert sim.last_report is not None
