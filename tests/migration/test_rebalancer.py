"""Tests of the live-migration rebalancer extension."""

import numpy as np
import pytest

from repro.core import LEVEL_1_1, LEVEL_2_1, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.migration import MigratingSimulation, Rebalancer
from repro.simulator import VectorCluster


def vm(vm_id, vcpus=2, mem=4.0, level=LEVEL_1_1, arrival=0.0, departure=None):
    return VMRequest(
        vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level,
        arrival=arrival, departure=departure,
    )


def machines(n, cpus=8, mem=32.0):
    return [MachineSpec(f"pm-{i}", cpus, mem) for i in range(n)]


def test_consolidation_empties_a_light_host():
    cluster = VectorCluster(machines(2), SlackVMConfig())
    cluster.deploy(vm("a", vcpus=4), host=0)
    cluster.deploy(vm("b", vcpus=2), host=1)  # light host
    report = Rebalancer().consolidate(cluster)
    assert report.hosts_emptied == 1
    assert report.num_migrations == 1
    # One host now holds everything.
    loads = [len(cluster.vms_on(h)) for h in range(2)]
    assert sorted(loads) == [0, 2]


def test_consolidation_respects_capacity():
    cluster = VectorCluster(machines(2), SlackVMConfig())
    cluster.deploy(vm("a", vcpus=6), host=0)
    cluster.deploy(vm("b", vcpus=6), host=1)
    report = Rebalancer().consolidate(cluster)
    # 6+6 > 8: nothing can move; state untouched.
    assert report.num_migrations == 0
    assert cluster.vms_on(0) == ["a"]
    assert cluster.vms_on(1) == ["b"]


def test_failed_evacuation_rolls_back_fully():
    cluster = VectorCluster(machines(2), SlackVMConfig())
    # Host 0: two VMs; only one could move to host 1 (6 free CPUs there
    # after its own 2-vCPU VM): evacuating host 0 (4+4=8 - host 1 has
    # 6 free) must fail midway and restore everything.
    cluster.deploy(vm("a1", vcpus=4), host=0)
    cluster.deploy(vm("a2", vcpus=4), host=0)
    cluster.deploy(vm("b", vcpus=2), host=1)
    before_cpu = cluster.alloc_cpu.copy()
    report = Rebalancer().consolidate(cluster)
    # Host 1 is lighter, so the rebalancer evacuates host 1 instead —
    # but if host 1 cannot move (it can: 2 vCPUs do not fit next to 8 on
    # host 0), nothing changes.
    if report.num_migrations == 0:
        assert np.array_equal(cluster.alloc_cpu, before_cpu)
    assert set(cluster.vms_on(0) + cluster.vms_on(1)) == {"a1", "a2", "b"}


def test_max_migrations_cap():
    cluster = VectorCluster(machines(4), SlackVMConfig())
    for i in range(4):
        cluster.deploy(vm(f"v{i}", vcpus=1, mem=1.0), host=i)
    report = Rebalancer(max_migrations=1).consolidate(cluster)
    assert report.num_migrations <= 1


def test_migrating_simulation_matches_semantics():
    sim = MigratingSimulation(machines(3), policy="first_fit",
                              rebalance_interval=10.0)
    trace = [
        vm("a", vcpus=6, departure=25.0),
        vm("b", vcpus=6, arrival=1.0),
        vm("c", vcpus=2, arrival=2.0),
        vm("probe", vcpus=6, arrival=30.0),
    ]
    result = sim.run(trace)
    assert result.feasible
    # After 'a' departs at t=25 the rebalance at t=30 may consolidate.
    assert set(result.placements) == {"a", "b", "c", "probe"}


def test_migrating_simulation_consolidates_fragmentation():
    """Craft fragmentation that only migration can repair: two
    half-empty hosts, then a VM that fits only on a fully-empty host."""
    sim = MigratingSimulation(machines(2), policy="first_fit",
                              rebalance_interval=5.0)
    trace = [
        vm("a", vcpus=4, departure=20.0),
        vm("filler", vcpus=4, arrival=0.5, departure=6.0),
        vm("b", vcpus=4, arrival=1.0),  # lands on host 1? no — host 0 slack
        vm("big", vcpus=8, arrival=10.0),
    ]
    result = sim.run(trace)
    assert result.feasible
    assert sim.total_migrations >= 0  # bookkeeping exposed


def test_unknown_policy_rejected():
    from repro.core import CapacityError

    with pytest.raises(CapacityError):
        Rebalancer(policy="nope")
