"""Backpressure and overload regression suite.

Drives the service at ~2x its service rate into a small bounded queue
and pins the shedding contract: rejections land in the ledger *and*
the ``serving.rejected`` counter, observed queue depth never exceeds
the bound, and the timeout-rate gauge agrees with the ledger.
"""

import pytest

from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry
from repro.serving import PlacementService, ServiceSpec, run_virtual


QUEUE_BOUND = 8


def overload_spec(**kw) -> ServiceSpec:
    # Arrival rate 100/s vs service rate 1/0.02 = 50/s: sustained 2x
    # overload, so the queue saturates and stays saturated.
    defaults = dict(
        rate=100.0,
        duration=5.0,
        seed=3,
        num_hosts=4,
        queue_bound=QUEUE_BOUND,
        service_mean=0.02,
        service_kind="constant",
        timeout_s=0.5,
        max_pending=4,
    )
    defaults.update(kw)
    return ServiceSpec(**defaults)


@pytest.fixture(scope="module")
def overloaded():
    metrics = MetricsRegistry()
    service = PlacementService(overload_spec(), metrics=metrics)
    run_virtual(service.run(), service.clock)
    return service, metrics, service.report()


def test_overload_sheds_requests(overloaded):
    service, _, report = overloaded
    assert report.counts["rejected"] > 0
    assert report.rates["reject"] > 0.3  # 2x overload sheds a lot


def test_rejections_counted_in_metric_and_ledger(overloaded):
    service, metrics, report = overloaded
    rejected_metric = metrics.to_dict()[metric_names.SERVING_REJECTED]["value"]
    assert rejected_metric == report.counts["rejected"]
    ledger_rejects = sum(
        1 for line in service.decision_log if line.split()[1] == "reject"
    )
    assert ledger_rejects == report.counts["rejected"]


def test_queue_depth_clamped_at_bound(overloaded):
    _, metrics, report = overloaded
    assert report.queue["depth_max"] <= QUEUE_BOUND
    depth = metrics.to_dict()[metric_names.SERVING_QUEUE_DEPTH]
    assert depth["max"] <= QUEUE_BOUND
    # The queue actually filled — otherwise this test proves nothing.
    assert report.queue["depth_max"] == QUEUE_BOUND


def test_timeout_rate_matches_ledger(overloaded):
    service, metrics, report = overloaded
    ledger_timeouts = sum(
        1 for line in service.decision_log if line.split()[1] == "timeout"
    )
    assert ledger_timeouts == report.counts["timeouts"]
    gauge = metrics.to_dict()[metric_names.SERVING_TIMEOUT_RATE]["value"]
    assert gauge == pytest.approx(
        report.counts["timeouts"] / report.counts["arrivals"]
    )


def test_overload_replays_byte_identically():
    # Backpressure must not introduce nondeterminism: the saturated
    # path (rejects + timeouts + pending expiries) replays exactly.
    first = PlacementService(overload_spec())
    run_virtual(first.run(), first.clock)
    second = PlacementService(overload_spec())
    run_virtual(second.run(), second.clock)
    assert first.decision_log == second.decision_log
    assert first.audit_fingerprint() == second.audit_fingerprint()


def test_wider_queue_sheds_less():
    narrow = PlacementService(overload_spec())
    run_virtual(narrow.run(), narrow.clock)
    wide = PlacementService(overload_spec(queue_bound=64))
    run_virtual(wide.run(), wide.clock)
    assert wide.counts["rejected"] < narrow.counts["rejected"]
