"""PlacementService behaviour: spec validation, SLO report, sharding."""

import pytest

from repro.core.errors import ConfigError
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry
from repro.serving import (
    PlacementService,
    ServiceSpec,
    VirtualClock,
    run_virtual,
    serve,
)
from repro.serving.service import auto_size, build_fleet


def small_spec(**kw) -> ServiceSpec:
    defaults = dict(rate=20.0, duration=3.0, seed=11, queue_bound=16)
    defaults.update(kw)
    return ServiceSpec(**defaults)


def test_spec_round_trip_and_fingerprint():
    spec = small_spec(shards=2, mix=(50, 30, 20), diurnal_amplitude=0.25)
    clone = ServiceSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.fingerprint() == spec.fingerprint()
    assert clone.fingerprint() != small_spec().fingerprint()


@pytest.mark.parametrize("kw", [
    {"rate": 0.0},
    {"rate": -5.0},
    {"duration": 0.0},
    {"seed": 0, "mix": "Z"},
    {"provider": "nimbus"},
    {"policy": "round_robin"},
    {"shards": 0},
    {"num_hosts": 2, "shards": 4},
    {"queue_bound": 0},
    {"timeout_s": 0.0},
    {"diurnal_amplitude": 1.0},
    {"interarrival_kind": "weibull"},
    {"mean_lifetime": float("inf")},
    {"max_pending": -1},
])
def test_invalid_specs_raise(kw):
    with pytest.raises(ConfigError):
        small_spec(**kw)


def test_from_dict_rejects_unknown_fields_and_versions():
    spec = small_spec()
    payload = spec.to_dict()
    payload["burst"] = True
    with pytest.raises(ConfigError, match="unknown ServiceSpec fields"):
        ServiceSpec.from_dict(payload)
    payload = spec.to_dict()
    payload["version"] = 99
    with pytest.raises(ConfigError, match="version"):
        ServiceSpec.from_dict(payload)


def test_auto_size_scales_with_load():
    light = small_spec(rate=5.0)
    heavy = small_spec(rate=50.0)
    assert auto_size(heavy) > auto_size(light)
    assert len(build_fleet(light)) == auto_size(light)


def test_explicit_fleet_size_respected():
    spec = small_spec(num_hosts=7)
    assert len(build_fleet(spec)) == 7


def test_report_accounts_for_every_arrival():
    report = serve(small_spec())
    c = report.counts
    assert c["arrivals"] > 0
    # Every arrival is either placed, pending, rejected, or queue-timed-out.
    # (pending-expiry timeouts double-count a "pend", so use >=.)
    assert c["placed"] + c["pending"] + c["rejected"] + c["timeouts"] >= \
        c["arrivals"]
    assert report.latency["placement_count"] == c["placed"] + c["pending"]
    assert report.cluster["hosts"] >= 1
    assert 0.0 <= report.rates["timeout"] <= 1.0
    assert 0.0 <= report.rates["reject"] <= 1.0
    assert len(report.fingerprint) == 64


def test_departures_free_capacity():
    # Lifetimes far shorter than the window: most VMs depart in-run.
    report = serve(small_spec(duration=10.0, mean_lifetime=0.5))
    assert report.counts["departures"] > 0
    assert report.cluster["active_vms"] < report.counts["placed"]


def test_sharded_run_routes_to_every_shard():
    spec = small_spec(rate=40.0, duration=5.0, shards=3)
    service = PlacementService(spec)
    run_virtual(service.run(), service.clock)
    per_shard = [c.state().active_vms + len(
        [t for t in c.list_vms()]) for c in service.controllers]
    assert len(service.controllers) == 3
    assert sum(1 for n in per_shard if n > 0) == 3


def test_shard_and_unsharded_totals_agree():
    placed_1 = serve(small_spec(seed=5)).counts["placed"]
    placed_4 = serve(small_spec(seed=5, shards=4)).counts["placed"]
    # Same stream, ample capacity: sharding must not lose requests.
    assert placed_1 == placed_4


def test_metrics_emitted_under_registry():
    metrics = MetricsRegistry()
    report = serve(small_spec(), metrics=metrics)
    snap = metrics.to_dict()
    assert snap[metric_names.SERVING_ARRIVALS]["value"] == \
        report.counts["arrivals"]
    assert snap[metric_names.SERVING_PLACED]["value"] == \
        report.counts["placed"]
    assert snap[metric_names.SERVING_QUEUE_DEPTH]["kind"] == "histogram"
    assert snap[metric_names.SERVING_LATENCY_PLACEMENT]["kind"] == "histogram"
    assert snap[metric_names.SERVING_TIMEOUT_RATE]["value"] == \
        report.rates["timeout"]
    assert snap[metric_names.SERVING_REJECT_RATE]["value"] == \
        report.rates["reject"]


def test_null_metrics_does_not_change_report():
    from repro.obs.metrics import NULL_METRICS

    with_metrics = serve(small_spec(), metrics=MetricsRegistry())
    without = serve(small_spec(), metrics=NULL_METRICS)
    assert with_metrics.counts == without.counts
    assert with_metrics.fingerprint == without.fingerprint


def test_injected_clock_is_used():
    clock = VirtualClock(start=100.0)
    service = PlacementService(small_spec(duration=2.0), clock=clock)
    run_virtual(service.run(), clock)
    assert clock.now() >= 100.0
    assert service.decision_log  # the window opens at the injected start
    assert all(float(line.split()[0]) >= 100.0
               for line in service.decision_log)


def test_report_summary_mentions_slos():
    summary = serve(small_spec()).summary()
    assert "p99" in summary
    assert "timeout rate" in summary
    assert "rejection rate" in summary
