"""VirtualClock and drained-loop runner semantics."""

import asyncio

import pytest

from repro.core.errors import ServingError
from repro.serving.clock import VirtualClock, run_virtual
from tests.serving.harness import run_deterministic


def test_sleep_advances_virtual_time_only():
    async def body(clock):
        await clock.sleep(5.0)
        first = clock.now()
        await clock.sleep(2.5)
        return first, clock.now()

    clock = VirtualClock()
    first, second = run_virtual(body(clock), clock)
    assert first == 5.0
    assert second == 7.5


def test_wakeup_order_earliest_deadline_then_fifo():
    order = []

    async def sleeper(clock, name, delay):
        await clock.sleep(delay)
        order.append(name)

    async def body(clock):
        tasks = [
            asyncio.ensure_future(sleeper(clock, "late", 3.0)),
            asyncio.ensure_future(sleeper(clock, "early", 1.0)),
            asyncio.ensure_future(sleeper(clock, "tie-a", 2.0)),
            asyncio.ensure_future(sleeper(clock, "tie-b", 2.0)),
        ]
        await asyncio.gather(*tasks)

    clock = VirtualClock()
    run_virtual(body(clock), clock)
    assert order == ["early", "tie-a", "tie-b", "late"]
    assert clock.now() == 3.0


def test_zero_delay_sleep_wakes_without_advancing():
    async def body(clock):
        await clock.sleep(0.0)
        return clock.now()

    clock = VirtualClock(start=10.0)
    assert run_virtual(body(clock), clock) == 10.0


def test_negative_delay_raises():
    async def body(clock):
        await clock.sleep(-1.0)

    clock = VirtualClock()
    with pytest.raises(ServingError, match="negative"):
        run_virtual(body(clock), clock)


def test_deadlock_detected_not_hung():
    async def body():
        await asyncio.get_running_loop().create_future()  # never resolved

    with pytest.raises(ServingError, match="deadlock"):
        run_virtual(body(), VirtualClock())


def test_cancelled_sleeper_is_skipped():
    async def body(clock):
        task = asyncio.ensure_future(clock.sleep(1.0))
        await asyncio.sleep(0)
        task.cancel()
        await clock.sleep(2.0)
        return clock.now()

    clock = VirtualClock()
    # Time jumps straight to 2.0: the cancelled 1.0 sleeper never wakes.
    assert run_virtual(body(clock), clock) == 2.0


def test_pending_counts_live_sleepers_only():
    async def body(clock):
        task = asyncio.ensure_future(clock.sleep(5.0))
        await asyncio.sleep(0)
        before = clock.pending
        task.cancel()
        await asyncio.sleep(0)
        after = clock.pending
        return before, after

    clock = VirtualClock()
    before, after = run_virtual(body(clock), clock)
    assert before == 1
    assert after == 0


def test_harness_returns_result_and_end_time():
    async def body():
        return "done"

    result, end = run_deterministic(body())
    assert result == "done"
    assert end == 0.0


def test_exception_propagates_and_loop_tears_down():
    async def body(clock):
        await clock.sleep(1.0)
        raise ValueError("boom")

    clock = VirtualClock()
    with pytest.raises(ValueError, match="boom"):
        run_virtual(body(clock), clock)
