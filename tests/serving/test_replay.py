"""Replay determinism: the acceptance criterion of the serving layer.

Two full service runs at the same seed must be *byte-identical* — the
decision log, every shard's controller audit log, and the combined
sha256 fingerprint.  Wall-clock placement latency is the only
permitted nondeterminism, and it must stay quarantined inside the
latency histograms.
"""

import pytest

from repro.serving import PlacementService, ServiceSpec, run_virtual, serve


def run_service(spec: ServiceSpec) -> PlacementService:
    service = PlacementService(spec)
    run_virtual(service.run(), service.clock)
    return service


@pytest.mark.parametrize("kw", [
    {},                                           # default healthy run
    {"shards": 3},                                # sharded
    {"num_hosts": 2, "queue_bound": 6,
     "service_mean": 0.05, "timeout_s": 0.5,
     "max_pending": 3},                           # overloaded: all paths
    {"diurnal_amplitude": 0.4},                   # modulated arrivals
])
def test_same_seed_byte_identical_runs(kw):
    spec = ServiceSpec(rate=30.0, duration=4.0, seed=17, **kw)
    first = run_service(spec)
    second = run_service(spec)
    # Byte-for-byte: same strings, same order, across two event loops.
    assert first.decision_log == second.decision_log
    for a, b in zip(first.controllers, second.controllers):
        assert a.audit_log == b.audit_log
    assert first.audit_fingerprint() == second.audit_fingerprint()


def test_different_seeds_diverge():
    base = dict(rate=30.0, duration=4.0)
    first = serve(ServiceSpec(seed=1, **base))
    second = serve(ServiceSpec(seed=2, **base))
    assert first.fingerprint != second.fingerprint


def test_decision_log_is_wall_clock_free():
    service = run_service(ServiceSpec(rate=30.0, duration=4.0, seed=17))
    # Every line starts with a %.6f virtual timestamp; any wall-clock
    # contamination would break cross-run identity, so pin the format.
    for line in service.decision_log:
        stamp, event, req_id = line.split()[:3]
        assert stamp == f"{float(stamp):.6f}"
        assert event in {"place", "pend", "reject", "timeout", "depart"}
        assert req_id.startswith("req-")


def test_report_fingerprint_matches_service():
    spec = ServiceSpec(rate=30.0, duration=4.0, seed=17)
    service = run_service(spec)
    assert service.report().fingerprint == service.audit_fingerprint()
