"""Deterministic async test harness for the serving suite.

Every serving test runs its coroutines with :func:`run_deterministic`:
a fresh :class:`~repro.serving.clock.VirtualClock` plus the drained
-loop driver from :func:`~repro.serving.clock.run_virtual`.  No test
in this package may call ``asyncio.sleep`` with a non-zero delay or
read wall time — virtual sleeps only, so the whole suite finishes in
milliseconds and every interleaving replays bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Coroutine, Optional, Tuple, TypeVar

from repro.serving.clock import VirtualClock, run_virtual

T = TypeVar("T")

__all__ = ["run_deterministic", "run_with_clock"]


def run_deterministic(
    coro: Coroutine[Any, Any, T], start: float = 0.0
) -> Tuple[T, float]:
    """Run ``coro`` on a fresh virtual clock; return (result, end time)."""
    clock = VirtualClock(start)
    result = run_virtual(coro, clock)
    return result, clock.now()


def run_with_clock(
    coro: Coroutine[Any, Any, T], clock: Optional[VirtualClock] = None
) -> T:
    """Run ``coro`` on ``clock`` (or a fresh one) and return its result."""
    return run_virtual(coro, clock if clock is not None else VirtualClock())
