"""Hypothesis property suite for the serving distribution configs.

Pins the RVConfig contract: samples are non-negative and finite for
every kind, ``to_dict``/``from_dict`` round-trips exactly, the same
seed yields byte-identical arrival streams, and invalid payloads raise
ConfigError instead of degrading silently.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.serving.config import (
    DAY,
    DIST_KINDS,
    DiurnalConfig,
    RVConfig,
    TrafficConfig,
)
from repro.serving.generator import arrival_times

means = st.floats(min_value=1e-3, max_value=1e4,
                  allow_nan=False, allow_infinity=False)
sigmas = st.floats(min_value=1e-2, max_value=4.0,
                   allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def rv_configs() -> st.SearchStrategy:
    return st.one_of(
        st.builds(RVConfig, st.sampled_from(
            [k for k in DIST_KINDS if k != "lognormal"]), means),
        st.builds(RVConfig, st.just("lognormal"), means,
                  st.one_of(st.none(), sigmas)),
    )


@settings(max_examples=100, deadline=None)
@given(rv_configs(), seeds)
def test_samples_nonnegative_and_finite(rv, seed):
    rng = np.random.default_rng(seed)
    for _ in range(32):
        x = rv.sample(rng)
        assert isinstance(x, float)
        assert math.isfinite(x)
        assert x >= 0.0


@settings(max_examples=100, deadline=None)
@given(rv_configs())
def test_rv_round_trip_exact(rv):
    clone = RVConfig.from_dict(rv.to_dict())
    assert clone == rv
    assert clone.to_dict() == rv.to_dict()


@settings(max_examples=50, deadline=None)
@given(means,
       st.one_of(st.none(), st.floats(min_value=1e-2, max_value=1.25,
                                      allow_nan=False, allow_infinity=False)))
def test_lognormal_mean_is_arithmetic_mean(mean, sigma):
    # sigma capped at 1.25: beyond that the tail is too heavy for a
    # sample mean to converge in any reasonable draw count.
    rv = RVConfig("lognormal", mean, sigma)
    rng = np.random.default_rng(0)
    draws = [rv.sample(rng) for _ in range(4000)]
    assert np.mean(draws) == pytest.approx(mean, rel=0.5)


@settings(max_examples=60, deadline=None)
@given(means, means, seeds,
       st.floats(min_value=0.0, max_value=0.9,
                 allow_nan=False, allow_infinity=False))
def test_same_seed_same_arrival_stream(ia_mean, lt_mean, seed, amplitude):
    traffic = TrafficConfig(
        interarrival=RVConfig("exponential", ia_mean),
        lifetime=RVConfig("exponential", lt_mean),
        diurnal=DiurnalConfig(amplitude) if amplitude > 0 else None,
    )
    horizon = ia_mean * 20
    first = arrival_times(traffic, horizon, seed)
    second = arrival_times(traffic, horizon, seed)
    # Byte-identical, not approximately equal: same floats, same order.
    assert first == second
    assert all(a <= b for a, b in zip(first, first[1:]))


@settings(max_examples=60, deadline=None)
@given(rv_configs(), rv_configs(),
       st.one_of(st.none(), st.builds(DiurnalConfig,
                                      st.floats(min_value=0.0, max_value=0.99),
                                      st.floats(min_value=1.0, max_value=1e6))))
def test_traffic_round_trip_exact(interarrival, lifetime, diurnal):
    traffic = TrafficConfig(interarrival, lifetime, diurnal)
    clone = TrafficConfig.from_dict(traffic.to_dict())
    assert clone == traffic
    assert clone.to_dict() == traffic.to_dict()


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=0.0, max_value=0.99), means)
def test_diurnal_factor_stays_positive(amplitude, period):
    diurnal = DiurnalConfig(amplitude, period)
    for t in np.linspace(0.0, 2.0 * period, 101):
        assert diurnal.factor(float(t)) > 0.0


def test_diurnal_defaults_to_one_day_period():
    assert DiurnalConfig(0.5).period == DAY


@pytest.mark.parametrize("payload", [
    {"kind": "weibull", "mean": 1.0},           # unknown kind
    {"kind": "Poisson", "mean": 1.0},           # case-sensitive
    {"kind": "exponential", "mean": 0.0},       # mean not positive
    {"kind": "exponential", "mean": -3.0},
    {"kind": "exponential", "mean": math.nan},
    {"kind": "exponential", "mean": math.inf},
    {"kind": "exponential", "mean": True},      # bool is not a number
    {"kind": "exponential", "mean": "1.0"},     # string is not a number
    {"kind": "exponential", "mean": 1.0, "sigma": 0.5},  # sigma w/o lognormal
    {"kind": "lognormal", "mean": 1.0, "sigma": -1.0},
    {"kind": "lognormal", "mean": 1.0, "sigma": 0.0},
    {"kind": "lognormal"},                      # mean missing
    {"mean": 1.0},                              # kind missing
    {"kind": 3, "mean": 1.0},                   # kind not a string
    {"kind": "constant", "mean": 1.0, "mu": 2}, # unknown field
])
def test_invalid_rv_payloads_raise(payload):
    with pytest.raises(ConfigError):
        RVConfig.from_dict(payload)


@pytest.mark.parametrize("payload", [
    {"amplitude": 1.0},
    {"amplitude": -0.1},
    {"amplitude": math.nan},
    {"amplitude": 0.5, "period": 0.0},
    {"amplitude": 0.5, "period": -1.0},
    {"amplitude": 0.5, "phase": 0.0},           # unknown field
    {},                                          # amplitude missing
])
def test_invalid_diurnal_payloads_raise(payload):
    with pytest.raises(ConfigError):
        DiurnalConfig.from_dict(payload)


@pytest.mark.parametrize("payload", [
    {"interarrival": {"kind": "exponential", "mean": 1.0}},  # no lifetime
    {"lifetime": {"kind": "exponential", "mean": 1.0}},      # no interarrival
    {"interarrival": {"kind": "exponential", "mean": 1.0},
     "lifetime": {"kind": "exponential", "mean": 1.0},
     "burst": {}},                                           # unknown field
    "not-a-mapping",
])
def test_invalid_traffic_payloads_raise(payload):
    with pytest.raises(ConfigError):
        TrafficConfig.from_dict(payload)


def test_open_loop_builder_inverts_rate():
    traffic = TrafficConfig.open_loop(rate=25.0, mean_lifetime=60.0,
                                      diurnal_amplitude=0.3)
    assert traffic.interarrival == RVConfig("exponential", 1.0 / 25.0)
    assert traffic.lifetime == RVConfig("exponential", 60.0)
    assert traffic.diurnal == DiurnalConfig(0.3)
    with pytest.raises(ConfigError):
        TrafficConfig.open_loop(rate=0.0, mean_lifetime=60.0)
