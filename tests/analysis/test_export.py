"""CSV exporter tests."""

import csv

import pytest

from repro.analysis import evaluate_distribution
from repro.analysis.export import export_fig2_csv, export_fig3_csv, export_fig4_csv
from repro.perfmodel import TestbedParams, run_testbed
from repro.workload import OVHCLOUD


@pytest.fixture(scope="module")
def outcome():
    return evaluate_distribution(OVHCLOUD, "F", target_population=80, seed=0)


def read_csv(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


def test_fig3_csv(tmp_path, outcome):
    path = tmp_path / "fig3.csv"
    export_fig3_csv({"F": outcome}, path)
    rows = read_csv(path)
    assert rows[0][0] == "distribution"
    assert rows[1][0] == "F"
    assert float(rows[1][4]) == pytest.approx(outcome.baseline_unallocated.cpu)


def test_fig4_csv(tmp_path, outcome):
    path = tmp_path / "fig4.csv"
    export_fig4_csv({"F": outcome.savings_percent, "A": 0.0}, path)
    rows = read_csv(path)
    assert len(rows) == 3
    f_row = next(r for r in rows if r[0] == "F")
    assert f_row[1:4] == ["50", "0", "50"]


def test_fig2_csv(tmp_path):
    result = run_testbed(TestbedParams(duration=120.0))
    path = tmp_path / "fig2.csv"
    export_fig2_csv(result, path)
    rows = read_csv(path)
    assert rows[0] == ["scenario", "level", "p90_seconds"]
    scenarios = {r[0] for r in rows[1:]}
    assert scenarios == {"baseline", "slackvm"}
    assert all(float(r[2]) > 0 for r in rows[1:])
