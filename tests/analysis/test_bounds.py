"""Tests of the offline packing bounds."""

import pytest

from repro.analysis.bounds import bfd_snapshot_bound, fractional_bound, peak_alive_set
from repro.core import LEVEL_1_1, LEVEL_3_1, SimulationError, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import SIM_WORKER, MachineSpec
from repro.simulator import minimal_cluster
from repro.workload import OVHCLOUD, WorkloadParams, generate_workload

MACHINE = MachineSpec("pm", 8, 32.0)


def vm(vm_id, vcpus=2, mem=4.0, level=LEVEL_1_1, arrival=0.0, departure=None):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level,
                     arrival=arrival, departure=departure)


class TestPeakAliveSet:
    def test_peak_set_is_the_overlap(self):
        trace = [
            vm("a", departure=10.0),
            vm("b", arrival=5.0, departure=15.0),
            vm("c", arrival=12.0),
        ]
        ids = {v.vm_id for v in peak_alive_set(trace)}
        assert ids in ({"a", "b"}, {"b", "c"})  # both overlaps have size 2

    def test_weighted_peak_prefers_heavier_overlap(self):
        trace = [
            vm("small1", vcpus=1, mem=1.0, departure=10.0),
            vm("small2", vcpus=1, mem=1.0, arrival=1.0, departure=10.0),
            vm("big", vcpus=8, mem=16.0, arrival=20.0),
        ]
        ids = {v.vm_id for v in peak_alive_set(trace)}
        assert ids == {"big"}

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            peak_alive_set([])


class TestBfdBound:
    def test_exact_fit(self):
        trace = [vm(f"v{i}", vcpus=4, mem=16.0) for i in range(4)]
        assert bfd_snapshot_bound(trace, MACHINE) == 2

    def test_oversubscription_respected(self):
        trace = [vm(f"v{i}", vcpus=8, mem=4.0, level=LEVEL_3_1) for i in range(3)]
        # 24 vCPUs at 3:1 -> 8 CPUs -> one PM.
        assert bfd_snapshot_bound(trace, MACHINE) == 1

    def test_impossible_vm_raises(self):
        with pytest.raises(SimulationError):
            bfd_snapshot_bound([vm("giant", vcpus=99)], MACHINE)

    def test_bfd_at_most_online_minimal_cluster(self):
        """The offline snapshot bound must not exceed what the online
        scheduler needed (it solves an easier problem)."""
        workload = generate_workload(
            WorkloadParams(catalog=OVHCLOUD, level_mix="F",
                           target_population=150, seed=9)
        )
        online = minimal_cluster(workload, SIM_WORKER, policy="progress").pms
        offline = bfd_snapshot_bound(workload, SIM_WORKER)
        frac = fractional_bound(workload, SIM_WORKER)
        assert frac <= offline + 1  # bfd is heuristic: allow 1 PM slack
        assert offline <= online + 1

    def test_fractional_bound_reexport(self):
        trace = [vm(f"v{i}", vcpus=8, mem=4.0) for i in range(3)]
        assert fractional_bound(trace, MACHINE) == 3
