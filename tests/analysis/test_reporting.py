"""Tests of the ASCII renderers."""

from repro.analysis import (
    evaluate_distribution,
    format_table,
    render_fig3,
    render_fig4,
    render_table1,
    render_table2,
    render_table4,
)
from repro.workload import OVHCLOUD


def test_format_table_alignment():
    out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert set(lines[1]) <= {"-", " "}


def test_render_table1():
    out = render_table1({"azure": (2.25, 4.8)})
    assert "azure" in out and "2.25" in out and "4.80" in out


def test_render_table2():
    out = render_table2({"ovh": {1.0: 3.1, 2.0: 3.9, 3.0: 5.8}})
    assert "3:1" in out and "5.8" in out


def test_render_table4():
    out = render_table4({"1:1": (1.16, 1.27, 1.09)})
    assert "1.16" in out and "(x1.09)" in out


def test_render_fig3_and_fig4():
    outcome = evaluate_distribution(OVHCLOUD, "F", target_population=80, seed=0)
    fig3 = render_fig3({"F": outcome})
    assert "F" in fig3 and "50/0/50" in fig3
    fig4 = render_fig4({"F": outcome.savings_percent, "A": 0.0})
    assert "1:1=50%" in fig4
    assert "2:1=  0%" in fig4
