"""ASCII chart rendering tests."""

import pytest

from repro.analysis.ascii_charts import boxplot, grouped_hbar, hbar
from repro.core import ConfigError


class TestHbar:
    def test_longest_bar_fills_width(self):
        out = hbar([("a", 10.0), ("b", 5.0)], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert 4 <= lines[1].count("█") <= 5

    def test_values_printed(self):
        out = hbar([("cpu", 12.3)], unit="%")
        assert "12.3%" in out

    def test_zero_values_render(self):
        out = hbar([("a", 0.0)], width=10)
        assert "0.0" in out

    def test_validation(self):
        with pytest.raises(ConfigError):
            hbar([])
        with pytest.raises(ConfigError):
            hbar([("a", 1.0)], width=2)


class TestGroupedHbar:
    def test_structure(self):
        out = grouped_hbar(
            ["A", "B"],
            {"baseline": [10.0, 5.0], "slackvm": [4.0, 3.0]},
            width=20,
        )
        lines = out.splitlines()
        assert lines[0] == "A"
        assert "baseline" in lines[1] and "slackvm" in lines[2]
        assert lines[3] == "B"

    def test_shared_scale_across_series(self):
        out = grouped_hbar(["A"], {"x": [10.0], "y": [5.0]}, width=10)
        lines = out.splitlines()
        assert lines[1].count("█") == 10  # the max fills the width
        assert lines[2].count("█") == 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            grouped_hbar(["A", "B"], {"x": [1.0]})


class TestBoxplot:
    def test_median_marker_and_whiskers(self):
        out = boxplot({"lvl": (1.0, 2.0, 3.0, 4.0, 5.0)}, width=21)
        line = out.splitlines()[0]
        assert line.count("#") == 1
        assert line.count("|") == 2
        assert "=" in line

    def test_log_scale_orders_like_figure2(self):
        rows = {
            "1:1": (1.0, 1.1, 1.2, 1.4, 1.6),
            "3:1": (2.5, 2.6, 2.8, 3.2, 12.0),
        }
        out = boxplot(rows, width=40, log=True)
        assert "log scale" in out
        # The 3:1 median marker sits to the right of the 1:1 one.
        l1, l3 = out.splitlines()[0], out.splitlines()[1]
        assert l3.index("#") > l1.index("#")

    def test_log_requires_positive(self):
        with pytest.raises(ConfigError):
            boxplot({"x": (0.0, 1.0, 2.0, 3.0, 4.0)}, log=True)

    def test_unordered_summary_rejected(self):
        with pytest.raises(ConfigError):
            boxplot({"x": (5.0, 1.0, 2.0, 3.0, 4.0)})

    def test_degenerate_distribution(self):
        out = boxplot({"flat": (2.0, 2.0, 2.0, 2.0, 2.0)})
        assert "#" in out
