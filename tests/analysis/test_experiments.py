"""Tests of the Fig. 3 / Fig. 4 experiment drivers (small populations)."""

import pytest

from repro.analysis import evaluate_distribution, fig3_series, fig4_grid
from repro.workload import OVHCLOUD, WorkloadParams, generate_workload


def test_distribution_outcome_fields():
    out = evaluate_distribution(OVHCLOUD, "F", target_population=120, seed=42)
    assert out.provider == "ovhcloud"
    assert out.mix == (50, 0, 50)
    assert set(out.baseline_pms_per_level) == {1.0, 3.0}
    assert out.baseline_pms == sum(out.baseline_pms_per_level.values())
    assert out.slackvm_pms >= 1


def test_complementary_mix_saves_pms():
    """The headline effect: mixing CPU-bound 1:1 with memory-bound 3:1
    needs fewer shared PMs than dedicated clusters."""
    out = evaluate_distribution(OVHCLOUD, "F", target_population=300, seed=42)
    assert out.savings_percent > 0
    assert out.slackvm_pms < out.baseline_pms


def test_single_level_mix_has_no_structural_gain():
    out = evaluate_distribution(OVHCLOUD, "A", target_population=150, seed=1)
    # One level: the shared cluster IS a dedicated cluster (modulo
    # scheduler differences) — savings must be (near) zero.
    assert abs(out.savings_percent) <= 10.0
    assert set(out.baseline_pms_per_level) == {1.0}


def test_explicit_workload_is_used():
    trace = generate_workload(
        WorkloadParams(catalog=OVHCLOUD, level_mix="F", target_population=100, seed=7)
    )
    out = evaluate_distribution(OVHCLOUD, "F", workload=trace)
    out2 = evaluate_distribution(OVHCLOUD, "F", workload=trace)
    assert out.slackvm_pms == out2.slackvm_pms  # fully deterministic


def test_unallocated_shares_are_shares():
    out = evaluate_distribution(OVHCLOUD, "E", target_population=120, seed=3)
    for shares in (out.baseline_unallocated, out.slackvm_unallocated):
        assert 0.0 <= shares.cpu <= 1.0
        assert 0.0 <= shares.mem <= 1.0


def test_fig3_series_subset():
    outcomes = fig3_series(
        OVHCLOUD, target_population=100, seed=5,
        mixes={"A": (100, 0, 0), "F": (50, 0, 50)},
    )
    assert set(outcomes) == {"A", "F"}
    # A is CPU-bound => baseline strands much memory, little CPU.
    a = outcomes["A"]
    assert a.baseline_unallocated.mem > a.baseline_unallocated.cpu


def test_fig4_grid_seed_averaging():
    grid = fig4_grid(
        OVHCLOUD, target_population=100, seeds=(1, 2),
        mixes={"F": (50, 0, 50)},
    )
    assert set(grid) == {"F"}
    assert isinstance(grid["F"], float)
