"""Tests of the platform-utilization analysis."""

import pytest

from repro.analysis.utilization import UtilizationReport, cluster_utilization
from repro.core import (
    LEVEL_1_1,
    LEVEL_3_1,
    OversubscriptionLevel,
    SimulationError,
    SlackVMConfig,
    VMRequest,
    VMSpec,
)
from repro.hardware import MachineSpec
from repro.simulator import VectorSimulation


def vm(vm_id, vcpus=4, mem=4.0, level=LEVEL_1_1, kind="stress", param=0.5,
       arrival=0.0, departure=None):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level,
                     usage_kind=kind, usage_param=param,
                     arrival=arrival, departure=departure)


def run(trace, cpus=8, levels=None):
    cfg = SlackVMConfig() if levels is None else SlackVMConfig(levels=levels)
    sim = VectorSimulation([MachineSpec("pm", cpus, 64.0)], config=cfg,
                           policy="first_fit")
    return sim.run(trace)


def test_stress_vm_usage_matches_param():
    trace = [vm("a", vcpus=4, param=0.5, departure=100.0),
             vm("end", vcpus=1, arrival=100.0, param=0.0, kind="idle")]
    result = run(trace)
    report = cluster_utilization(trace, result, samples=101)
    # 4 vCPUs at 50% for the whole window on an 8-CPU PM ~ 25% used.
    assert report.used_cpu_share == pytest.approx(0.25, abs=0.03)
    assert report.allocated_cpu_share == pytest.approx(0.5, abs=0.05)
    assert report.overcommit_efficiency == pytest.approx(0.5, abs=0.1)


def test_oversubscription_raises_exposed_share():
    trace = [vm("a", vcpus=8, level=LEVEL_3_1, param=0.2, departure=100.0),
             vm("b", vcpus=8, level=LEVEL_3_1, param=0.2, departure=100.0),
             vm("end", vcpus=1, arrival=100.0, kind="idle", param=0.0)]
    result = run(trace)
    report = cluster_utilization(trace, result, samples=50)
    assert report.exposed_vcpu_share > 1.0  # more vCPUs than CPUs
    assert report.allocated_cpu_share < 1.0


def test_oversubscription_improves_efficiency():
    """The intro's causal chain: for the same lightly-used VMs, an
    oversubscribed reservation wastes less of what it allocates."""
    def trace(level):
        return [vm(f"v{i}", vcpus=2, level=level, param=0.25, departure=100.0)
                for i in range(3)] + [vm("end", vcpus=1, arrival=100.0,
                                         kind="idle", param=0.0)]

    premium = trace(LEVEL_1_1)
    r1 = cluster_utilization(premium, run(premium), samples=50)
    oversub = trace(LEVEL_3_1)
    r3 = cluster_utilization(oversub, run(oversub), samples=50)
    assert r3.overcommit_efficiency > r1.overcommit_efficiency


def test_unplaced_vms_are_ignored():
    giant = vm("giant", vcpus=64)
    small = vm("small", vcpus=2, departure=50.0)
    trace = [giant, small, vm("end", vcpus=1, arrival=100.0, kind="idle", param=0.0)]
    result = run(trace)
    assert "giant" in result.rejections
    report = cluster_utilization(trace, result, samples=20)
    assert report.exposed_vcpu_share < 1.0


def test_sample_validation():
    trace = [vm("a", departure=10.0)]
    result = run(trace)
    with pytest.raises(SimulationError):
        cluster_utilization(trace, result, samples=1)


def test_report_zero_allocation():
    report = UtilizationReport(0.0, 0.0, 0.0)
    assert report.overcommit_efficiency == 0.0
