"""Tests of the §III ratio analysis (Tables I & II, limiting factors)."""

import pytest

from repro.analysis import LimitingFactor, classify_levels, limiting_factor, table1_row, table2_row
from repro.workload import AZURE, OVHCLOUD


def test_table1_rows():
    az = table1_row(AZURE)
    assert az.mean_vcpus == pytest.approx(2.25, abs=0.005)
    assert az.mean_mem_gb == pytest.approx(4.8, abs=0.01)
    ovh = table1_row(OVHCLOUD)
    assert ovh.mean_vcpus == pytest.approx(3.24, abs=0.005)
    assert ovh.mean_mem_gb == pytest.approx(10.05, abs=0.01)


def test_table2_rows():
    az = table2_row(AZURE)
    assert az.ratios[1.0] == pytest.approx(2.1, abs=0.05)
    assert az.ratios[2.0] == pytest.approx(3.0, abs=0.05)
    assert az.ratios[3.0] == pytest.approx(4.5, abs=0.05)
    ovh = table2_row(OVHCLOUD)
    assert ovh.ratios[1.0] == pytest.approx(3.1, abs=0.05)
    assert ovh.ratios[2.0] == pytest.approx(3.9, abs=0.05)
    assert ovh.ratios[3.0] == pytest.approx(5.8, abs=0.05)


def test_limiting_factor_classification():
    assert limiting_factor(2.0, 4.0) == LimitingFactor.CPU
    assert limiting_factor(6.0, 4.0) == LimitingFactor.MEMORY
    assert limiting_factor(3.95, 4.0) == LimitingFactor.BALANCED


def test_azure_levels_classified_as_in_section3b():
    """§III-B with 4 GB/core PMs: Azure 1:1 and 2:1 CPU-bound, 3:1
    memory-bound."""
    cls = classify_levels(AZURE, target_mc=4.0)
    assert cls[1.0] == LimitingFactor.CPU
    assert cls[2.0] == LimitingFactor.CPU
    assert cls[3.0] == LimitingFactor.MEMORY


def test_ovhcloud_levels_classified_as_in_section3b():
    """§III-B: OVHcloud 1:1 CPU-bound, 2:1 balanced (3.9 ~= 4), 3:1
    heavily memory-bound."""
    cls = classify_levels(OVHCLOUD, target_mc=4.0)
    assert cls[1.0] == LimitingFactor.CPU
    assert cls[2.0] == LimitingFactor.BALANCED
    assert cls[3.0] == LimitingFactor.MEMORY


def test_everything_memory_bound_on_2gb_per_core_pms():
    """§III-B: 'With PMs operating at a M/C ratio of 2 GB per core, all
    the workloads outlined in Table II experience memory saturation'."""
    for catalog in (AZURE, OVHCLOUD):
        cls = classify_levels(catalog, target_mc=2.0)
        assert all(v == LimitingFactor.MEMORY for v in cls.values())
