"""Topology serialization tests."""

import numpy as np
import pytest

from repro.core import TopologyError
from repro.hardware import build_topology, epyc_7662_dual
from repro.hardware.serialization import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)


def test_roundtrip_preserves_structure():
    topo = build_topology(sockets=2, cores_per_socket=4, smt=2,
                          llc_group=2, numa_per_socket=2)
    back = topology_from_dict(topology_to_dict(topo))
    assert back.num_cpus == topo.num_cpus
    assert back.num_physical_cores == topo.num_physical_cores
    assert back.num_sockets == topo.num_sockets
    assert back.num_numa_nodes == topo.num_numa_nodes
    assert np.array_equal(back.distance_matrix(), topo.distance_matrix())


def test_roundtrip_epyc_through_file(tmp_path):
    topo = epyc_7662_dual()
    path = tmp_path / "epyc.json"
    save_topology(topo, path)
    back = load_topology(path)
    assert back.num_cpus == 256
    assert back.core_distance(0, 1) == 0.0
    assert back.core_distance(0, 128) == topo.core_distance(0, 128)


def test_unsorted_cpu_rows_are_accepted():
    topo = build_topology(sockets=1, cores_per_socket=2, smt=1)
    data = topology_to_dict(topo)
    data["cpus"].reverse()
    back = topology_from_dict(data)
    assert back.num_cpus == 2


@pytest.mark.parametrize(
    "mutate",
    [
        lambda d: d.pop("cpus"),
        lambda d: d.pop("numa_distances"),
        lambda d: d.update(version=99),
        lambda d: d["cpus"][0].pop("cache_ids"),
    ],
)
def test_invalid_descriptions_rejected(mutate):
    data = topology_to_dict(build_topology(sockets=1, cores_per_socket=2))
    mutate(data)
    with pytest.raises(TopologyError):
        topology_from_dict(data)


def test_invalid_json_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(TopologyError):
        load_topology(path)
