"""Tests for machine specifications."""

import pytest

from repro.core import ConfigError, ResourceVector
from repro.hardware import (
    EPYC_7662_DUAL,
    SIM_WORKER,
    MachineSpec,
    machine_from_topology,
    small_smp,
)


def test_testbed_spec_matches_table3():
    # Table III: 256 threads, 1 TB, M/C = 1000/256 ~= 4.
    assert EPYC_7662_DUAL.cpus == 256
    assert EPYC_7662_DUAL.mem_gb == 1000.0
    assert EPYC_7662_DUAL.target_ratio == pytest.approx(3.90625)


def test_sim_worker_matches_section7b():
    # §VII-B1: 32 cores and 128 GB => M/C of 4 GB per core.
    assert SIM_WORKER.cpus == 32
    assert SIM_WORKER.mem_gb == 128.0
    assert SIM_WORKER.target_ratio == 4.0


def test_capacity_vector():
    assert SIM_WORKER.capacity == ResourceVector(32.0, 128.0)


def test_default_topology_matches_cpu_count():
    topo = SIM_WORKER.build_topology()
    assert topo.num_cpus == SIM_WORKER.cpus


def test_explicit_topology_factory_is_used():
    topo = EPYC_7662_DUAL.build_topology()
    assert topo.num_sockets == 2
    assert topo.num_cpus == 256


def test_machine_from_topology():
    topo = small_smp(cores=8)
    spec = machine_from_topology("tiny", topo, mem_gb=32.0)
    assert spec.cpus == 8
    assert spec.build_topology() is topo


def test_topology_cpu_mismatch_rejected():
    spec = MachineSpec(name="bad", cpus=16, mem_gb=64.0,
                       topology_factory=lambda: small_smp(cores=8))
    with pytest.raises(ConfigError):
        spec.build_topology()


@pytest.mark.parametrize("cpus,mem", [(0, 10.0), (-1, 10.0), (4, 0.0)])
def test_invalid_spec_rejected(cpus, mem):
    with pytest.raises(ConfigError):
        MachineSpec(name="bad", cpus=cpus, mem_gb=mem)
