"""Unit tests for the CPU topology model."""

import numpy as np
import pytest

from repro.core import TopologyError
from repro.hardware import (
    CpuInfo,
    Topology,
    build_topology,
    epyc_7662_dual,
    small_smp,
    xeon_8280_dual,
)


class TestBuilders:
    def test_epyc_matches_table3(self):
        # Table III: 2x64 cores x 2 hyperthreads = 256 threads.
        topo = epyc_7662_dual()
        assert topo.num_cpus == 256
        assert topo.num_physical_cores == 128
        assert topo.smt_factor == 2
        assert topo.num_sockets == 2

    def test_epyc_has_segmented_llc(self):
        topo = epyc_7662_dual()
        llcs = {c.cache_ids[-1] for c in topo.cpus()}
        # 128 physical cores in CCX groups of 4 => 32 LLC zones.
        assert len(llcs) == 32

    def test_xeon_has_monolithic_llc_per_socket(self):
        topo = xeon_8280_dual()
        llcs = {c.cache_ids[-1] for c in topo.cpus()}
        assert len(llcs) == 2

    def test_small_smp(self):
        topo = small_smp(cores=8)
        assert topo.num_cpus == 8
        assert topo.smt_factor == 1

    def test_smt_sibling_sets(self):
        topo = build_topology(sockets=1, cores_per_socket=4, smt=2)
        assert topo.siblings_of(0) == (0, 1)
        assert topo.siblings_of(1) == (0, 1)
        assert topo.physical_core_of(0) == topo.physical_core_of(1)

    def test_physical_cores_spanned(self):
        topo = build_topology(sockets=1, cores_per_socket=4, smt=2)
        assert topo.physical_cores_spanned([0, 1, 2]) == 2

    def test_numa_per_socket_partitions_cores(self):
        topo = build_topology(sockets=1, cores_per_socket=8, numa_per_socket=2)
        nodes = {c.numa_node for c in topo.cpus()}
        assert nodes == {0, 1}

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(sockets=0),
            dict(cores_per_socket=0),
            dict(smt=0),
            dict(numa_per_socket=3, cores_per_socket=8),
            dict(llc_group=0),
        ],
    )
    def test_invalid_builder_args(self, kwargs):
        with pytest.raises(TopologyError):
            build_topology(**kwargs)


class TestTopologyValidation:
    def _cpu(self, cpu_id, phys=0, node=0, caches=(0, 100, 200)):
        return CpuInfo(cpu_id=cpu_id, physical_core=phys, socket=0,
                       numa_node=node, cache_ids=caches)

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            Topology([], np.array([[10.0]]))

    def test_non_contiguous_ids_rejected(self):
        with pytest.raises(TopologyError):
            Topology([self._cpu(1)], np.array([[10.0]]))

    def test_mismatched_cache_heights_rejected(self):
        cpus = [self._cpu(0), self._cpu(1, caches=(0, 100))]
        with pytest.raises(TopologyError):
            Topology(cpus, np.array([[10.0]]))

    def test_numa_matrix_must_cover_nodes(self):
        cpus = [self._cpu(0), self._cpu(1, node=1)]
        with pytest.raises(TopologyError):
            Topology(cpus, np.array([[10.0]]))

    def test_numa_matrix_must_be_square(self):
        with pytest.raises(TopologyError):
            Topology([self._cpu(0)], np.array([[10.0, 20.0]]))

    def test_cache_level_bounds(self):
        topo = small_smp()
        with pytest.raises(TopologyError):
            topo.cache_id(0, 0)
        with pytest.raises(TopologyError):
            topo.cache_id(4, 0)
