"""Property tests of topologies and the distance metric."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.hardware import build_topology
from repro.localsched import CoreAllocator


@st.composite
def topologies(draw):
    sockets = draw(st.integers(min_value=1, max_value=2))
    cores = draw(st.sampled_from([2, 4, 8]))
    smt = draw(st.sampled_from([1, 2]))
    llc = draw(st.sampled_from([1, 2, 4]))
    llc = min(llc, cores)
    numa = draw(st.sampled_from([1, 2]))
    if cores % numa:
        numa = 1
    return build_topology(
        sockets=sockets, cores_per_socket=cores, smt=smt,
        llc_group=llc, numa_per_socket=numa,
    )


@settings(max_examples=50, deadline=None)
@given(topo=topologies())
def test_distance_metric_properties(topo):
    d = topo.distance_matrix()
    # Symmetry and self-distance zero.
    assert np.allclose(d, d.T)
    assert np.all(np.diag(d) == 0)
    # Non-negative, and zero exactly between SMT siblings.
    assert np.all(d >= 0)
    for cpu in range(topo.num_cpus):
        for sib in topo.siblings_of(cpu):
            assert d[cpu, sib] == 0


@settings(max_examples=50, deadline=None)
@given(topo=topologies())
def test_same_socket_never_farther_than_cross_socket(topo):
    if topo.num_sockets < 2:
        return
    d = topo.distance_matrix()
    cpus = topo.cpus()
    same, cross = [], []
    for i in range(0, topo.num_cpus, max(1, topo.num_cpus // 8)):
        for j in range(0, topo.num_cpus, max(1, topo.num_cpus // 8)):
            if cpus[i].physical_core == cpus[j].physical_core:
                continue
            if cpus[i].socket == cpus[j].socket:
                same.append(d[i, j])
            else:
                cross.append(d[i, j])
    if same and cross:
        assert max(same) <= min(cross)


@settings(max_examples=30, deadline=None)
@given(topo=topologies(), data=st.data())
def test_allocator_never_double_books(topo, data):
    alloc = CoreAllocator(topo)
    taken: set[int] = set()
    anchors: list[list[int]] = []
    for _ in range(data.draw(st.integers(min_value=1, max_value=6))):
        if alloc.num_free == 0:
            break
        count = data.draw(st.integers(min_value=1, max_value=alloc.num_free))
        if anchors and data.draw(st.booleans()):
            grown = alloc.pick_grow(anchors[-1], count)
            anchors[-1].extend(grown)
            chosen = grown
        else:
            chosen = alloc.pick_seed(count, occupied=[c for a in anchors for c in a])
            anchors.append(list(chosen))
        overlap = taken & set(chosen)
        assert not overlap
        taken.update(chosen)
    assert len(taken) == topo.num_cpus - alloc.num_free
