"""Tests of the Algorithm 1 core-distance metric."""

import numpy as np

from repro.hardware import build_topology, epyc_7662_dual


def test_smt_siblings_are_distance_zero():
    topo = epyc_7662_dual()
    assert topo.core_distance(0, 1) == 0.0


def test_same_llc_group_distance():
    # EPYC: cores of one CCX share only the L3 => one miss at the core
    # level, then L1 and L2 differ: 10 * 3 = 30.
    topo = epyc_7662_dual()
    # cpu 0 (phys 0) and cpu 2 (phys 1) are in the same 4-core CCX.
    assert topo.core_distance(0, 2) == 30.0


def test_same_socket_different_llc_adds_numa_local():
    topo = epyc_7662_dual()
    # phys 0 and phys 4 are in different CCXs, same socket: no cache is
    # shared at any of the 3 levels => 10 * 4 + local NUMA distance 10.
    assert topo.core_distance(0, 8) == 50.0


def test_cross_socket_adds_remote_numa():
    topo = epyc_7662_dual()
    assert topo.core_distance(0, 128) == 40.0 + 32.0


def test_distance_is_symmetric_and_zero_diag():
    topo = build_topology(sockets=2, cores_per_socket=4, smt=2, llc_group=2)
    d = topo.distance_matrix()
    assert np.allclose(d, d.T)
    assert np.all(np.diag(d) == 0.0)


def test_distance_matrix_matches_pairwise_function():
    topo = build_topology(sockets=2, cores_per_socket=4, smt=2, llc_group=2)
    d = topo.distance_matrix()
    for i in range(topo.num_cpus):
        for j in range(topo.num_cpus):
            assert d[i, j] == topo.core_distance(i, j)


def test_monolithic_llc_keeps_socket_cores_close():
    topo = build_topology(sockets=2, cores_per_socket=4, smt=1)
    # Same socket: shares the LLC => 30; cross socket: 40 + remote NUMA.
    assert topo.core_distance(0, 3) == 30.0
    assert topo.core_distance(0, 4) > topo.core_distance(0, 3)


def test_distance_hierarchy_is_ordered():
    """Closer cache sharing must always mean smaller distance."""
    topo = epyc_7662_dual()
    sibling = topo.core_distance(0, 1)
    same_ccx = topo.core_distance(0, 2)
    same_socket = topo.core_distance(0, 8)
    cross_socket = topo.core_distance(0, 128)
    assert sibling < same_ccx < same_socket < cross_socket
