"""Tests for the differential audit tool."""

import random

import pytest

from repro.core import OversubscriptionLevel, SlackVMConfig, VMRequest, VMSpec
from repro.core.errors import ConfigError
from repro.hardware import MachineSpec
from repro.obs import ADMISSION_GROWTH, DecisionRecord, HostDecision
from repro.obs.audit import audit_workload, diff_decision_streams
from repro.scheduling import scheduler_for_policy
from repro.simulator import POLICIES


def random_workload(n, seed):
    rng = random.Random(seed)
    vms = []
    for i in range(n):
        arrival = rng.uniform(0.0, 100.0)
        departs = rng.random() < 0.5
        vms.append(
            VMRequest(
                f"vm-{i:03d}",
                VMSpec(rng.choice([1, 2, 4, 8]), float(rng.choice([1, 2, 4, 8, 16]))),
                OversubscriptionLevel(rng.choice([1.0, 2.0, 3.0])),
                arrival=arrival,
                departure=arrival + rng.uniform(0.5, 50.0) if departs else None,
            )
        )
    return vms


MACHINES = [MachineSpec(f"pm-{i}", 16, 64.0) for i in range(3)]


class TestAuditAgreement:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_engines_agree_on_random_workload(self, policy):
        report = audit_workload(random_workload(40, seed=policy), MACHINES, policy=policy)
        assert report.ok, report.summary()
        assert report.num_arrivals == 40
        assert len(report.object_decisions) == len(report.vector_decisions) == 40
        assert "divergences: 0" in report.summary()

    def test_agreement_with_pooling_disabled(self):
        report = audit_workload(
            random_workload(30, seed=5), MACHINES, policy="progress",
            config=SlackVMConfig(pooling=False),
        )
        assert report.ok, report.summary()

    def test_report_dict_shape(self):
        report = audit_workload(random_workload(10, seed=1), MACHINES)
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["policy"] == "progress"
        assert len(payload["decisions"]["object"]) == 10
        assert payload["object"]["metrics"]["arrivals"]["value"] == 10
        assert "decisions" not in report.to_dict(include_decisions=False)

    def test_metrics_collected_for_both_engines(self):
        report = audit_workload(random_workload(10, seed=2), MACHINES)
        for metrics in (report.object_metrics, report.vector_metrics):
            assert metrics["arrivals"]["value"] == 10
            assert "select_s" in metrics

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            audit_workload(random_workload(5, seed=3), MACHINES, policy="nope")
        with pytest.raises(ConfigError):
            scheduler_for_policy("nope")


def _decision(seq, vm_id, chosen, score=1.0, admission=ADMISSION_GROWTH,
              hosted_ratio=2.0, growth=1, eligible=(0, 1)):
    hosts = tuple(
        HostDecision(j, j in eligible, {"CapacityFilter": j in eligible},
                     {"w": score} if j in eligible else {},
                     score if j in eligible else None)
        for j in range(2)
    )
    return DecisionRecord(
        seq=seq, time=float(seq), vm_id=vm_id, scheduler="test",
        hosts=hosts, chosen=chosen, admission=admission,
        hosted_ratio=hosted_ratio, growth=growth,
    )


class TestDiffLocalization:
    def test_identical_streams(self):
        a = [_decision(0, "vm-0", 0), _decision(1, "vm-1", 1)]
        assert diff_decision_streams(a, list(a)) == []

    def test_chosen_divergence_localized(self):
        obj = [_decision(0, "vm-0", 0), _decision(1, "vm-1", 0)]
        vec = [_decision(0, "vm-0", 0), _decision(1, "vm-1", 1)]
        divs = diff_decision_streams(obj, vec)
        assert len(divs) == 1
        assert divs[0].seq == 1
        assert divs[0].kind == "chosen"
        assert divs[0].object_value == 0
        assert divs[0].vector_value == 1
        text = divs[0].describe()
        assert "vm-1" in text and "chosen diverged" in text

    def test_candidate_set_divergence_wins_over_chosen(self):
        obj = [_decision(0, "vm-0", 0, eligible=(0, 1))]
        vec = [_decision(0, "vm-0", 1, eligible=(1,))]
        divs = diff_decision_streams(obj, vec)
        assert divs[0].kind == "candidates"

    def test_score_divergence_within_tolerance_ignored(self):
        obj = [_decision(0, "vm-0", 0, score=1.0)]
        vec = [_decision(0, "vm-0", 0, score=1.0 + 1e-12)]
        assert diff_decision_streams(obj, vec) == []

    def test_score_divergence_beyond_tolerance_reported(self):
        obj = [_decision(0, "vm-0", 0, score=1.0)]
        vec = [_decision(0, "vm-0", 0, score=1.5)]
        divs = diff_decision_streams(obj, vec)
        assert divs[0].kind == "scores"

    def test_stream_length_mismatch(self):
        obj = [_decision(0, "vm-0", 0)]
        divs = diff_decision_streams(obj, [])
        assert divs[0].kind == "stream_length"

    def test_max_divergences_caps_collection(self):
        obj = [_decision(i, f"vm-{i}", 0) for i in range(20)]
        vec = [_decision(i, f"vm-{i}", 1) for i in range(20)]
        divs = diff_decision_streams(obj, vec, max_divergences=5)
        assert len(divs) == 5

    def test_admission_divergence(self):
        obj = [_decision(0, "vm-0", 0, admission="growth")]
        vec = [_decision(0, "vm-0", 0, admission="pooled")]
        divs = diff_decision_streams(obj, vec)
        assert divs[0].kind == "admission"
