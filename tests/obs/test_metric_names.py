"""The metric-name registry (repro.obs.names) backing lint rule R008."""

import ast
import inspect

from repro.obs import names


def _constants() -> dict[str, str]:
    return {
        attr: value
        for attr in names.__all__
        if isinstance(value := getattr(names, attr), str)
    }


def test_every_constant_is_registered():
    constants = _constants()
    assert constants, "registry exports no metric names"
    assert set(constants.values()) == names.ALL_METRIC_NAMES


def test_names_are_unique_and_well_formed():
    constants = _constants()
    assert len(set(constants.values())) == len(constants)
    for value in constants.values():
        # Dashboard-safe: dotted lowercase identifiers only.
        assert all(part.isidentifier() for part in value.split("."))
        assert value == value.lower()


def test_emit_sites_only_reference_known_names():
    # The registry must stay in sync with what the engines emit: every
    # attribute access `metric_names.X` across the library resolves.
    import repro.bench.engine
    import repro.oversub.controller
    import repro.runner.runner
    import repro.serving.service
    import repro.sharding.dispatcher
    import repro.simulator.engine
    import repro.simulator.vectorpool

    for module in (
        repro.simulator.engine,
        repro.simulator.vectorpool,
        repro.runner.runner,
        repro.bench.engine,
        repro.oversub.controller,
        repro.sharding.dispatcher,
        repro.serving.service,
    ):
        tree = ast.parse(inspect.getsource(module))
        used = {
            node.attr
            for node in ast.walk(tree)
            if isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "metric_names"
        }
        assert used, f"{module.__name__} emits no registered metrics?"
        for attr in used:
            assert getattr(names, attr) in names.ALL_METRIC_NAMES
