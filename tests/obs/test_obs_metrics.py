"""Unit tests for the repro.obs metrics registry."""

import json
import time

import pytest

from repro.obs import NULL_METRICS, MetricsRegistry, NullMetricsRegistry


class TestInstruments:
    def setup_method(self):
        self.reg = MetricsRegistry()

    def test_counter(self):
        c = self.reg.counter("arrivals")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert self.reg.counter("arrivals") is c  # same instrument

    def test_gauge(self):
        g = self.reg.gauge("alloc")
        g.set(3.5)
        g.add(0.5)
        assert g.value == 4.0

    def test_histogram_summary(self):
        h = self.reg.histogram("candidates")
        for v in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 10
        assert snap["min"] == 1.0
        assert snap["max"] == 10.0
        assert snap["mean"] == pytest.approx(5.5)
        assert snap["p50"] == pytest.approx(5.5)
        assert snap["p90"] == pytest.approx(9.1)

    def test_empty_histogram(self):
        assert self.reg.histogram("empty").snapshot() == {
            "kind": "histogram",
            "count": 0,
        }

    def test_timer_context_manager(self):
        t = self.reg.timer("select_s")
        with t:
            time.sleep(0.001)
        assert t.count == 1
        assert t.total_s > 0.0
        t.observe(1.0)
        assert t.count == 2
        assert t.snapshot()["mean_s"] == pytest.approx(t.total_s / 2)

    def test_kind_conflict_rejected(self):
        self.reg.counter("x")
        with pytest.raises(ValueError, match="Counter"):
            self.reg.gauge("x")


class TestExport:
    def test_to_dict_and_json(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("b").set(1.5)
        d = reg.to_dict()
        assert d["a"] == {"kind": "counter", "value": 3}
        assert d["b"] == {"kind": "gauge", "value": 1.5}
        assert json.loads(reg.to_json()) == d

    def test_csv(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.timer("t").observe(0.5)
        csv = reg.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "name,kind,field,value"
        assert "a,counter,value,2" in lines
        assert "t,timer,count,1" in lines
        assert "t,timer,total_s,0.5" in lines


class TestNullRegistry:
    def test_disabled_and_inert(self):
        reg = NullMetricsRegistry()
        assert not reg.enabled
        reg.counter("a").inc()
        reg.gauge("b").set(5)
        reg.histogram("c").observe(1.0)
        with reg.timer("d"):
            pass
        assert reg.to_dict() == {}
        assert len(reg) == 0

    def test_shared_singleton(self):
        assert not NULL_METRICS.enabled
        # All instruments collapse to one shared no-op object.
        assert NULL_METRICS.counter("x") is NULL_METRICS.timer("y")
