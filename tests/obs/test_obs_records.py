"""Tests for decision records, recorders, and engine emission."""

import io
import json

from repro.core import OversubscriptionLevel, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.localsched import LocalScheduler
from repro.obs import (
    ADMISSION_GROWTH,
    ADMISSION_POOLED,
    ADMISSION_REJECTED,
    DecisionRecord,
    HostDecision,
    JsonlRecorder,
    MemoryRecorder,
    MetricsRegistry,
    NullRecorder,
)
from repro.scheduling import slackvm_scheduler
from repro.simulator import Simulation, VectorSimulation, build_hosts

MACHINE = MachineSpec("pm", 16, 64.0)


def _vm(i, vcpus=2, mem=4.0, ratio=2.0, arrival=0.0, departure=None):
    return VMRequest(
        f"vm-{i:03d}", VMSpec(vcpus, mem), OversubscriptionLevel(ratio),
        arrival=arrival, departure=departure,
    )


def _workload(n=12):
    vms = []
    for i in range(n):
        ratio = [1.0, 2.0, 3.0][i % 3]
        vms.append(_vm(i, vcpus=1 + i % 4, mem=float(1 + i % 8), ratio=ratio,
                       arrival=float(i), departure=float(i) + 30.0))
    return vms


class TestObjectEngineEmission:
    def run_recorded(self, workload, num_hosts=2):
        recorder = MemoryRecorder()
        metrics = MetricsRegistry()
        hosts = build_hosts(MACHINE, num_hosts)
        result = Simulation(
            hosts, slackvm_scheduler(), recorder=recorder, metrics=metrics
        ).run(workload)
        return result, recorder, metrics

    def test_one_decision_per_arrival(self):
        workload = _workload()
        result, recorder, _ = self.run_recorded(workload)
        assert len(recorder.decisions) == len(workload)
        assert [d.seq for d in recorder.decisions] == list(range(len(workload)))

    def test_decision_matches_result(self):
        workload = _workload()
        result, recorder, _ = self.run_recorded(workload)
        for dec in recorder.decisions:
            placed = dec.vm_id in result.placements
            if placed:
                rec = result.placements[dec.vm_id]
                assert dec.chosen == rec.host
                assert dec.hosted_ratio == rec.hosted_ratio
                expected = ADMISSION_POOLED if rec.pooled else ADMISSION_GROWTH
                assert dec.admission == expected
            else:
                assert dec.chosen is None
                assert dec.admission == ADMISSION_REJECTED

    def test_filter_and_weigher_tables_populated(self):
        workload = _workload()
        _, recorder, _ = self.run_recorded(workload)
        dec = recorder.decisions[0]
        for host_dec in dec.hosts:
            assert set(host_dec.filters) == {"LevelSupportFilter", "CapacityFilter"}
            if host_dec.eligible:
                assert "ProgressWeigher" in host_dec.weigher_scores
                assert "FirstFitWeigher" in host_dec.weigher_scores
                assert host_dec.score == sum(host_dec.weigher_scores.values())

    def test_admission_records_emitted_by_local_agents(self):
        workload = _workload()
        result, recorder, _ = self.run_recorded(workload)
        assert len(recorder.admissions) == len(result.placements)
        by_vm = {a.vm_id: a for a in recorder.admissions}
        for vm_id, rec in result.placements.items():
            assert by_vm[vm_id].hosted_ratio == rec.hosted_ratio
            assert by_vm[vm_id].pooled == rec.pooled

    def test_metrics_counters(self):
        workload = _workload()
        result, _, metrics = self.run_recorded(workload)
        snap = metrics.to_dict()
        assert snap["arrivals"]["value"] == len(workload)
        assert snap["placements"]["value"] == len(result.placements)
        assert snap["candidates"]["count"] == len(workload)

    def test_rejection_recorded(self):
        giant = _vm(0, vcpus=64, mem=512.0, ratio=1.0)
        _, recorder, metrics = self.run_recorded([giant], num_hosts=1)
        assert recorder.decisions[0].admission == ADMISSION_REJECTED
        assert recorder.decisions[0].candidates == ()
        assert metrics.to_dict()["rejections"]["value"] == 1

    def test_recorder_off_by_default(self):
        hosts = build_hosts(MACHINE, 2)
        sim = Simulation(hosts, slackvm_scheduler())
        assert not sim.recorder.enabled
        sim.run(_workload())  # must not blow up, nothing recorded


class TestVectorEngineEmission:
    def run_recorded(self, workload, num_hosts=2, policy="progress"):
        recorder = MemoryRecorder()
        metrics = MetricsRegistry()
        machines = [MachineSpec(f"pm-{i}", 16, 64.0) for i in range(num_hosts)]
        result = VectorSimulation(
            machines, policy=policy, recorder=recorder, metrics=metrics
        ).run(workload)
        return result, recorder, metrics

    def test_one_decision_per_arrival(self):
        workload = _workload()
        result, recorder, _ = self.run_recorded(workload)
        assert len(recorder.decisions) == len(workload)
        assert len(recorder.admissions) == len(result.placements)

    def test_filter_names_mirror_object_path(self):
        _, recorder, _ = self.run_recorded(_workload())
        dec = recorder.decisions[0]
        for host_dec in dec.hosts:
            assert set(host_dec.filters) == {"LevelSupportFilter", "CapacityFilter"}

    def test_growth_recorded(self):
        # First 2:1 VM on an empty host must grow its vNode.
        vm = _vm(0, vcpus=4, mem=4.0, ratio=2.0)
        _, recorder, _ = self.run_recorded([vm])
        dec = recorder.decisions[0]
        assert dec.admission == ADMISSION_GROWTH
        assert dec.growth == 2  # ceil(4 vCPU / 2:1) physical CPUs

    def test_pooled_admission(self):
        cfg_pool = SlackVMConfig(pooling=True)
        machines = [MachineSpec("pm-0", 4, 64.0)]
        recorder = MemoryRecorder()
        # Fill the host with a 2:1 vNode that has slack, then send a 3:1
        # VM too big for its own vNode to grow.
        w = [
            _vm(0, vcpus=7, mem=4.0, ratio=2.0),  # 4 CPUs, slack 1 vCPU
            _vm(1, vcpus=1, mem=1.0, ratio=3.0),
        ]
        result = VectorSimulation(
            machines, config=cfg_pool, policy="first_fit", recorder=recorder
        ).run(w)
        assert result.pooled_placements == 1
        dec = recorder.decisions[1]
        assert dec.admission == ADMISSION_POOLED
        assert dec.hosted_ratio == 2.0
        assert dec.growth == 0


class TestRecorderSinks:
    def test_null_recorder(self):
        r = NullRecorder()
        assert not r.enabled

    def test_jsonl_round_trip(self):
        buf = io.StringIO()
        recorder = JsonlRecorder(buf)
        machines = [MachineSpec("pm-0", 16, 64.0)]
        VectorSimulation(machines, policy="progress", recorder=recorder).run(
            _workload(6)
        )
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        kinds = {line["record"] for line in lines}
        assert kinds == {"decision", "admission"}
        decisions = [l for l in lines if l["record"] == "decision"]
        assert len(decisions) == 6
        assert all("hosts" in d and "admission" in d for d in decisions)

    def test_jsonl_file_sink(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with JsonlRecorder(path) as recorder:
            recorder.record_decision(
                DecisionRecord(
                    seq=0, time=0.0, vm_id="vm-0", scheduler="test",
                    hosts=(HostDecision(0, True, {"f": True}, {"w": 1.0}, 1.0),),
                    chosen=0, admission=ADMISSION_GROWTH,
                    hosted_ratio=1.0, growth=2,
                )
            )
        [payload] = [json.loads(l) for l in path.read_text().splitlines()]
        assert payload["vm_id"] == "vm-0"
        assert payload["hosts"][0]["weigher_scores"] == {"w": 1.0}

    def test_decision_record_candidates(self):
        rec = DecisionRecord(
            seq=0, time=0.0, vm_id="v", scheduler="s",
            hosts=(
                HostDecision(0, False, {"f": False}),
                HostDecision(1, True, {"f": True}, {"w": 0.5}, 0.5),
            ),
            chosen=1, admission=ADMISSION_GROWTH,
        )
        assert rec.candidates == (1,)
