"""Tests of the per-level vCluster view."""

from repro.core import LEVEL_1_1, LEVEL_2_1, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.localsched import LocalScheduler
from repro.scheduling import VCluster


def vm(vm_id, vcpus=2, mem=4.0, level=LEVEL_2_1):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level)


def make_cluster():
    cfg = SlackVMConfig()
    return [LocalScheduler(MachineSpec(f"pm-{i}", 16, 64.0), cfg) for i in range(3)]


def test_vcluster_collects_only_its_level():
    cluster = make_cluster()
    cluster[0].deploy(vm("a", level=LEVEL_2_1))
    cluster[1].deploy(vm("b", level=LEVEL_1_1))
    cluster[2].deploy(vm("c", level=LEVEL_2_1))
    vc = VCluster(LEVEL_2_1, cluster)
    assert len(vc.vnodes()) == 2
    stats = vc.stats()
    assert stats.num_vms == 2
    assert stats.level_name == "2:1"


def test_vcluster_stats_aggregate():
    cluster = make_cluster()
    cluster[0].deploy(vm("a", vcpus=3))
    cluster[1].deploy(vm("b", vcpus=4))
    stats = VCluster(LEVEL_2_1, cluster).stats()
    assert stats.allocated_vcpus == 7
    assert stats.allocated_cpus == 4  # ceil(3/2) + ceil(4/2)
    assert stats.capacity_vcpus == 8.0
    assert stats.vcpu_utilization == 7 / 8


def test_empty_vcluster():
    stats = VCluster(LEVEL_2_1, make_cluster()).stats()
    assert stats.num_vnodes == 0
    assert stats.vcpu_utilization == 0.0


def test_vcluster_allocation_vector():
    cluster = make_cluster()
    cluster[0].deploy(vm("a", vcpus=4, mem=8.0))
    alloc = VCluster(LEVEL_2_1, cluster).allocation()
    assert alloc.cpu == 2.0
    assert alloc.mem == 8.0
