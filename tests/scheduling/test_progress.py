"""Line-by-line tests of Algorithm 2 (the progress score)."""

import pytest

from repro.core import ResourceVector
from repro.scheduling import progress_score

PM = ResourceVector(32.0, 128.0)  # target ratio 4 GB/core


def test_empty_pm_is_considered_ideal():
    """Line 6: an idle PM is regarded as already at its target ratio, so
    any deployment can only move it away (progress <= 0)."""
    balanced = ResourceVector(2.0, 8.0)  # exactly the target ratio
    skewed = ResourceVector(2.0, 2.0)
    assert progress_score(PM, ResourceVector.zero(), balanced) == 0.0
    assert progress_score(PM, ResourceVector.zero(), skewed) < 0.0


def test_counterbalancing_vm_scores_positive():
    # PM is CPU-heavy (ratio 2 < 4); a memory-heavy VM re-balances it.
    alloc = ResourceVector(10.0, 20.0)
    memory_heavy = ResourceVector(1.0, 16.0)
    assert progress_score(PM, alloc, memory_heavy) > 0.0


def test_aggravating_vm_scores_negative():
    alloc = ResourceVector(10.0, 20.0)  # ratio 2, CPU-heavy
    cpu_heavy = ResourceVector(4.0, 4.0)  # ratio 1: pushes further down
    assert progress_score(PM, alloc, cpu_heavy) < 0.0


def test_progress_is_delta_of_deltas():
    """Lines 9-11: progress = |current - target| - |next - target|."""
    alloc = ResourceVector(10.0, 20.0)
    vm = ResourceVector(2.0, 28.0)
    current = 20.0 / 10.0
    nxt = 48.0 / 12.0
    expected = abs(current - 4.0) - abs(nxt - 4.0)
    assert progress_score(PM, alloc, vm) == pytest.approx(expected)


def test_negative_factor_scales_by_load():
    """Lines 12-15: negative progress is multiplied by
    ``1 + allocated_cpu / configured_cpu``."""
    vm = ResourceVector(4.0, 4.0)
    for alloc in (ResourceVector(4.0, 8.0), ResourceVector(24.0, 48.0)):
        raw = progress_score(PM, alloc, vm, negative_factor=False)
        assert raw < 0  # both allocations are CPU-heavy; the VM aggravates
        expected = raw * (1.0 + alloc.cpu / PM.cpu)
        assert progress_score(PM, alloc, vm) == pytest.approx(expected)


def test_negative_factor_counteracts_loaded_pm_preference():
    """Without the factor, a loaded PM absorbs an unbalancing VM with a
    smaller ratio shift and is preferred; the factor narrows that gap so
    lighter PMs stay competitive (the paper's line 12-15 rationale)."""
    vm = ResourceVector(4.0, 4.0)
    light = ResourceVector(4.0, 8.0)
    heavy = ResourceVector(24.0, 48.0)  # same ratio, heavier load
    gap_without = progress_score(
        PM, heavy, vm, negative_factor=False
    ) - progress_score(PM, light, vm, negative_factor=False)
    gap_with = progress_score(PM, heavy, vm) - progress_score(PM, light, vm)
    assert gap_without > 0  # heavy PM preferred on raw progress
    assert gap_with < gap_without  # the factor shrinks that advantage


def test_positive_progress_not_scaled_by_factor():
    alloc = ResourceVector(10.0, 20.0)
    vm = ResourceVector(1.0, 16.0)
    assert progress_score(PM, alloc, vm) == progress_score(
        PM, alloc, vm, negative_factor=False
    )


def test_perfectly_balancing_vm_beats_partial():
    """A VM that lands the PM exactly on target must outscore one that
    only gets it closer."""
    alloc = ResourceVector(10.0, 20.0)  # needs 4 GB/core overall
    # Perfect: (20 + m) / (10 + c) = 4 with c=2 => m = 28.
    perfect = ResourceVector(2.0, 28.0)
    partial = ResourceVector(2.0, 20.0)
    assert progress_score(PM, alloc, perfect) > progress_score(PM, alloc, partial)


def test_heterogeneous_hardware_uses_per_pm_target():
    """§VI: the target ratio is per-PM, so the same (alloc, vm) pair can
    score positive on one hardware config and negative on another."""
    alloc = ResourceVector(10.0, 20.0)
    vm = ResourceVector(2.0, 2.0)  # ratio 1
    memory_light_pm = ResourceVector(32.0, 48.0)  # target 1.5
    memory_heavy_pm = ResourceVector(32.0, 256.0)  # target 8
    assert progress_score(memory_light_pm, alloc, vm) > 0
    assert progress_score(memory_heavy_pm, alloc, vm) < 0
