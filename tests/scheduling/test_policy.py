"""Declarative scheduler-policy tests."""

import json

import pytest

from repro.core import ConfigError, LEVEL_1_1, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.scheduling.filters import HostFilter
from repro.scheduling.policy import (
    FILTER_REGISTRY,
    WEIGHER_REGISTRY,
    load_policy,
    register_filter,
    register_weigher,
    scheduler_from_spec,
)
from repro.simulator import Simulation, build_hosts


def vm(vm_id, vcpus=2, mem=4.0):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=LEVEL_1_1)


def test_default_spec_builds_progress_policy():
    sched = scheduler_from_spec({})
    assert len(sched.filters) == 2
    assert len(sched.weighers) == 1


def test_full_spec_roundtrip():
    sched = scheduler_from_spec({
        "name": "prod",
        "filters": ["level_support", "capacity",
                    {"name": "max_vms", "max_vms": 2}],
        "weighers": [
            {"name": "progress", "weight": 1.0},
            {"name": "best_fit", "weight": 0.2},
            {"name": "first_fit", "weight": 1e-9},
        ],
    })
    assert sched.name == "prod"
    assert len(sched.filters) == 3
    assert [w for _, w in sched.weighers] == [1.0, 0.2, 1e-9]


def test_policy_actually_schedules():
    sched = scheduler_from_spec({
        "filters": ["level_support", "capacity", {"name": "max_vms", "max_vms": 1}],
        "weighers": ["first_fit"],
    })
    hosts = build_hosts(MachineSpec("pm", 16, 64.0), 3, SlackVMConfig())
    result = Simulation(hosts, sched).run([vm(f"v{i}") for i in range(3)])
    # max_vms 1: each VM on its own host.
    assert {r.host for r in result.placements.values()} == {0, 1, 2}


def test_weigher_kwargs_forwarded():
    sched = scheduler_from_spec({
        "weighers": [{"name": "progress", "weight": 1.0,
                      "negative_factor": False}],
    })
    weigher = sched.weighers[0][0]
    assert weigher.negative_factor is False


def test_load_policy_from_file(tmp_path):
    path = tmp_path / "policy.json"
    path.write_text(json.dumps({"name": "file-policy",
                                "weighers": ["best_fit"]}))
    sched = load_policy(path)
    assert sched.name == "file-policy"


def test_invalid_json_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{nope")
    with pytest.raises(ConfigError):
        load_policy(path)


@pytest.mark.parametrize("spec", [
    {"filters": ["bogus"]},
    {"weighers": ["bogus"]},
    {"weighers": []},
    {"filters": [42]},
    {"weighers": [{"weight": 1.0}]},
    {"filters": [{"name": "max_vms"}]},  # missing required kwarg
    "not-a-mapping",
])
def test_invalid_specs_rejected(spec):
    with pytest.raises(ConfigError):
        scheduler_from_spec(spec)


def test_custom_registration():
    class AlwaysPass(HostFilter):
        def passes(self, host, vm):
            return True

    register_filter("always_pass_test", AlwaysPass)
    try:
        sched = scheduler_from_spec({"filters": ["always_pass_test"],
                                     "weighers": ["first_fit"]})
        assert isinstance(sched.filters[0], AlwaysPass)
        with pytest.raises(ConfigError):
            register_filter("always_pass_test", AlwaysPass)
    finally:
        FILTER_REGISTRY.pop("always_pass_test", None)
