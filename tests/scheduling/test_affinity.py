"""Tests of the anti-affinity production rule."""

from repro.core import LEVEL_1_1, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.scheduling import ScoreBasedScheduler
from repro.scheduling.filters import AntiAffinityFilter, CapacityFilter, LevelSupportFilter
from repro.scheduling.weighers import FirstFitWeigher
from repro.simulator import Simulation, build_hosts

MACHINE = MachineSpec("pm", 16, 64.0)


def replica(vm_id, group, arrival=0.0):
    return VMRequest(vm_id=vm_id, spec=VMSpec(2, 4.0), level=LEVEL_1_1,
                     arrival=arrival, metadata={"anti_affinity": group})


def plain(vm_id, arrival=0.0):
    return VMRequest(vm_id=vm_id, spec=VMSpec(2, 4.0), level=LEVEL_1_1,
                     arrival=arrival)


def scheduler():
    return ScoreBasedScheduler(
        filters=(LevelSupportFilter(), CapacityFilter(), AntiAffinityFilter()),
        weighers=((FirstFitWeigher(), 1.0),),
        name="first-fit+anti-affinity",
    )


def test_replicas_spread_across_hosts():
    hosts = build_hosts(MACHINE, 3, SlackVMConfig())
    sim = Simulation(hosts, scheduler())
    trace = [replica(f"db-{i}", "db", arrival=float(i)) for i in range(3)]
    result = sim.run(trace)
    assert result.feasible
    placements = {result.placements[f"db-{i}"].host for i in range(3)}
    assert len(placements) == 3


def test_untagged_vms_pack_normally():
    hosts = build_hosts(MACHINE, 3, SlackVMConfig())
    sim = Simulation(hosts, scheduler())
    result = sim.run([plain(f"v{i}", arrival=float(i)) for i in range(3)])
    assert {rec.host for rec in result.placements.values()} == {0}


def test_groups_are_independent():
    hosts = build_hosts(MACHINE, 2, SlackVMConfig())
    sim = Simulation(hosts, scheduler())
    trace = [replica("db-0", "db"), replica("web-0", "web", arrival=1.0)]
    result = sim.run(trace)
    # Different groups may share a host.
    assert result.placements["db-0"].host == result.placements["web-0"].host == 0


def test_rejection_when_replicas_exceed_hosts():
    hosts = build_hosts(MACHINE, 2, SlackVMConfig())
    sim = Simulation(hosts, scheduler())
    trace = [replica(f"db-{i}", "db", arrival=float(i)) for i in range(3)]
    result = sim.run(trace)
    assert result.rejections == ["db-2"]
