"""`select`, `select_traced` and `decide` must agree — especially on
tie-heavy workloads, where any divergence in tie handling would show up
as a phantom divergence in the audit tool."""

import random

from repro.core import OversubscriptionLevel, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.scheduling import (
    ScoreBasedScheduler,
    first_fit_scheduler,
    scheduler_for_policy,
    slackvm_scheduler,
)
from repro.scheduling.weighers import ConsolidationWeigher
from repro.simulator import build_hosts

MACHINE = MachineSpec("pm", 16, 64.0)


def tie_heavy_workload(n=25, seed=11):
    """Identical-looking VMs against identical hosts: nearly every
    selection round is an all-hosts score tie."""
    rng = random.Random(seed)
    vms = []
    for i in range(n):
        vms.append(
            VMRequest(
                f"vm-{i:03d}",
                VMSpec(2, 4.0),
                OversubscriptionLevel(rng.choice([1.0, 2.0])),
                arrival=float(i),
            )
        )
    return vms


def _assert_agreement(scheduler, hosts, vm):
    selected = scheduler.select(hosts, vm)
    trace = scheduler.select_traced(hosts, vm)
    decided, table = scheduler.decide(hosts, vm)
    assert trace.selected == selected
    assert decided == selected
    # decide()'s eligible set and scores must match select_traced's.
    eligible = tuple(h.host for h in table if h.eligible)
    assert eligible == trace.candidates
    scores = tuple(h.score for h in table if h.eligible)
    assert scores == trace.scores


class TestTieHeavyAgreement:
    def test_pure_tie_scheduler(self):
        # ConsolidationWeigher scores every empty host identically: the
        # worst case for tie handling.
        scheduler = ScoreBasedScheduler(
            weighers=((ConsolidationWeigher(), 1.0),), name="ties"
        )
        hosts = build_hosts(MACHINE, 5)
        for vm in tie_heavy_workload():
            _assert_agreement(scheduler, hosts, vm)
            idx = scheduler.select(hosts, vm)
            _, table = scheduler.decide(hosts, vm)
            busy = [h.host for h in table if h.eligible and not hosts[h.host].is_empty]
            eligible = [h.host for h in table if h.eligible]
            # Busy hosts outscore idle ones; ties keep the lowest index.
            assert idx == (busy[0] if busy else eligible[0])
            hosts[idx].deploy(vm)

    def test_first_fit_replay(self):
        scheduler = first_fit_scheduler()
        hosts = build_hosts(MACHINE, 4)
        for vm in tie_heavy_workload():
            _assert_agreement(scheduler, hosts, vm)
            idx = scheduler.select(hosts, vm)
            if idx is not None:
                hosts[idx].deploy(vm)

    def test_progress_replay_with_departures(self):
        scheduler = slackvm_scheduler()
        hosts = build_hosts(MACHINE, 4)
        placed = {}
        rng = random.Random(3)
        for vm in tie_heavy_workload(40):
            _assert_agreement(scheduler, hosts, vm)
            idx = scheduler.select(hosts, vm)
            if idx is not None:
                hosts[idx].deploy(vm)
                placed[vm.vm_id] = idx
            if placed and rng.random() < 0.4:
                vm_id, host = placed.popitem()
                hosts[host].remove(vm_id)

    def test_every_policy_on_loaded_cluster(self):
        for policy in ("first_fit", "best_fit", "worst_fit", "progress",
                       "progress_no_factor", "progress_bestfit"):
            scheduler = scheduler_for_policy(policy)
            hosts = build_hosts(MACHINE, 3, SlackVMConfig())
            for vm in tie_heavy_workload(20, seed=hash(policy) % 1000):
                _assert_agreement(scheduler, hosts, vm)
                idx = scheduler.select(hosts, vm)
                if idx is not None:
                    hosts[idx].deploy(vm)

    def test_rejection_agreement(self):
        scheduler = first_fit_scheduler()
        hosts = build_hosts(MachineSpec("tiny", 2, 4.0), 2)
        giant = VMRequest("vm-big", VMSpec(32, 64.0), OversubscriptionLevel(1.0))
        _assert_agreement(scheduler, hosts, giant)
        assert scheduler.select(hosts, giant) is None
        _, table = scheduler.decide(hosts, giant)
        assert all(not h.eligible for h in table)
        # Full verdict table even for rejected hosts.
        assert all("CapacityFilter" in h.filters for h in table)
