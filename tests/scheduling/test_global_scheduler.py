"""Tests of the filter + weigh selection pipeline."""

import pytest

from repro.core import (
    LEVEL_1_1,
    LEVEL_2_1,
    LEVEL_3_1,
    SlackVMConfig,
    VMRequest,
    VMSpec,
)
from repro.hardware import MachineSpec
from repro.localsched import LocalScheduler
from repro.scheduling import (
    CapacityFilter,
    FirstFitWeigher,
    LevelSupportFilter,
    MaxVMsFilter,
    ScoreBasedScheduler,
    best_fit_scheduler,
    first_fit_scheduler,
    slackvm_scheduler,
    worst_fit_scheduler,
)


def vm(vm_id="vm", vcpus=2, mem=4.0, level=LEVEL_2_1):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level)


def hosts(n=3, cpus=8, mem=32.0, config=None):
    cfg = config or SlackVMConfig()
    return [
        LocalScheduler(MachineSpec(f"pm-{i}", cpus, mem), cfg) for i in range(n)
    ]


class TestFilters:
    def test_capacity_filter(self):
        cluster = hosts(1, cpus=2, mem=4.0)
        assert CapacityFilter().passes(cluster[0], vm(vcpus=2, mem=4.0))
        assert not CapacityFilter().passes(cluster[0], vm(vcpus=2, mem=8.0))

    def test_level_support_filter(self):
        premium_only = hosts(1, config=SlackVMConfig(levels=(LEVEL_1_1,)))[0]
        assert LevelSupportFilter().passes(premium_only, vm(level=LEVEL_1_1))
        assert not LevelSupportFilter().passes(premium_only, vm(level=LEVEL_3_1))

    def test_max_vms_filter(self):
        host = hosts(1)[0]
        host.deploy(vm(vm_id="a"))
        assert MaxVMsFilter(2).passes(host, vm(vm_id="b"))
        assert not MaxVMsFilter(1).passes(host, vm(vm_id="b"))


class TestSelection:
    def test_first_fit_picks_first_feasible(self):
        cluster = hosts(3)
        cluster[0].deploy(vm(vm_id="filler", vcpus=8, mem=8.0, level=LEVEL_1_1))
        sched = first_fit_scheduler()
        assert sched.select(cluster, vm(vm_id="x", vcpus=4, level=LEVEL_1_1)) == 1

    def test_no_feasible_host_returns_none(self):
        cluster = hosts(2, cpus=2, mem=4.0)
        sched = first_fit_scheduler()
        assert sched.select(cluster, vm(vcpus=16, mem=64.0)) is None

    def test_ties_break_to_lowest_index(self):
        cluster = hosts(3)
        sched = ScoreBasedScheduler(weighers=())
        # All scores are 0: first host wins.
        assert sched.select(cluster, vm()) == 0

    def test_progress_scheduler_prefers_counterbalancing_host(self):
        cluster = hosts(2, cpus=32, mem=128.0)
        # Host 0 CPU-heavy, host 1 memory-heavy.
        cluster[0].deploy(vm(vm_id="c", vcpus=16, mem=16.0, level=LEVEL_1_1))
        cluster[1].deploy(vm(vm_id="m", vcpus=4, mem=64.0, level=LEVEL_1_1))
        memory_heavy = vm(vm_id="x", vcpus=2, mem=32.0, level=LEVEL_1_1)
        assert slackvm_scheduler().select(cluster, memory_heavy) == 0

    def test_best_fit_picks_fullest(self):
        cluster = hosts(2)
        cluster[0].deploy(vm(vm_id="a", vcpus=4, mem=4.0, level=LEVEL_1_1))
        assert best_fit_scheduler().select(cluster, vm(vm_id="x")) == 0

    def test_worst_fit_picks_emptiest(self):
        cluster = hosts(2)
        cluster[0].deploy(vm(vm_id="a", vcpus=4, mem=4.0, level=LEVEL_1_1))
        assert worst_fit_scheduler().select(cluster, vm(vm_id="x")) == 1

    def test_weigher_weights_combine(self):
        cluster = hosts(2)
        cluster[0].deploy(vm(vm_id="a", vcpus=4, mem=4.0, level=LEVEL_1_1))
        # Heavy first-fit weight dominates best-fit.
        sched = ScoreBasedScheduler(
            weighers=((FirstFitWeigher(), 1e6),)
        )
        assert sched.select(cluster, vm(vm_id="x")) == 0


class TestTrace:
    def test_traced_selection_reports_candidates_and_scores(self):
        cluster = hosts(3, cpus=2, mem=4.0)
        cluster[0].deploy(vm(vm_id="full", vcpus=2, mem=4.0, level=LEVEL_1_1))
        sched = first_fit_scheduler()
        trace = sched.select_traced(cluster, vm(vm_id="x", vcpus=2, mem=4.0))
        assert trace.candidates == (1, 2)
        assert trace.selected == 1
        assert len(trace.scores) == 2

    def test_traced_selection_with_no_candidates(self):
        cluster = hosts(1, cpus=1, mem=1.0)
        trace = first_fit_scheduler().select_traced(cluster, vm(vcpus=8, mem=9.0))
        assert trace.selected is None
        assert trace.candidates == ()

    def test_traced_agrees_with_select(self):
        cluster = hosts(4)
        cluster[1].deploy(vm(vm_id="a", vcpus=4, mem=8.0, level=LEVEL_1_1))
        for sched in (first_fit_scheduler(), best_fit_scheduler(), slackvm_scheduler()):
            probe = vm(vm_id="probe")
            assert sched.select(cluster, probe) == sched.select_traced(cluster, probe).selected
