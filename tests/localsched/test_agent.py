"""Tests for the SlackVM local scheduler agent."""

import pytest

from repro.core import (
    CapacityError,
    LEVEL_1_1,
    LEVEL_2_1,
    LEVEL_3_1,
    SlackVMConfig,
    VMRequest,
    VMSpec,
)
from repro.hardware import MachineSpec, epyc_7662_dual, EPYC_7662_DUAL
from repro.localsched import LocalScheduler


def vm(vm_id="vm", vcpus=2, mem=4.0, level=LEVEL_2_1):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level)


@pytest.fixture
def machine():
    return MachineSpec(name="pm", cpus=8, mem_gb=32.0)


@pytest.fixture
def agent(machine):
    return LocalScheduler(machine, SlackVMConfig())


class TestDeploy:
    def test_deploy_creates_vnode(self, agent):
        placement = agent.deploy(vm())
        assert placement.hosted_level == LEVEL_2_1
        assert not placement.pooled
        node = agent.vnode_for(LEVEL_2_1)
        assert node is not None and node.num_cpus == 1

    def test_vnode_growth_uses_ceil(self, agent):
        agent.deploy(vm(vm_id="a", vcpus=3, level=LEVEL_2_1))
        assert agent.vnode_for(LEVEL_2_1).num_cpus == 2  # ceil(3/2)
        agent.deploy(vm(vm_id="b", vcpus=1, level=LEVEL_2_1))
        assert agent.vnode_for(LEVEL_2_1).num_cpus == 2  # slack reused

    def test_levels_get_separate_vnodes(self, agent):
        agent.deploy(vm(vm_id="a", level=LEVEL_1_1))
        agent.deploy(vm(vm_id="b", level=LEVEL_2_1))
        agent.deploy(vm(vm_id="c", level=LEVEL_3_1))
        assert len(agent.vnodes) == 3
        assert agent.num_vms == 3

    def test_allocation_counts_physical_reservation(self, agent):
        agent.deploy(vm(vcpus=6, mem=4.0, level=LEVEL_3_1))
        alloc = agent.allocation()
        assert alloc.cpu == 2.0  # ceil(6/3)
        assert alloc.mem == 4.0

    def test_memory_is_never_oversubscribed(self, agent):
        agent.deploy(vm(vm_id="a", vcpus=1, mem=30.0, level=LEVEL_3_1))
        assert not agent.can_deploy(vm(vm_id="b", vcpus=1, mem=4.0, level=LEVEL_3_1))

    def test_cpu_exhaustion_blocks_deploy(self, agent):
        agent.deploy(vm(vm_id="a", vcpus=8, mem=8.0, level=LEVEL_1_1))
        assert agent.free_cpus == 0
        assert not agent.can_deploy(vm(vm_id="b", vcpus=1, mem=1.0, level=LEVEL_1_1))

    def test_deploy_failure_raises(self, agent):
        agent.deploy(vm(vm_id="a", vcpus=8, mem=8.0, level=LEVEL_1_1))
        with pytest.raises(CapacityError):
            agent.deploy(vm(vm_id="b", vcpus=4, mem=1.0, level=LEVEL_1_1))

    def test_unsupported_level_is_not_deployable(self, machine):
        agent = LocalScheduler(machine, SlackVMConfig(levels=(LEVEL_1_1,)))
        assert not agent.supports(LEVEL_2_1)
        assert agent.plan(vm(level=LEVEL_2_1)) is None


class TestPooling:
    def test_pooled_upgrade_into_stricter_vnode(self, machine):
        agent = LocalScheduler(machine, SlackVMConfig(pooling=True))
        # Fill CPUs: 1:1 vNode takes 6 CPUs, 2:1 vNode takes 2 CPUs with
        # 1 vCPU of slack (3 vCPUs over 2 CPUs at 2:1 => slack 1).
        agent.deploy(vm(vm_id="prem", vcpus=6, mem=4.0, level=LEVEL_1_1))
        agent.deploy(vm(vm_id="mid", vcpus=3, mem=4.0, level=LEVEL_2_1))
        assert agent.free_cpus == 0
        placement = agent.deploy(vm(vm_id="low", vcpus=1, mem=2.0, level=LEVEL_3_1))
        assert placement.pooled
        assert placement.hosted_level == LEVEL_2_1
        assert placement.sold_level == LEVEL_3_1

    def test_pooling_disabled_rejects(self, machine):
        agent = LocalScheduler(machine, SlackVMConfig(pooling=False))
        agent.deploy(vm(vm_id="prem", vcpus=6, mem=4.0, level=LEVEL_1_1))
        agent.deploy(vm(vm_id="mid", vcpus=3, mem=4.0, level=LEVEL_2_1))
        assert not agent.can_deploy(vm(vm_id="low", vcpus=1, mem=2.0, level=LEVEL_3_1))

    def test_premium_vnodes_are_never_pooled(self, machine):
        agent = LocalScheduler(machine, SlackVMConfig(pooling=True))
        # 1:1 vNode with slack... premium has no slack by construction
        # (1 vCPU per CPU), but a 2:1 VM must not land in 1:1 either.
        agent.deploy(vm(vm_id="prem", vcpus=7, mem=4.0, level=LEVEL_1_1))
        # 1 CPU free: a 2-vCPU 2:1 VM fits there via its own vNode.
        ok = agent.plan(vm(vm_id="mid", vcpus=2, mem=2.0, level=LEVEL_2_1))
        assert ok is not None and not ok.pooled

    def test_pooled_vm_departs_cleanly(self, machine):
        agent = LocalScheduler(machine, SlackVMConfig(pooling=True))
        agent.deploy(vm(vm_id="prem", vcpus=6, mem=4.0, level=LEVEL_1_1))
        agent.deploy(vm(vm_id="mid", vcpus=3, mem=4.0, level=LEVEL_2_1))
        agent.deploy(vm(vm_id="low", vcpus=1, mem=2.0, level=LEVEL_3_1))
        agent.remove("low")
        node = agent.vnode_for(LEVEL_2_1)
        assert node.allocated_vcpus == 3
        assert agent.num_vms == 2

    def test_own_level_preferred_over_pooling(self, machine):
        agent = LocalScheduler(machine, SlackVMConfig(pooling=True))
        agent.deploy(vm(vm_id="mid", vcpus=3, mem=4.0, level=LEVEL_2_1))
        # Plenty of free CPUs: the 3:1 VM opens its own vNode.
        placement = agent.deploy(vm(vm_id="low", vcpus=1, mem=2.0, level=LEVEL_3_1))
        assert not placement.pooled
        assert placement.hosted_level == LEVEL_3_1


class TestRemove:
    def test_remove_shrinks_vnode(self, agent):
        agent.deploy(vm(vm_id="a", vcpus=4, level=LEVEL_2_1))
        agent.deploy(vm(vm_id="b", vcpus=4, level=LEVEL_2_1))
        assert agent.allocated_cpus == 4
        agent.remove("a")
        assert agent.allocated_cpus == 2

    def test_remove_last_vm_destroys_vnode(self, agent):
        agent.deploy(vm(vm_id="a"))
        agent.remove("a")
        assert agent.vnode_for(LEVEL_2_1) is None
        assert agent.is_empty
        assert agent.allocated_cpus == 0
        assert agent.allocated_mem == 0.0

    def test_remove_unknown_rejected(self, agent):
        with pytest.raises(CapacityError):
            agent.remove("ghost")

    def test_freed_cpus_are_reusable(self, agent):
        agent.deploy(vm(vm_id="a", vcpus=8, mem=8.0, level=LEVEL_1_1))
        agent.remove("a")
        agent.deploy(vm(vm_id="b", vcpus=8, mem=8.0, level=LEVEL_1_1))
        assert agent.allocated_cpus == 8


class TestPinningEvents:
    def test_pin_generation_only_changes_with_cpu_set(self, agent):
        g0 = agent.pin_generation
        agent.deploy(vm(vm_id="a", vcpus=3, level=LEVEL_2_1))  # grows to 2 CPUs
        g1 = agent.pin_generation
        assert g1 > g0
        agent.deploy(vm(vm_id="b", vcpus=1, level=LEVEL_2_1))  # slack reused
        assert agent.pin_generation == g1
        agent.remove("b")  # no shrink needed
        assert agent.pin_generation == g1
        agent.remove("a")  # vNode destroyed
        assert agent.pin_generation > g1


class TestTopologyMode:
    def test_topology_mode_assigns_real_cpus(self):
        agent = LocalScheduler(
            EPYC_7662_DUAL, SlackVMConfig(), topology=epyc_7662_dual()
        )
        placement = agent.deploy(vm(vcpus=4, level=LEVEL_2_1))
        assert len(placement.new_cpus) == 2
        assert set(placement.new_cpus) <= set(range(256))

    def test_topology_cpu_count_mismatch_rejected(self, machine):
        from repro.core import ConfigError

        with pytest.raises(ConfigError):
            LocalScheduler(machine, SlackVMConfig(), topology=epyc_7662_dual())


class TestDescribe:
    def test_describe_snapshot(self, agent):
        agent.deploy(vm(vm_id="a", vcpus=3, mem=6.0, level=LEVEL_2_1))
        snap = agent.describe()
        assert snap["num_vms"] == 1
        assert snap["allocated_cpus"] == 2
        assert snap["vnodes"][0]["level"] == "2:1"
        assert snap["vnodes"][0]["vms"] == ["a"]
