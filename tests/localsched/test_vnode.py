"""Unit tests for vNode accounting."""

import pytest

from repro.core import CapacityError, LEVEL_1_1, LEVEL_2_1, LEVEL_3_1, VMRequest, VMSpec
from repro.localsched import VNode


def vm(vm_id="vm", vcpus=2, mem=4.0, level=LEVEL_2_1):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level)


class TestSizing:
    def test_cpus_required_rounds_up(self):
        node = VNode("n", LEVEL_3_1)
        node.extend_cpus([0, 1])
        node.add_vm(vm(vcpus=4, level=LEVEL_3_1))
        assert node.cpus_required() == 2  # ceil(4/3)
        assert node.cpus_required(extra_vcpus=3) == 3  # ceil(7/3)

    def test_growth_for_uses_slack_first(self):
        node = VNode("n", LEVEL_2_1)
        node.extend_cpus([0, 1])
        node.add_vm(vm(vcpus=3))
        # Capacity 4 vCPUs, 3 used: a 1-vCPU VM fits with no growth.
        assert node.growth_for(vm(vm_id="b", vcpus=1)) == 0
        assert node.growth_for(vm(vm_id="c", vcpus=3)) == 1

    def test_empty_vnode_needs_zero_cpus(self):
        assert VNode("n", LEVEL_2_1).cpus_required() == 0


class TestAdmission:
    def test_add_updates_accounting(self):
        node = VNode("n", LEVEL_2_1)
        node.extend_cpus([0, 1])
        node.add_vm(vm(vcpus=3, mem=6.0))
        assert node.allocated_vcpus == 3
        assert node.allocated_mem == 6.0
        assert node.vcpu_slack == 1.0

    def test_add_beyond_capacity_rejected(self):
        node = VNode("n", LEVEL_2_1)
        node.extend_cpus([0])
        with pytest.raises(CapacityError):
            node.add_vm(vm(vcpus=3))

    def test_duplicate_vm_rejected(self):
        node = VNode("n", LEVEL_2_1)
        node.extend_cpus([0, 1])
        node.add_vm(vm(vm_id="a"))
        with pytest.raises(CapacityError):
            node.add_vm(vm(vm_id="a"))

    def test_stricter_vnode_hosts_looser_vm(self):
        # §V-B: a 2:1 vNode may host a VM sold at 3:1.
        node = VNode("n", LEVEL_2_1)
        node.extend_cpus([0])
        hosted = node.add_vm(vm(vcpus=2, level=LEVEL_3_1))
        assert hosted.sold_level == LEVEL_3_1

    def test_looser_vnode_rejects_stricter_vm(self):
        node = VNode("n", LEVEL_3_1)
        node.extend_cpus([0])
        with pytest.raises(CapacityError):
            node.add_vm(vm(vcpus=1, level=LEVEL_2_1))

    def test_allocation_vector_counts_owned_cpus(self):
        node = VNode("n", LEVEL_3_1)
        node.extend_cpus([0, 1])
        node.add_vm(vm(vcpus=5, mem=3.0, level=LEVEL_3_1))
        alloc = node.allocation()
        assert alloc.cpu == 2.0
        assert alloc.mem == 3.0


class TestRemoval:
    def test_remove_restores_accounting(self):
        node = VNode("n", LEVEL_2_1)
        node.extend_cpus([0, 1])
        node.add_vm(vm(vm_id="a", vcpus=2, mem=4.0))
        node.add_vm(vm(vm_id="b", vcpus=2, mem=2.0))
        node.remove_vm("a")
        assert node.allocated_vcpus == 2
        assert node.allocated_mem == 2.0
        assert node.hosts("b") and not node.hosts("a")

    def test_remove_unknown_vm_rejected(self):
        node = VNode("n", LEVEL_2_1)
        with pytest.raises(CapacityError):
            node.remove_vm("ghost")

    def test_empty_vnode_resets_memory_drift(self):
        node = VNode("n", LEVEL_2_1)
        node.extend_cpus([0])
        node.add_vm(vm(vcpus=1, mem=0.1 + 0.2))
        node.remove_vm("vm")
        assert node.allocated_mem == 0.0
        assert node.is_empty


class TestCpuSet:
    def test_extend_rejects_duplicates(self):
        node = VNode("n", LEVEL_2_1)
        node.extend_cpus([0, 1])
        with pytest.raises(CapacityError):
            node.extend_cpus([1, 2])

    def test_release_is_lifo(self):
        node = VNode("n", LEVEL_2_1)
        node.extend_cpus([5, 3, 8])
        assert node.release_cpus(2) == [3, 8]
        assert node.cpu_ids == (5,)

    def test_release_protecting_guarantee(self):
        node = VNode("n", LEVEL_2_1)
        node.extend_cpus([0, 1])
        node.add_vm(vm(vcpus=3))
        with pytest.raises(CapacityError):
            node.release_cpus(1)  # would leave 1 CPU for 3 vCPUs at 2:1
        assert node.cpu_ids == (0, 1)  # restored after failure

    def test_release_more_than_owned_rejected(self):
        node = VNode("n", LEVEL_2_1)
        node.extend_cpus([0])
        with pytest.raises(CapacityError):
            node.release_cpus(2)

    def test_release_zero_is_noop(self):
        node = VNode("n", LEVEL_2_1)
        node.extend_cpus([0])
        assert node.release_cpus(0) == []
