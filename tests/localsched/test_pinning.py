"""Tests for pinning plans and virtual topology export."""

import pytest

from repro.core import LEVEL_1_1, LEVEL_2_1, LEVEL_3_1, SlackVMConfig, TopologyError, VMRequest, VMSpec
from repro.hardware import EPYC_7662_DUAL, MachineSpec, epyc_7662_dual
from repro.localsched import (
    LocalScheduler,
    pinning_plan,
    shared_llc_violations,
    virtual_topology,
)


def vm(vm_id, vcpus=2, mem=4.0, level=LEVEL_2_1):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level)


@pytest.fixture
def agent():
    return LocalScheduler(EPYC_7662_DUAL, SlackVMConfig(), topology=epyc_7662_dual())


def test_all_vms_of_a_vnode_share_its_full_pinning(agent):
    agent.deploy(vm("a", vcpus=4))
    agent.deploy(vm("b", vcpus=2))
    plan = pinning_plan(agent)
    node = agent.vnode_for(LEVEL_2_1)
    assert plan.cpus_of("a") == node.cpu_ids
    assert plan.cpus_of("b") == node.cpu_ids


def test_pinning_extends_to_new_range_on_growth(agent):
    agent.deploy(vm("a", vcpus=4))
    before = pinning_plan(agent).cpus_of("a")
    agent.deploy(vm("b", vcpus=4))
    after = pinning_plan(agent).cpus_of("a")
    assert set(before) < set(after)


def test_virtual_topology_reports_smt_pairs(agent):
    agent.deploy(vm("a", vcpus=8))
    node = agent.vnode_for(LEVEL_2_1)
    vt = virtual_topology(node, agent.topology)
    assert vt.num_cpus == 4
    assert vt.num_physical_cores == 2
    assert vt.smt_pairs == 2
    assert vt.smt_active


def test_virtual_topology_of_empty_vnode():
    from repro.localsched import VNode

    vt = virtual_topology(VNode("n", LEVEL_2_1), epyc_7662_dual())
    assert vt.num_cpus == 0
    assert not vt.smt_active


def test_vnodes_do_not_share_llc(agent):
    for i in range(12):
        level = (LEVEL_1_1, LEVEL_2_1, LEVEL_3_1)[i % 3]
        agent.deploy(vm(f"vm-{i}", vcpus=2, level=level))
    assert shared_llc_violations(agent) == 0


def test_naive_allocation_shares_llc():
    agent = LocalScheduler(
        EPYC_7662_DUAL,
        SlackVMConfig(topology_aware=False),
        topology=epyc_7662_dual(),
    )
    for i in range(12):
        level = (LEVEL_1_1, LEVEL_2_1, LEVEL_3_1)[i % 3]
        agent.deploy(vm(f"vm-{i}", vcpus=2, level=level))
    assert shared_llc_violations(agent) > 0


def test_llc_violation_metric_requires_topology():
    agent = LocalScheduler(MachineSpec("pm", 8, 32.0), SlackVMConfig())
    with pytest.raises(TopologyError):
        shared_llc_violations(agent)


def test_pinning_generation_matches_agent(agent):
    agent.deploy(vm("a"))
    plan = pinning_plan(agent)
    assert plan.generation == agent.pin_generation
