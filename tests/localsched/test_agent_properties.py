"""Property tests of the local scheduler (object path).

The vectorized engine has its own invariant suite; these properties pin
the reference implementation independently, including topology mode.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import OversubscriptionLevel, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec, build_topology
from repro.localsched import LocalScheduler


@st.composite
def operations(draw):
    """A random interleaving of deploys and removes."""
    n = draw(st.integers(min_value=1, max_value=30))
    ops = []
    alive = []
    for i in range(n):
        if alive and draw(st.booleans()) and draw(st.booleans()):
            victim = draw(st.sampled_from(alive))
            alive.remove(victim)
            ops.append(("remove", victim))
        else:
            vm_id = f"vm-{i:03d}"
            ops.append(
                (
                    "deploy",
                    VMRequest(
                        vm_id=vm_id,
                        spec=VMSpec(
                            draw(st.sampled_from([1, 2, 3, 4, 8])),
                            float(draw(st.sampled_from([1, 2, 4, 8, 16]))),
                        ),
                        level=OversubscriptionLevel(
                            draw(st.sampled_from([1.0, 2.0, 3.0]))
                        ),
                    ),
                )
            )
            alive.append(vm_id)
    return ops


def check_agent_invariants(agent: LocalScheduler):
    assert 0 <= agent.allocated_cpus <= agent.machine.cpus
    assert -1e-9 <= agent.allocated_mem <= agent.machine.mem_gb + 1e-9
    total_cpus = 0
    seen_cpus: set[int] = set()
    for node in agent.vnodes:
        # Guarantee: exposed vCPUs never exceed ratio * owned CPUs.
        assert node.allocated_vcpus <= node.capacity_vcpus + 1e-9
        # Minimal sizing: never one CPU more than needed.
        assert node.num_cpus == node.cpus_required()
        # CPU sets are mutually exclusive.
        overlap = seen_cpus & set(node.cpu_ids)
        assert not overlap
        seen_cpus.update(node.cpu_ids)
        total_cpus += node.num_cpus
    assert total_cpus == agent.allocated_cpus


@settings(max_examples=80, deadline=None)
@given(ops=operations(), pooling=st.booleans())
def test_agent_invariants_accounting_mode(ops, pooling):
    agent = LocalScheduler(MachineSpec("pm", 16, 64.0), SlackVMConfig(pooling=pooling))
    _run_ops(agent, ops)


@settings(max_examples=40, deadline=None)
@given(ops=operations(), aware=st.booleans())
def test_agent_invariants_topology_mode(ops, aware):
    topo = build_topology(sockets=2, cores_per_socket=4, smt=2, llc_group=2)
    agent = LocalScheduler(
        MachineSpec("pm", 16, 64.0),
        SlackVMConfig(topology_aware=aware),
        topology=topo,
    )
    _run_ops(agent, ops)


def _run_ops(agent: LocalScheduler, ops):
    placed = set()
    for kind, payload in ops:
        if kind == "deploy":
            if agent.can_deploy(payload):
                agent.deploy(payload)
                placed.add(payload.vm_id)
        else:
            if payload in placed:
                agent.remove(payload)
                placed.discard(payload)
        check_agent_invariants(agent)
    # Drain everything: the agent must return to pristine state.
    for vm_id in list(placed):
        agent.remove(vm_id)
    assert agent.is_empty
    assert agent.allocated_cpus == 0
    assert agent.allocated_mem == 0.0
    assert agent.vnodes == ()


@settings(max_examples=40, deadline=None)
@given(ops=operations())
def test_plan_never_lies(ops):
    """If plan() returns a DeployPlan, deploy() must succeed."""
    agent = LocalScheduler(MachineSpec("pm", 16, 64.0), SlackVMConfig())
    for kind, payload in ops:
        if kind != "deploy":
            continue
        plan = agent.plan(payload)
        if plan is not None:
            placement = agent.deploy(payload)
            assert placement.pooled == plan.pooled
            assert placement.hosted_level.ratio == plan.hosted_ratio
