"""Tests for topology-driven CPU selection."""

import pytest

from repro.core import CapacityError, TopologyError
from repro.hardware import build_topology, epyc_7662_dual
from repro.localsched import CoreAllocator


@pytest.fixture
def epyc():
    return epyc_7662_dual()


class TestGrow:
    def test_grow_prefers_smt_siblings(self, epyc):
        alloc = CoreAllocator(epyc)
        alloc.pick_seed(1, occupied=())
        grown = alloc.pick_grow([0], 1)
        assert grown == [1]  # sibling of cpu 0

    def test_grow_stays_within_cache_groups(self, epyc):
        alloc = CoreAllocator(epyc)
        alloc.pick_seed(1, occupied=())
        cpus = [0] + alloc.pick_grow([0], 7)
        # 8 threads should span exactly 4 physical cores (one CCX).
        assert epyc.physical_cores_spanned(cpus) == 4
        llcs = {epyc.cpu(c).cache_ids[-1] for c in cpus}
        assert len(llcs) == 1

    def test_grow_zero_returns_empty(self, epyc):
        alloc = CoreAllocator(epyc)
        assert alloc.pick_grow([0], 0) == []

    def test_grow_negative_rejected(self, epyc):
        alloc = CoreAllocator(epyc)
        with pytest.raises(TopologyError):
            alloc.pick_grow([0], -1)

    def test_grow_beyond_free_rejected(self):
        topo = build_topology(sockets=1, cores_per_socket=2, smt=1)
        alloc = CoreAllocator(topo)
        alloc.pick_seed(2, occupied=())
        with pytest.raises(CapacityError):
            alloc.pick_grow([0], 1)

    def test_grow_avoids_other_vnodes_cache_groups(self, epyc):
        """Ties on anchor distance must spill into untouched CCXs rather
        than interleave with a neighbouring vNode."""
        alloc = CoreAllocator(epyc)
        a = alloc.pick_seed(8, occupied=())  # vNode A: one full CCX
        b = alloc.pick_seed(4, occupied=a)  # vNode B elsewhere
        # Grow A past its CCX: must not enter B's CCX.
        grown = alloc.pick_grow(a, 8)
        b_llcs = {epyc.cpu(c).cache_ids[-1] for c in b}
        grown_llcs = {epyc.cpu(c).cache_ids[-1] for c in grown}
        assert not (b_llcs & grown_llcs)

    def test_naive_mode_picks_index_order(self, epyc):
        alloc = CoreAllocator(epyc, topology_aware=False)
        assert alloc.pick_grow([99], 3) == [0, 1, 2]


class TestSeed:
    def test_seed_far_from_occupied(self, epyc):
        alloc = CoreAllocator(epyc)
        first = alloc.pick_seed(1, occupied=())
        second = alloc.pick_seed(1, occupied=first)
        # The second vNode must not share any cache level with the first.
        assert epyc.core_distance(first[0], second[0]) >= 40.0

    def test_seed_with_no_occupied_is_deterministic(self, epyc):
        assert CoreAllocator(epyc).pick_seed(1, occupied=()) == [0]

    def test_seed_multi_cpu_is_compact(self, epyc):
        alloc = CoreAllocator(epyc)
        cpus = alloc.pick_seed(4, occupied=())
        assert epyc.physical_cores_spanned(cpus) == 2

    def test_seed_zero_rejected(self, epyc):
        with pytest.raises(TopologyError):
            CoreAllocator(epyc).pick_seed(0, occupied=())

    def test_seed_beyond_capacity_rejected(self):
        topo = build_topology(sockets=1, cores_per_socket=2, smt=1)
        with pytest.raises(CapacityError):
            CoreAllocator(topo).pick_seed(3, occupied=())


class TestRelease:
    def test_release_returns_cpus_to_pool(self, epyc):
        alloc = CoreAllocator(epyc)
        cpus = alloc.pick_seed(4, occupied=())
        alloc.release(cpus)
        assert alloc.num_free == epyc.num_cpus

    def test_double_release_rejected(self, epyc):
        alloc = CoreAllocator(epyc)
        cpus = alloc.pick_seed(2, occupied=())
        alloc.release(cpus)
        with pytest.raises(CapacityError):
            alloc.release(cpus)

    def test_taking_non_free_rejected(self, epyc):
        alloc = CoreAllocator(epyc)
        alloc.pick_seed(1, occupied=())
        # cpu 0 is now taken; growing from a fully-free anchor cannot
        # return it.
        grown = alloc.pick_grow([2], 3)
        assert 0 not in grown
