"""Hypervisor-driver boundary tests (§IV/§V operation stream)."""

import pytest

from repro.core import LEVEL_1_1, LEVEL_2_1, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.localsched import LocalScheduler
from repro.localsched.drivers import NullDriver, RecordingDriver


def vm(vm_id, vcpus=2, mem=4.0, level=LEVEL_2_1):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level)


@pytest.fixture
def rig():
    driver = RecordingDriver()
    agent = LocalScheduler(MachineSpec("pm", 8, 32.0), SlackVMConfig(),
                           driver=driver)
    return agent, driver


def test_create_pins_to_vnode_cpus(rig):
    agent, driver = rig
    agent.deploy(vm("a", vcpus=4))
    node = agent.vnode_for(LEVEL_2_1)
    assert driver.pinning_of("a") == node.cpu_ids
    assert driver.actions("create")[0].vm_id == "a"


def test_growth_repins_existing_residents_first(rig):
    agent, driver = rig
    agent.deploy(vm("a", vcpus=4))  # 2 CPUs
    agent.deploy(vm("b", vcpus=4))  # grows to 4 CPUs
    # Order: repin 'a' to the extended range, then create 'b'.
    actions = [(op.action, op.vm_id) for op in driver.ops]
    assert actions == [("create", "a"), ("repin", "a"), ("create", "b")]
    node = agent.vnode_for(LEVEL_2_1)
    assert driver.pinning_of("a") == node.cpu_ids
    assert driver.pinning_of("b") == node.cpu_ids


def test_slack_reuse_issues_no_repin(rig):
    agent, driver = rig
    agent.deploy(vm("a", vcpus=3))  # 2 CPUs, 1 vCPU slack
    agent.deploy(vm("b", vcpus=1))  # fits in slack
    assert driver.actions("repin") == []


def test_departure_destroys_and_repins_survivors(rig):
    agent, driver = rig
    agent.deploy(vm("a", vcpus=4))
    agent.deploy(vm("b", vcpus=4))
    driver.ops.clear()
    agent.remove("a")  # vNode shrinks 4 -> 2 CPUs
    actions = [(op.action, op.vm_id) for op in driver.ops]
    assert actions == [("destroy", "a"), ("repin", "b")]
    node = agent.vnode_for(LEVEL_2_1)
    assert driver.pinning_of("b") == node.cpu_ids


def test_last_departure_only_destroys(rig):
    agent, driver = rig
    agent.deploy(vm("a"))
    driver.ops.clear()
    agent.remove("a")
    assert [(op.action, op.vm_id) for op in driver.ops] == [("destroy", "a")]


def test_levels_do_not_cross_repin(rig):
    agent, driver = rig
    agent.deploy(vm("prem", vcpus=2, level=LEVEL_1_1))
    driver.ops.clear()
    agent.deploy(vm("a", vcpus=4, level=LEVEL_2_1))
    # Growing the 2:1 vNode never touches the premium VM's pinning.
    assert all(op.vm_id != "prem" for op in driver.ops)


def test_null_driver_is_default():
    agent = LocalScheduler(MachineSpec("pm", 8, 32.0), SlackVMConfig())
    assert isinstance(agent.driver, NullDriver)
    agent.deploy(vm("a"))  # simply must not crash


def test_pinning_of_unknown_vm():
    with pytest.raises(KeyError):
        RecordingDriver().pinning_of("ghost")
