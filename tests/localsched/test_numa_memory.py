"""NUMA-local memory planning tests."""

import pytest

from repro.core import (
    CapacityError,
    LEVEL_1_1,
    LEVEL_2_1,
    SlackVMConfig,
    TopologyError,
    VMRequest,
    VMSpec,
)
from repro.hardware import MachineSpec, build_topology
from repro.localsched import LocalScheduler
from repro.localsched.numa_memory import NumaMemoryPlanner


def two_node_agent(mem=64.0):
    topo = build_topology(sockets=2, cores_per_socket=4, smt=1, llc_group=2)
    return LocalScheduler(
        MachineSpec("pm", 8, mem), SlackVMConfig(), topology=topo
    )


def vm(vm_id, vcpus=2, mem=8.0, level=LEVEL_1_1):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level)


def test_single_vnode_memory_is_local():
    agent = two_node_agent()
    agent.deploy(vm("a", vcpus=2, mem=16.0))
    planner = NumaMemoryPlanner(agent)
    plans = planner.plan()
    assert len(plans) == 1
    assert plans[0].locality == 1.0
    # All 16 GB on the node hosting the vNode's CPUs.
    assert max(plans[0].per_numa_gb) == 16.0


def test_vnodes_on_different_sockets_use_their_own_nodes():
    agent = two_node_agent()
    agent.deploy(vm("a", vcpus=2, mem=16.0, level=LEVEL_1_1))
    agent.deploy(vm("b", vcpus=2, mem=16.0, level=LEVEL_2_1))
    planner = NumaMemoryPlanner(agent)
    assert planner.locality_share() == 1.0
    plans = {p.node_id: p for p in planner.plan()}
    # The two vNodes reserve on different NUMA nodes (seeded far apart).
    used_nodes = [tuple(i for i, g in enumerate(p.per_numa_gb) if g > 0)
                  for p in plans.values()]
    assert used_nodes[0] != used_nodes[1]


def test_spill_to_remote_node_when_local_full():
    agent = two_node_agent(mem=64.0)  # 32 GB per node
    agent.deploy(vm("a", vcpus=2, mem=40.0))  # exceeds one node
    planner = NumaMemoryPlanner(agent)
    plan = planner.plan()[0]
    assert plan.local_gb == 32.0
    assert plan.remote_gb == pytest.approx(8.0)
    assert plan.locality == pytest.approx(32.0 / 40.0)


def test_locality_share_weights_by_memory():
    agent = two_node_agent(mem=64.0)
    agent.deploy(vm("a", vcpus=2, mem=40.0, level=LEVEL_1_1))  # 8 GB remote
    agent.deploy(vm("b", vcpus=2, mem=8.0, level=LEVEL_2_1))
    planner = NumaMemoryPlanner(agent)
    assert planner.locality_share() == pytest.approx(40.0 / 48.0)


def test_asymmetric_node_sizes():
    agent = two_node_agent(mem=64.0)
    agent.deploy(vm("a", vcpus=2, mem=20.0))
    planner = NumaMemoryPlanner(agent, node_mem_gb=[16.0, 48.0])
    plan = planner.plan()[0]
    assert plan.total_gb == pytest.approx(20.0)


def test_validation():
    agent = two_node_agent()
    with pytest.raises(TopologyError):
        NumaMemoryPlanner(agent, node_mem_gb=[64.0])
    with pytest.raises(TopologyError):
        NumaMemoryPlanner(agent, node_mem_gb=[10.0, 10.0])
    accounting_agent = LocalScheduler(MachineSpec("pm", 8, 64.0), SlackVMConfig())
    with pytest.raises(TopologyError):
        NumaMemoryPlanner(accounting_agent)


def test_empty_agent_is_fully_local():
    assert NumaMemoryPlanner(two_node_agent()).locality_share() == 1.0
