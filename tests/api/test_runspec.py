"""RunSpec: validation, round-trip, builders, run(), deprecation shims."""

import warnings

import pytest

from repro.api import (
    AUTO_SIZE_HEADROOM,
    RunSpec,
    build_config,
    build_machines,
    build_simulation,
    build_workload,
    run,
)
from repro.core.errors import ConfigError
from repro.sharding import ShardedSimulation
from repro.simulator import Simulation, result_stream
from repro.workload.distributions import DISTRIBUTIONS


class TestValidation:
    def test_defaults_are_valid(self):
        spec = RunSpec()
        assert spec.engine == "vector" and spec.shards == 1

    def test_mix_letter_normalizes_to_upper(self):
        assert RunSpec(mix="f").mix == "F"
        assert RunSpec(mix="f").mix_tuple == DISTRIBUTIONS["F"]
        assert RunSpec(mix="F").mix_label == "F"

    def test_mix_triple_normalizes_ints_to_floats(self):
        a = RunSpec(mix=(40, 30, 30))
        b = RunSpec(mix=(40.0, 30.0, 30.0))
        assert a.mix == b.mix == (40.0, 30.0, 30.0)
        assert a.fingerprint() == b.fingerprint()
        assert a.mix_label == "40,30,30"

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            (dict(mix="Z"), "unknown mix"),
            (dict(mix=(50.0, 50.0)), "3 shares"),
            (dict(provider="nope"), "unknown provider"),
            (dict(target_population=0), "target_population"),
            (dict(num_hosts=-1), "num_hosts"),
            (dict(host_cpus=0), "positive"),
            (dict(policy="nope"), "unknown policy"),
            (dict(kernel="nope"), "unknown kernel"),
            (dict(engine="nope"), "unknown engine"),
            (dict(oversub="nope"), "unknown oversub"),
            (dict(oversub_update_every=0.0), "update_every"),
            (dict(shards=0), "at least one shard"),
            (dict(router="nope"), "unknown router"),
            (dict(workers=-1), "workers"),
            (dict(num_hosts=2, shards=4), "cannot split"),
            (dict(engine="object", shards=2), "object engine"),
            (dict(shards=2, fail_fast=True), "fail_fast"),
            (dict(shards=2, oversub="percentile"), "oversubscription"),
        ],
    )
    def test_bad_knobs_fail_at_construction(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            RunSpec(**kwargs)


class TestSerialization:
    def test_round_trips_through_dict(self):
        spec = RunSpec(
            provider="ovhcloud", mix=(40, 30, 30), target_population=80,
            seed=9, num_hosts=8, policy="best_fit", kernel="pruned",
            shards=2, workers=2,
        )
        data = spec.to_dict()
        assert data["version"] == 1
        assert data["mix"] == [40.0, 30.0, 30.0]  # JSON-primitive form
        clone = RunSpec.from_dict(data)
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_fingerprint_keys_every_field(self):
        base = RunSpec()
        assert base.fingerprint() != base.replace(seed=1).fingerprint()
        assert base.fingerprint() != base.replace(kernel="pruned").fingerprint()
        assert base.fingerprint() == RunSpec().fingerprint()

    def test_from_dict_refuses_unknown_fields_and_versions(self):
        with pytest.raises(ConfigError, match="unknown RunSpec fields"):
            RunSpec.from_dict({"seeed": 3})
        with pytest.raises(ConfigError, match="version 99"):
            RunSpec.from_dict({"version": 99})

    def test_replace_revalidates(self):
        spec = RunSpec(num_hosts=8)
        with pytest.raises(ConfigError, match="cannot split"):
            spec.replace(shards=16)


class TestBuilders:
    def test_workload_is_pure_in_the_spec(self):
        spec = RunSpec(target_population=50, seed=4)
        one, two = build_workload(spec), build_workload(spec)
        assert [vm.vm_id for vm in one] == [vm.vm_id for vm in two]
        assert len(one) > 0

    def test_machines_honor_explicit_count(self):
        machines = build_machines(RunSpec(num_hosts=7))
        assert len(machines) == 7
        assert machines[0].cpus == 32 and machines[0].mem_gb == 128.0

    def test_auto_size_floors_at_the_shard_count(self):
        # A tiny workload demands fewer hosts than the shard count;
        # the floor keeps every shard non-empty.
        spec = RunSpec(target_population=2, shards=8, seed=1)
        assert len(build_machines(spec)) >= 8

    def test_auto_size_applies_headroom(self):
        assert AUTO_SIZE_HEADROOM > 1.0
        spec = RunSpec(target_population=60, seed=2)
        sized = len(build_machines(spec))
        assert sized >= 1

    def test_config_carries_trace_levels_and_pooling(self):
        spec = RunSpec(mix=(40, 30, 30), target_population=60, pooling=False)
        cfg = build_config(spec)
        assert cfg.pooling is False
        assert {lvl.ratio for lvl in cfg.levels} <= {1.0, 2.0, 3.0}

    def test_vector_engine_always_builds_the_dispatcher(self):
        spec = RunSpec(num_hosts=4)
        sim = build_simulation(spec, build_machines(spec))
        assert isinstance(sim, ShardedSimulation)

    def test_object_engine_builds_the_reference_simulation(self):
        spec = RunSpec(engine="object", num_hosts=4)
        sim = build_simulation(spec, build_machines(spec))
        assert isinstance(sim, Simulation)

    def test_object_engine_rejects_heterogeneous_fleets(self):
        from repro.hardware import MachineSpec

        spec = RunSpec(engine="object", num_hosts=2)
        machines = [MachineSpec("a", 16, 64.0), MachineSpec("b", 32, 128.0)]
        with pytest.raises(ConfigError, match="homogeneous"):
            build_simulation(spec, machines)


class TestRun:
    def test_run_is_seed_reproducible(self):
        spec = RunSpec(target_population=40, num_hosts=6, seed=11)
        assert result_stream(run(spec)) == result_stream(run(spec))

    def test_run_accounting_closes(self):
        spec = RunSpec(target_population=40, num_hosts=6, seed=11)
        wl = build_workload(spec)
        result = run(spec)
        assert len(result.placements) + len(result.rejections) == len(wl)

    def test_sharded_spec_runs_end_to_end(self):
        spec = RunSpec(
            target_population=40, num_hosts=6, seed=11, shards=2, workers=1
        )
        result = run(spec)
        wl = build_workload(spec)
        assert len(result.placements) + len(result.rejections) == len(wl)

    def test_run_accepts_an_override_workload(self):
        spec = RunSpec(target_population=40, num_hosts=6, seed=11)
        wl = build_workload(spec)[:10]
        result = run(spec, workload=wl)
        assert len(result.placements) + len(result.rejections) == 10


class TestDeprecationShims:
    def test_evaluate_distribution_warns_and_matches_the_new_api(self):
        from repro.analysis import evaluate_distribution
        from repro.api import evaluate
        from repro.workload.catalog import OVHCLOUD

        with pytest.warns(DeprecationWarning, match="repro.api.RunSpec"):
            old = evaluate_distribution(
                OVHCLOUD, "F", target_population=60, seed=42
            )
        spec = RunSpec(provider="ovhcloud", mix="F", target_population=60, seed=42)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            new = evaluate(spec)
        assert new == old
