"""Unit tests for the ``repro bench engine`` harness (`repro.bench`)."""

import pytest

from repro.bench import (
    EngineBenchSpec,
    compare_engine_bench,
    crossover_report,
    run_engine_bench,
)
from repro.bench.engine import SCHEMA, BenchError


@pytest.fixture(scope="module")
def payload():
    # Tiny grid: enough to exercise generation, all three kernels, the
    # per-cell verification and the payload shape.
    spec = EngineBenchSpec(
        hosts=(12,), policies=("progress", "first_fit"), vms_per_host=2.0,
        host_cpus=16, host_mem_gb=64.0, warmup_vms=5,
    )
    return run_engine_bench(spec)


def test_payload_shape(payload):
    assert payload["schema"] == SCHEMA
    assert len(payload["cells"]) == 2
    for cell in payload["cells"]:
        assert cell["verified"]
        assert cell["num_events"] > 0
        assert cell["tier"] == "standard"
        assert set(cell["kernels"]) == {"incremental", "naive", "pruned"}
        for arm in cell["kernels"].values():
            assert arm["wall_s"] > 0
            assert arm["events_per_s"] > 0
            assert arm["select_mean_us"] >= 0
            assert arm["select_ops_per_s"] >= 0
            assert arm["peak_rss_mb"] > 0
        assert set(cell["speedups"]) == {"incremental", "pruned"}
        for kernel, ratio in cell["speedups"].items():
            assert ratio == pytest.approx(
                cell["kernels"]["naive"]["wall_s"]
                / cell["kernels"][kernel]["wall_s"]
            )
        # Legacy schema-1 column: the incremental-vs-naive ratio.
        assert cell["speedup"] == cell["speedups"]["incremental"]
        assert cell["shards"] == 1
    head = payload["headline"]
    assert head["policy"] in ("progress", "first_fit")
    assert head["num_hosts"] == 12
    assert set(head["speedups"]) == {"incremental", "pruned"}
    assert payload["environment"]["cpus"] >= 1


def test_headline_prefers_progress_at_largest_size(payload):
    assert payload["headline"]["policy"] == "progress"


def test_scale_tier_cells():
    spec = EngineBenchSpec(
        hosts=(8,), policies=("first_fit",), vms_per_host=2.0, warmup_vms=0,
        scale_hosts=(16,), scale_policies=("first_fit",),
        scale_vms_per_host=1.0, scale_warmup_vms=0,
    )
    payload = run_engine_bench(spec)
    tiers = {(c["num_hosts"], c["tier"]) for c in payload["cells"]}
    assert tiers == {(8, "standard"), (16, "scale")}
    assert payload["grid"]["scale_hosts"] == [16]
    assert payload["grid"]["scale_policies"] == ["first_fit"]


def test_shard_tier_cells():
    spec = EngineBenchSpec(
        hosts=(8,), policies=("first_fit",), vms_per_host=2.0, warmup_vms=0,
        shard_hosts=(16,), shard_counts=(2,), shard_policies=("progress",),
        shard_vms_per_host=1.0, shard_warmup_vms=0,
    )
    payload = run_engine_bench(spec)
    shard_cells = [c for c in payload["cells"] if c["tier"] == "shard"]
    assert len(shard_cells) == 1
    cell = shard_cells[0]
    assert cell["num_hosts"] == 16 and cell["shards"] == 2
    assert cell["verified"]
    assert set(cell["kernels"]) == {"serial", "sharded", "inline"}
    assert cell["kernels"]["inline"]["critical_path_s"] > 0
    assert set(cell["speedups"]) == {"sharded", "critical_path"}
    assert cell["speedups"]["critical_path"] == pytest.approx(
        cell["kernels"]["serial"]["wall_s"]
        / cell["kernels"]["inline"]["critical_path_s"]
    )
    # The shard tier never leaks into the kernel-comparison headline.
    assert payload["headline"]["num_hosts"] == 8
    head = payload["shard_headline"]
    assert head["num_hosts"] == 16 and head["shards"] == 2
    assert payload["grid"]["shard_hosts"] == [16]
    assert payload["grid"]["shard_counts"] == [2]


def test_shard_spec_validation():
    with pytest.raises(BenchError):
        EngineBenchSpec(shard_counts=(1,))
    with pytest.raises(BenchError):
        EngineBenchSpec(shard_hosts=(0,))
    with pytest.raises(BenchError):
        EngineBenchSpec(shard_policies=("nope",))


def test_progress_callback_gets_one_line_per_cell():
    lines = []
    spec = EngineBenchSpec(hosts=(8,), policies=("first_fit",),
                           vms_per_host=2.0, warmup_vms=0)
    run_engine_bench(spec, progress=lines.append)
    assert len(lines) == 1
    assert "first_fit" in lines[0]


def test_spec_validation():
    with pytest.raises(BenchError):
        EngineBenchSpec(policies=("nope",))
    with pytest.raises(BenchError):
        EngineBenchSpec(scale_policies=("nope",))
    with pytest.raises(BenchError):
        EngineBenchSpec(provider="nope")
    with pytest.raises(BenchError):
        EngineBenchSpec(hosts=())
    with pytest.raises(BenchError):
        EngineBenchSpec(hosts=(0,))
    with pytest.raises(BenchError):
        EngineBenchSpec(scale_hosts=(0,))


def _fake(cells):
    return {
        "schema": SCHEMA,
        "cells": [
            {
                "num_hosts": n,
                "policy": p,
                "speedup": s["incremental"],
                "speedups": dict(s),
            }
            for n, p, s in cells
        ],
    }


def test_compare_passes_within_tolerance():
    baseline = _fake([(500, "progress", {"incremental": 3.0, "pruned": 4.0})])
    current = _fake([(500, "progress", {"incremental": 1.6, "pruned": 2.1})])
    assert compare_engine_bench(current, baseline, tolerance=0.5) == []


def test_compare_flags_regression_per_kernel():
    baseline = _fake([(500, "progress", {"incremental": 3.0, "pruned": 4.0})])
    current = _fake([(500, "progress", {"incremental": 2.9, "pruned": 1.4})])
    problems = compare_engine_bench(current, baseline, tolerance=0.5)
    assert len(problems) == 1
    assert "kernel=pruned" in problems[0]
    assert "progress" in problems[0]


def test_compare_marks_known_crossover_cells():
    baseline = _fake([(500, "first_fit", {"incremental": 0.95, "pruned": 1.2})])
    current = _fake([(500, "first_fit", {"incremental": 0.40, "pruned": 1.2})])
    problems = compare_engine_bench(current, baseline, tolerance=0.5)
    assert len(problems) == 1
    assert "known crossover cell" in problems[0]


def test_compare_ignores_cells_missing_from_baseline():
    ok = {"incremental": 3.0, "pruned": 3.0}
    baseline = _fake([(500, "progress", ok)])
    current = _fake([(500, "progress", ok), (9999, "best_fit", {"incremental": 0.1, "pruned": 0.1})])
    assert compare_engine_bench(current, baseline) == []


def test_compare_requires_at_least_one_matching_cell():
    baseline = _fake([(500, "progress", {"incremental": 3.0, "pruned": 3.0})])
    current = _fake([(123, "worst_fit", {"incremental": 5.0, "pruned": 5.0})])
    problems = compare_engine_bench(current, baseline)
    assert len(problems) == 1
    assert "no benchmark cell matches" in problems[0]


def test_compare_rejects_schema_mismatch_and_bad_tolerance():
    good = _fake([(500, "progress", {"incremental": 3.0, "pruned": 3.0})])
    with pytest.raises(BenchError):
        compare_engine_bench({"schema": 999, "cells": []}, good)
    with pytest.raises(BenchError):
        compare_engine_bench(good, good, tolerance=1.5)


def test_compare_keys_cells_by_shard_count():
    # A 4-shard cell and a 1-shard cell at the same (hosts, policy)
    # are distinct comparison keys — a shard regression can't hide
    # behind a healthy serial cell.
    def cell(shards, speedups):
        return {
            "num_hosts": 500, "policy": "progress", "shards": shards,
            "speedup": speedups.get("incremental", 1.0),
            "speedups": dict(speedups),
        }

    baseline = {"schema": SCHEMA, "cells": [
        cell(1, {"incremental": 3.0, "pruned": 3.0}),
        cell(4, {"sharded": 0.8, "critical_path": 3.0}),
    ]}
    current = {"schema": SCHEMA, "cells": [
        cell(1, {"incremental": 3.0, "pruned": 3.0}),
        cell(4, {"sharded": 0.8, "critical_path": 1.0}),
    ]}
    problems = compare_engine_bench(current, baseline, tolerance=0.5)
    assert len(problems) == 1
    assert "critical_path" in problems[0]


def test_crossover_report_lists_sub_1x_cells_only():
    payload = _fake([
        (500, "first_fit", {"incremental": 0.97, "pruned": 1.3}),
        (5000, "progress", {"incremental": 3.0, "pruned": 5.0}),
    ])
    lines = crossover_report(payload)
    assert len(lines) == 1
    assert "first_fit" in lines[0] and "incremental" in lines[0]
    assert "crossover" in lines[0]
