"""Unit tests for the ``repro bench engine`` harness (`repro.bench`)."""

import pytest

from repro.bench import EngineBenchSpec, compare_engine_bench, run_engine_bench
from repro.bench.engine import SCHEMA, BenchError


@pytest.fixture(scope="module")
def payload():
    # Tiny grid: enough to exercise generation, both kernels, the
    # per-cell verification and the payload shape.
    spec = EngineBenchSpec(
        hosts=(12,), policies=("progress", "first_fit"), vms_per_host=2.0,
        host_cpus=16, host_mem_gb=64.0, warmup_vms=5,
    )
    return run_engine_bench(spec)


def test_payload_shape(payload):
    assert payload["schema"] == SCHEMA
    assert len(payload["cells"]) == 2
    for cell in payload["cells"]:
        assert cell["verified"]
        assert cell["num_events"] > 0
        assert set(cell["kernels"]) == {"incremental", "naive"}
        for arm in cell["kernels"].values():
            assert arm["wall_s"] > 0
            assert arm["events_per_s"] > 0
            assert arm["select_mean_us"] >= 0
            assert arm["select_ops_per_s"] >= 0
        assert cell["speedup"] == pytest.approx(
            cell["kernels"]["naive"]["wall_s"]
            / cell["kernels"]["incremental"]["wall_s"]
        )
    head = payload["headline"]
    assert head["policy"] in ("progress", "first_fit")
    assert head["num_hosts"] == 12


def test_headline_prefers_progress_at_largest_size(payload):
    assert payload["headline"]["policy"] == "progress"


def test_progress_callback_gets_one_line_per_cell():
    lines = []
    spec = EngineBenchSpec(hosts=(8,), policies=("first_fit",),
                           vms_per_host=2.0, warmup_vms=0)
    run_engine_bench(spec, progress=lines.append)
    assert len(lines) == 1
    assert "first_fit" in lines[0]


def test_spec_validation():
    with pytest.raises(BenchError):
        EngineBenchSpec(policies=("nope",))
    with pytest.raises(BenchError):
        EngineBenchSpec(provider="nope")
    with pytest.raises(BenchError):
        EngineBenchSpec(hosts=())
    with pytest.raises(BenchError):
        EngineBenchSpec(hosts=(0,))


def _fake(cells):
    return {
        "schema": SCHEMA,
        "cells": [
            {"num_hosts": n, "policy": p, "speedup": s} for n, p, s in cells
        ],
    }


def test_compare_passes_within_tolerance():
    baseline = _fake([(500, "progress", 3.0)])
    current = _fake([(500, "progress", 1.6)])
    assert compare_engine_bench(current, baseline, tolerance=0.5) == []


def test_compare_flags_regression():
    baseline = _fake([(500, "progress", 3.0)])
    current = _fake([(500, "progress", 1.4)])
    problems = compare_engine_bench(current, baseline, tolerance=0.5)
    assert len(problems) == 1
    assert "progress" in problems[0]


def test_compare_ignores_cells_missing_from_baseline():
    baseline = _fake([(500, "progress", 3.0)])
    current = _fake([(500, "progress", 3.0), (9999, "best_fit", 0.1)])
    assert compare_engine_bench(current, baseline) == []


def test_compare_requires_at_least_one_matching_cell():
    baseline = _fake([(500, "progress", 3.0)])
    current = _fake([(123, "worst_fit", 5.0)])
    problems = compare_engine_bench(current, baseline)
    assert len(problems) == 1
    assert "no benchmark cell matches" in problems[0]


def test_compare_rejects_schema_mismatch_and_bad_tolerance():
    good = _fake([(500, "progress", 3.0)])
    with pytest.raises(BenchError):
        compare_engine_bench({"schema": 999, "cells": []}, good)
    with pytest.raises(BenchError):
        compare_engine_bench(good, good, tolerance=1.5)
