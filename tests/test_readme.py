"""The README's quickstart snippet must stay runnable."""

import re
from pathlib import Path

README = Path(__file__).parent.parent / "README.md"


def _python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_a_python_quickstart():
    blocks = _python_blocks(README.read_text(encoding="utf-8"))
    assert blocks, "README lost its quickstart code block"


def test_quickstart_block_executes():
    block = _python_blocks(README.read_text(encoding="utf-8"))[0]
    # Downscale the population so the doc test stays fast, keeping the
    # code path identical.
    block = block.replace('mix="F", seed=42', 'mix="F", seed=42, target_population=100')
    namespace: dict = {}
    exec(compile(block, "<README quickstart>", "exec"), namespace)  # noqa: S102
    outcome = namespace["outcome"]
    assert outcome.slackvm_pms >= 1
    assert outcome.baseline_pms >= outcome.slackvm_pms
