"""Property-based tests (hypothesis) for the runner's foundations.

Two contracts the parallel runner leans on:

* workload generation is a *pure function* of ``(WorkloadParams,
  seed)`` — same seed, same trace, bit for bit; distinct spawned seeds
  give independent traces (this is what makes sharding safe);
* ``minimal_cluster`` is monotone over workload prefixes — a time
  prefix of a trace never needs more PMs than the full trace (events
  up to the k-th arrival are identical in both simulations, so any
  cluster hosting the full trace hosts the prefix).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hardware.machine import SIM_WORKER as _MACHINE
from repro.runner import derive_seeds
from repro.simulator.sizing import minimal_cluster
from repro.workload import OVHCLOUD
from repro.workload.generator import WorkloadParams, generate_workload

SETTINGS = settings(max_examples=15, deadline=None)

seeds = st.integers(min_value=0, max_value=2**63 - 1)
populations = st.integers(min_value=5, max_value=40)
mixes = st.sampled_from([(100.0, 0.0, 0.0), (50.0, 0.0, 50.0),
                         (25.0, 50.0, 25.0), (0.0, 0.0, 100.0)])


def _params(population: int, mix, seed) -> WorkloadParams:
    return WorkloadParams(
        catalog=OVHCLOUD,
        level_mix=mix,
        target_population=population,
        seed=seed,
    )


@SETTINGS
@given(seed=seeds, population=populations, mix=mixes)
def test_generation_is_pure_in_seed(seed, population, mix):
    first = generate_workload(_params(population, mix, seed))
    second = generate_workload(_params(population, mix, seed))
    assert first == second


@SETTINGS
@given(root=seeds, population=populations)
def test_spawned_seeds_give_independent_traces(root, population):
    mix = (50.0, 0.0, 50.0)
    a_seed, b_seed = derive_seeds(root, 2)
    a = generate_workload(_params(population, mix, a_seed))
    b = generate_workload(_params(population, mix, b_seed))
    # Distinct spawned streams: the traces must differ (same-length
    # collisions of every arrival timestamp are probability ~0).
    assert [vm.arrival for vm in a] != [vm.arrival for vm in b]
    # And each is still a pure function of its own seed.
    assert a == generate_workload(_params(population, mix, a_seed))


@SETTINGS
@given(root=seeds)
def test_seedsequence_accepted_directly(root):
    # WorkloadParams.seed also takes a SeedSequence (runner plumbing);
    # equal entropy means equal trace.
    params_a = _params(10, (100.0, 0.0, 0.0), np.random.SeedSequence(root))
    params_b = _params(10, (100.0, 0.0, 0.0), np.random.SeedSequence(root))
    assert generate_workload(params_a) == generate_workload(params_b)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    population=st.integers(min_value=5, max_value=25),
    prefix_share=st.floats(min_value=0.1, max_value=0.9),
)
def test_minimal_cluster_monotone_over_prefixes(seed, population, prefix_share):
    workload = generate_workload(_params(population, (50.0, 0.0, 50.0), seed))
    k = max(1, int(len(workload) * prefix_share))
    prefix = workload[:k]  # traces are arrival-ordered
    full = minimal_cluster(workload, machine=_MACHINE, policy="first_fit")
    part = minimal_cluster(prefix, machine=_MACHINE, policy="first_fit")
    assert part.pms <= full.pms
