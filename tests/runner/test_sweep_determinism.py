"""Differential tests: serial vs parallel sweeps are bit-identical.

The runner's core contract — cell results are a pure function of the
spec, for any worker count and completion order — is asserted at the
strongest level available: byte equality of the sorted checkpoint
lines, and object equality of the figure-driver outputs against their
legacy serial counterparts.
"""

from pathlib import Path

from repro.analysis import fig3_series, fig4_grid
from repro.obs.metrics import MetricsRegistry
from repro.runner import (
    SweepSpec,
    parallel_fig3_series,
    parallel_fig4_grid,
    run_sweep,
)
from repro.workload import OVHCLOUD

SPEC = SweepSpec(
    providers=("ovhcloud",),
    mixes=("A", "F", "O"),
    seeds=(42, 7),
    target_population=40,
)


def _sorted_lines(path: Path) -> list[str]:
    return sorted(path.read_text(encoding="utf-8").splitlines())


def test_serial_vs_parallel_checkpoints_byte_identical(tmp_path):
    serial = run_sweep(SPEC, workers=1, out=str(tmp_path / "serial.jsonl"))
    parallel = run_sweep(SPEC, workers=4, out=str(tmp_path / "parallel.jsonl"))
    assert serial.ok and parallel.ok
    assert len(serial.results) == len(parallel.results) == 6
    assert _sorted_lines(tmp_path / "serial.jsonl") == _sorted_lines(
        tmp_path / "parallel.jsonl"
    )
    # Object-level equality too (JSON round-trip is lossless).
    assert serial.results == parallel.results


def test_parallel_fig3_matches_serial_driver():
    mixes = {"A": (100.0, 0.0, 0.0), "F": (50.0, 0.0, 50.0)}
    serial = fig3_series(OVHCLOUD, target_population=40, seed=42, mixes=mixes)
    parallel = parallel_fig3_series(
        OVHCLOUD, target_population=40, seed=42, mixes=mixes, workers=2
    )
    assert parallel == serial


def test_parallel_fig4_matches_serial_driver():
    mixes = {"A": (100.0, 0.0, 0.0), "F": (50.0, 0.0, 50.0)}
    serial = fig4_grid(
        OVHCLOUD, target_population=40, seeds=(42, 7), mixes=mixes
    )
    parallel = parallel_fig4_grid(
        OVHCLOUD, target_population=40, seeds=(42, 7), mixes=mixes, workers=2
    )
    assert parallel == serial


def test_workers_kwarg_on_legacy_drivers_delegates():
    mixes = {"F": (50.0, 0.0, 50.0)}
    assert fig3_series(
        OVHCLOUD, target_population=40, seed=1, mixes=mixes, workers=2
    ) == fig3_series(OVHCLOUD, target_population=40, seed=1, mixes=mixes)


def test_runner_metrics_progress_and_throughput(tmp_path):
    metrics = MetricsRegistry()
    lines: list[str] = []
    result = run_sweep(SPEC, workers=1, metrics=metrics, progress=lines.append)
    assert result.ok
    snap = metrics.to_dict()
    assert snap["runner.cells_total"]["value"] == 6
    assert snap["runner.cells_done"]["value"] == 6
    assert "runner.cells_failed" not in snap
    assert snap["runner.cell_seconds"]["count"] == 6
    assert snap["runner.throughput_cells_per_s"]["value"] > 0
    assert snap["runner.sweep_wall"]["count"] == 1
    assert len(lines) == 6
    assert "[6/6]" in lines[-1] and "-> ok" in lines[-1]
