"""Sweep spec: seed derivation, cell enumeration, serialization."""

import pytest

from repro.core.errors import RunnerError
from repro.runner import SweepSpec, derive_seeds
from repro.runner.spec import resolve_mix_entry, seeds_from_arg
from repro.workload.distributions import DISTRIBUTIONS


def test_derive_seeds_deterministic_and_distinct():
    a = derive_seeds(123, 8)
    b = derive_seeds(123, 8)
    assert a == b
    assert len(set(a)) == 8
    # A prefix of a longer spawn is the same seeds (stable extension).
    assert derive_seeds(123, 3) == a[:3]
    # A different root derives disjoint seeds.
    assert not set(a) & set(derive_seeds(124, 8))


def test_derive_seeds_rejects_negative_count():
    with pytest.raises(RunnerError):
        derive_seeds(0, -1)


def test_resolve_mix_entry_forms():
    assert resolve_mix_entry("F") == ("F", DISTRIBUTIONS["F"])
    assert resolve_mix_entry("f") == ("F", DISTRIBUTIONS["F"])
    assert resolve_mix_entry("50,0,50") == ("50,0,50", (50.0, 0.0, 50.0))
    assert resolve_mix_entry("hot:10,20,70") == ("hot", (10.0, 20.0, 70.0))
    with pytest.raises(RunnerError):
        resolve_mix_entry("not-a-mix")
    with pytest.raises(RunnerError):
        resolve_mix_entry(":50,0,50")


def test_cells_enumeration_order_and_keys():
    spec = SweepSpec(
        providers=("ovhcloud", "azure"),
        mixes=("A", "F"),
        seeds=(1, 2),
        target_population=50,
    )
    cells = spec.cells()
    assert len(cells) == len(spec) == 8
    assert [c.index for c in cells] == list(range(8))
    assert cells[0].key == "ovhcloud/A/1"
    assert cells[-1].key == "azure/F/2"
    keys = [c.key for c in cells]
    assert len(set(keys)) == len(keys)
    # Enumeration is stable across calls.
    assert [c.key for c in spec.cells()] == keys


def test_derived_seed_mode_matches_explicit():
    derived = SweepSpec(mixes=("A",), root_seed=9, num_seeds=3,
                        target_population=50)
    explicit = SweepSpec(mixes=("A",), seeds=derive_seeds(9, 3),
                         target_population=50)
    assert derived.effective_seeds() == explicit.effective_seeds()
    assert [c.key for c in derived.cells()] == [c.key for c in explicit.cells()]


def test_spec_roundtrip_and_fingerprint():
    spec = SweepSpec(
        providers=("azure",),
        mixes=("A", "hot:50,0,50"),
        root_seed=7,
        num_seeds=2,
        target_population=80,
        policy="first_fit",
        pooling=False,
        machine_cpus=16,
        machine_mem_gb=64.0,
    )
    clone = SweepSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.fingerprint() == spec.fingerprint()
    other = SweepSpec.from_dict({**spec.to_dict(), "root_seed": 8})
    assert other.fingerprint() != spec.fingerprint()


def test_spec_validation():
    with pytest.raises(RunnerError):
        SweepSpec(providers=())
    with pytest.raises(RunnerError):
        SweepSpec(mixes=())
    with pytest.raises(RunnerError):
        SweepSpec(num_seeds=0)
    with pytest.raises(RunnerError):
        SweepSpec(seeds=())
    with pytest.raises(RunnerError):
        SweepSpec(target_population=0)
    with pytest.raises(RunnerError):
        SweepSpec(mixes=("A", "a"))  # duplicate label after normalization
    with pytest.raises(RunnerError):
        SweepSpec(machine_cpus=0)


def test_seeds_from_arg():
    assert seeds_from_arg("42,7") == (42, 7)
    assert seeds_from_arg([1, 2]) == (1, 2)
    with pytest.raises(RunnerError):
        seeds_from_arg("42,x")
