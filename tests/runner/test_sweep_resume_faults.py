"""Checkpoint resume and worker-side fault capture."""

import json
from pathlib import Path

import pytest

from repro.core.errors import RunnerError
from repro.runner import SweepCheckpoint, SweepSpec, run_sweep
from repro.runner.runner import _cell_payload, _run_cell

SPEC = SweepSpec(
    providers=("ovhcloud",),
    mixes=("A", "C", "F", "O"),
    seeds=(5,),
    target_population=40,
)


def _truncate_after(path: Path, n_cells: int) -> list[str]:
    """Keep the header plus the first ``n_cells`` records; return kept keys."""
    lines = path.read_text(encoding="utf-8").splitlines()
    kept = lines[: 1 + n_cells]
    path.write_text("\n".join(kept) + "\n", encoding="utf-8")
    return [json.loads(line)["key"] for line in kept[1:]]


def test_resume_runs_only_missing_cells(tmp_path):
    out = tmp_path / "sweep.jsonl"
    full = run_sweep(SPEC, workers=1, out=str(out))
    assert full.ok and len(full.executed) == 4

    # Simulate a sweep killed after two cells.
    kept = _truncate_after(out, 2)
    resumed = run_sweep(SPEC, workers=2, out=str(out), resume=True)
    assert resumed.ok
    assert sorted(resumed.skipped) == sorted(kept)
    assert sorted(resumed.executed) == sorted(
        set(r.key for r in full.results.values()) - set(kept)
    )
    # The resumed result set equals the uninterrupted one.
    assert resumed.results == full.results
    # And the checkpoint now satisfies a second resume completely.
    again = run_sweep(SPEC, workers=1, out=str(out), resume=True)
    assert again.executed == () and len(again.skipped) == 4


def test_resume_tolerates_torn_last_line(tmp_path):
    out = tmp_path / "sweep.jsonl"
    full = run_sweep(SPEC, workers=1, out=str(out))
    text = out.read_text(encoding="utf-8").splitlines()
    # A kill mid-write leaves a truncated record on the last line.
    out.write_text("\n".join(text[:2]) + '\n{"kind": "cell", "pro',
                   encoding="utf-8")
    resumed = run_sweep(SPEC, workers=1, out=str(out), resume=True)
    assert resumed.ok
    assert len(resumed.skipped) == 1 and len(resumed.executed) == 3
    assert resumed.results == full.results


def test_resume_refuses_foreign_checkpoint(tmp_path):
    out = tmp_path / "sweep.jsonl"
    run_sweep(SPEC, workers=1, out=str(out))
    other = SweepSpec(
        providers=("ovhcloud",), mixes=("A",), seeds=(6,), target_population=40
    )
    with pytest.raises(RunnerError, match="different sweep spec"):
        run_sweep(other, workers=1, out=str(out), resume=True)


def test_resume_requires_checkpoint_path():
    with pytest.raises(RunnerError, match="requires a checkpoint path"):
        run_sweep(SPEC, resume=True)


def test_failed_cell_is_recorded_and_siblings_complete(tmp_path):
    # An unknown provider fails at worker-side catalog resolution; the
    # sibling provider's cells must still complete.
    spec = SweepSpec(
        providers=("ovhcloud", "nosuch"),
        mixes=("F",),
        seeds=(5,),
        target_population=40,
    )
    out = tmp_path / "faulty.jsonl"
    result = run_sweep(spec, workers=2, out=str(out))
    assert not result.ok
    ok = result.results["ovhcloud/F/5"]
    failed = result.results["nosuch/F/5"]
    assert ok.ok and ok.outcome is not None
    assert failed.status == "failed" and failed.outcome is None
    # RunSpec parsing happens inside the worker's fault capture, so a
    # bad knob is a failed record (ConfigError), not a crashed sweep.
    assert failed.error["type"] == "ConfigError"
    assert "unknown provider" in failed.error["message"]
    assert "Traceback" in failed.error["traceback"]
    assert failed.seed == 5  # the seed needed to replay the failure
    with pytest.raises(RunnerError, match="1/2 sweep cells failed"):
        result.raise_on_failure()

    # The failure is checkpointed like any other record...
    loaded = SweepCheckpoint(out).load(spec)
    assert loaded["nosuch/F/5"].status == "failed"
    # ...and a resume retries exactly the failed cell.
    resumed = run_sweep(spec, workers=1, out=str(out), resume=True)
    assert resumed.executed == ("nosuch/F/5",)
    assert resumed.skipped == ("ovhcloud/F/5",)
    assert not resumed.ok


def test_infeasible_sizing_is_captured_not_raised():
    # A machine far smaller than the smallest flavor makes the sizing
    # search throw inside the worker; the sweep must survive it.
    spec = SweepSpec(
        providers=("ovhcloud",),
        mixes=("A",),
        seeds=(5,),
        target_population=5,
        machine_cpus=1,
        machine_mem_gb=0.5,
    )
    result = run_sweep(spec, workers=1)
    assert not result.ok
    (failure,) = result.failures()
    assert failure.error["type"] == "SimulationError"


def test_run_cell_payload_roundtrip():
    # The worker function is a pure record transformer over primitives.
    cell = SPEC.cells()[0]
    record = _run_cell(_cell_payload(SPEC, cell))
    assert record["status"] == "ok"
    assert record["key"] == cell.key
    assert record["elapsed_s"] > 0
    assert record["outcome"]["seed"] == cell.seed
