"""Trace (de)serialization tests."""

import pytest

from repro.core import WorkloadError
from repro.workload import (
    AZURE,
    WorkloadParams,
    generate_workload,
    iter_trace,
    load_trace,
    save_trace,
)
from repro.workload.traces import vm_from_dict, vm_to_dict


@pytest.fixture
def trace():
    return generate_workload(
        WorkloadParams(catalog=AZURE, level_mix="E", target_population=50, seed=1)
    )


def test_roundtrip_preserves_trace(tmp_path, trace):
    path = tmp_path / "trace.jsonl"
    save_trace(trace, path)
    loaded = load_trace(path)
    for orig, back in zip(trace, loaded):
        assert vm_to_dict(orig) == vm_to_dict(back)


def test_iter_trace_streams(tmp_path, trace):
    path = tmp_path / "trace.jsonl"
    save_trace(trace, path)
    it = iter_trace(path)
    first = next(it)
    assert first.vm_id == trace[0].vm_id


def test_dict_roundtrip_single():
    vm = generate_workload(
        WorkloadParams(catalog=AZURE, level_mix="A", target_population=10, seed=2)
    )[0]
    assert vm_to_dict(vm_from_dict(vm_to_dict(vm))) == vm_to_dict(vm)


def test_missing_fields_rejected():
    with pytest.raises(WorkloadError):
        vm_from_dict({"vm_id": "x", "vcpus": 1})


def test_invalid_json_line_reports_location(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"vm_id": "a", "vcpus": 1, "mem_gb": 1, "ratio": 1, "arrival": 0}\nnot-json\n')
    with pytest.raises(WorkloadError, match="bad.jsonl:2"):
        list(iter_trace(path))


def test_blank_lines_ignored(tmp_path):
    path = tmp_path / "gaps.jsonl"
    path.write_text(
        '{"vm_id": "a", "vcpus": 1, "mem_gb": 1.0, "ratio": 2.0, "arrival": 0}\n'
        "\n"
        '{"vm_id": "b", "vcpus": 2, "mem_gb": 4.0, "ratio": 1.0, "arrival": 5}\n'
    )
    loaded = load_trace(path)
    assert [vm.vm_id for vm in loaded] == ["a", "b"]
    assert loaded[0].level.ratio == 2.0


def test_defaults_for_optional_fields(tmp_path):
    path = tmp_path / "minimal.jsonl"
    path.write_text('{"vm_id": "a", "vcpus": 1, "mem_gb": 1.0, "ratio": 1.0, "arrival": 0}\n')
    vm = load_trace(path)[0]
    assert vm.departure is None
    assert vm.usage_kind == "stress"
