"""Catalog tests: the frozen catalogs must match the paper's moments."""

import numpy as np
import pytest

from repro.core import VMSpec, WorkloadError
from repro.workload import AZURE, OVERSUB_MEM_CAP_GB, OVHCLOUD, PROVIDERS, Catalog


class TestTable1Moments:
    def test_azure_mean_requests(self):
        # Table I: 2.25 vCPUs and 4.8 GB per VM.
        assert AZURE.mean_vcpus == pytest.approx(2.25, abs=0.005)
        assert AZURE.mean_mem_gb == pytest.approx(4.8, abs=0.01)

    def test_ovhcloud_mean_requests(self):
        # Table I: 3.24 vCPUs and 10.05 GB per VM.
        assert OVHCLOUD.mean_vcpus == pytest.approx(3.24, abs=0.005)
        assert OVHCLOUD.mean_mem_gb == pytest.approx(10.05, abs=0.01)


class TestTable2Ratios:
    @pytest.mark.parametrize(
        "catalog,level,expected",
        [
            (AZURE, 1.0, 2.1),
            (AZURE, 2.0, 3.0),
            (AZURE, 3.0, 4.5),
            (OVHCLOUD, 1.0, 3.1),
            (OVHCLOUD, 2.0, 3.9),
            (OVHCLOUD, 3.0, 5.8),
        ],
    )
    def test_mc_ratio_matches_paper(self, catalog, level, expected):
        assert catalog.mc_ratio(level) == pytest.approx(expected, abs=0.05)

    def test_oversubscribed_ratios_use_restricted_catalog(self):
        # The ratio at 2:1 must be exactly twice the restricted per-vCPU
        # ratio, not twice the full-catalog ratio.
        restricted = AZURE.restricted()
        per_vcpu = restricted.mean_mem_gb / restricted.mean_vcpus
        assert AZURE.mc_ratio(2.0) == pytest.approx(2 * per_vcpu)
        assert AZURE.mc_ratio(2.0) != pytest.approx(2 * AZURE.mc_ratio(1.0))


class TestRestriction:
    def test_restricted_drops_large_flavors(self):
        restricted = OVHCLOUD.restricted()
        assert all(s.mem_gb <= OVERSUB_MEM_CAP_GB for s in restricted.specs)

    def test_restricted_probabilities_renormalized(self):
        restricted = AZURE.restricted()
        assert restricted.probabilities.sum() == pytest.approx(1.0)

    def test_restriction_below_all_flavors_rejected(self):
        with pytest.raises(WorkloadError):
            OVHCLOUD.restricted(max_mem_gb=0.5)


class TestSampling:
    def test_sample_is_deterministic_per_seed(self):
        a = AZURE.sample(np.random.default_rng(7), size=50)
        b = AZURE.sample(np.random.default_rng(7), size=50)
        assert a == b

    def test_samples_come_from_catalog(self):
        specs = set(AZURE.specs)
        for s in AZURE.sample(np.random.default_rng(0), size=200):
            assert s in specs

    def test_single_sample(self):
        assert isinstance(AZURE.sample(np.random.default_rng(0)), VMSpec)

    def test_empirical_mean_approaches_moment(self):
        rng = np.random.default_rng(123)
        draws = AZURE.sample(rng, size=20_000)
        assert np.mean([d.vcpus for d in draws]) == pytest.approx(2.25, rel=0.05)


class TestValidation:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            Catalog("bad", ((VMSpec(1, 1.0), 0.5),))

    def test_duplicate_flavors_rejected(self):
        with pytest.raises(WorkloadError):
            Catalog("bad", ((VMSpec(1, 1.0), 0.5), (VMSpec(1, 1.0), 0.5)))

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            Catalog("bad", ())

    def test_providers_registry(self):
        assert PROVIDERS["azure"] is AZURE
        assert PROVIDERS["ovhcloud"] is OVHCLOUD
