"""Azure-trace-schema importer tests (synthetic CSVs in the public schema)."""

import pytest

from repro.core import WorkloadError
from repro.workload.azure_trace import assign_levels, load_azure_trace


def write(tmp_path, text, name="trace.csv"):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


SIZED = """vmId,core,memory,starttime,endtime
1,2,4.0,0.0,1.5
2,4,16.0,0.25,
3,1,2.0,-0.5,0.75
"""


class TestSizedSchema:
    def test_basic_parse(self, tmp_path):
        vms = load_azure_trace(write(tmp_path, SIZED))
        assert len(vms) == 3
        assert vms[0].vm_id == "az-1"
        assert vms[0].spec.vcpus == 2
        assert vms[0].arrival == 0.0
        assert vms[0].departure == pytest.approx(1.5 * 86_400)

    def test_open_ended_vm(self, tmp_path):
        vms = load_azure_trace(write(tmp_path, SIZED))
        assert vms[1].departure is None

    def test_negative_start_clamped(self, tmp_path):
        vms = load_azure_trace(write(tmp_path, SIZED))
        assert vms[2].arrival == 0.0
        assert vms[2].departure == pytest.approx(0.75 * 86_400)

    def test_max_rows(self, tmp_path):
        vms = load_azure_trace(write(tmp_path, SIZED), max_rows=2)
        assert len(vms) == 2

    def test_levels_default_premium(self, tmp_path):
        vms = load_azure_trace(write(tmp_path, SIZED))
        assert all(vm.level.ratio == 1.0 for vm in vms)


class TestTypedSchema:
    TYPED = """vmId,vmTypeId,starttime,endtime
a,small,0.0,1.0
b,big,0.5,
"""
    TYPES = {"small": (1, 2.0), "big": (8, 32.0)}

    def test_typed_parse(self, tmp_path):
        vms = load_azure_trace(write(tmp_path, self.TYPED), vm_types=self.TYPES)
        assert vms[0].spec.vcpus == 1
        assert vms[1].spec.mem_gb == 32.0

    def test_missing_type_mapping(self, tmp_path):
        with pytest.raises(WorkloadError, match="vm_types"):
            load_azure_trace(write(tmp_path, self.TYPED))

    def test_unknown_type_id(self, tmp_path):
        with pytest.raises(WorkloadError, match="unknown vmTypeId"):
            load_azure_trace(write(tmp_path, self.TYPED),
                             vm_types={"small": (1, 2.0)})


class TestErrors:
    def test_missing_vmid_column(self, tmp_path):
        with pytest.raises(WorkloadError, match="vmId"):
            load_azure_trace(write(tmp_path, "core,memory\n1,2\n"))

    def test_invalid_time(self, tmp_path):
        bad = "vmId,core,memory,starttime,endtime\n1,2,4.0,soon,\n"
        with pytest.raises(WorkloadError, match="starttime"):
            load_azure_trace(write(tmp_path, bad))

    def test_zero_length_vms_skipped(self, tmp_path):
        text = ("vmId,core,memory,starttime,endtime\n"
                "1,2,4.0,1.0,1.0\n"
                "2,2,4.0,0.0,2.0\n")
        vms = load_azure_trace(write(tmp_path, text))
        assert [v.vm_id for v in vms] == ["az-2"]

    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_azure_trace(write(tmp_path, "vmId,core,memory,starttime\n"))


class TestAssignLevels:
    def test_mix_shares_respected(self, tmp_path):
        rows = ["vmId,core,memory,starttime,endtime"]
        rows += [f"{i},2,4.0,0.0," for i in range(500)]
        vms = load_azure_trace(write(tmp_path, "\n".join(rows) + "\n"))
        levelled = assign_levels(vms, (50, 25, 25), seed=1)
        ratios = [vm.level.ratio for vm in levelled]
        assert abs(sum(r == 1.0 for r in ratios) / 500 - 0.5) < 0.07

    def test_large_memory_vms_stay_premium(self, tmp_path):
        text = "vmId,core,memory,starttime,endtime\n1,8,64.0,0.0,\n"
        vms = load_azure_trace(write(tmp_path, text))
        for seed in range(10):
            levelled = assign_levels(vms, "O", seed=seed)  # 100% 3:1 mix
            assert levelled[0].level.ratio == 1.0

    def test_deterministic_per_seed(self, tmp_path):
        vms = load_azure_trace(write(tmp_path, SIZED))
        a = assign_levels(vms, "E", seed=3)
        b = assign_levels(vms, "E", seed=3)
        assert [v.level.ratio for v in a] == [v.level.ratio for v in b]

    def test_end_to_end_with_simulator(self, tmp_path):
        from repro.hardware import SIM_WORKER
        from repro.simulator import minimal_cluster

        rows = ["vmId,core,memory,starttime,endtime"]
        rows += [f"{i},2,4.0,{i * 0.001},{1 + i * 0.001}" for i in range(50)]
        vms = assign_levels(
            load_azure_trace(write(tmp_path, "\n".join(rows) + "\n")),
            "F", seed=0,
        )
        sized = minimal_cluster(vms, SIM_WORKER, policy="progress")
        assert sized.result.feasible
