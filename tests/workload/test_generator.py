"""Tests of the CloudFactory-style workload generator."""

import numpy as np
import pytest

from repro.core import WorkloadError
from repro.workload import (
    AZURE,
    OVERSUB_MEM_CAP_GB,
    OVHCLOUD,
    WorkloadParams,
    generate_workload,
    peak_population,
)

DAY = 86_400.0


def params(**kw):
    defaults = dict(catalog=AZURE, level_mix="E", target_population=200, seed=3)
    defaults.update(kw)
    return WorkloadParams(**defaults)


def test_same_seed_same_trace():
    a = generate_workload(params())
    b = generate_workload(params())
    assert a == b


def test_different_seeds_differ():
    a = generate_workload(params(seed=1))
    b = generate_workload(params(seed=2))
    assert a != b


def test_population_approaches_target():
    trace = generate_workload(params(target_population=300, seed=9))
    peak = peak_population(trace, horizon=7 * DAY)
    assert 0.75 * 300 <= peak <= 1.25 * 300


def test_level_shares_respected():
    trace = generate_workload(params(level_mix=(50, 25, 25), seed=4,
                                     target_population=500))
    ratios = np.array([vm.level.ratio for vm in trace])
    share_1 = np.mean(ratios == 1.0)
    assert share_1 == pytest.approx(0.5, abs=0.06)
    assert np.mean(ratios == 2.0) == pytest.approx(0.25, abs=0.05)


def test_zero_share_levels_absent():
    trace = generate_workload(params(level_mix="F"))
    assert {vm.level.ratio for vm in trace} == {1.0, 3.0}


def test_oversubscribed_vms_respect_memory_cap():
    # §III-A: oversubscribed offers are capped at 8 GB.
    trace = generate_workload(params(level_mix=(0, 50, 50), seed=5))
    for vm in trace:
        assert vm.spec.mem_gb <= OVERSUB_MEM_CAP_GB


def test_premium_vms_use_full_catalog():
    trace = generate_workload(params(catalog=OVHCLOUD, level_mix="A", seed=6,
                                     target_population=500))
    assert any(vm.spec.mem_gb > OVERSUB_MEM_CAP_GB for vm in trace)


def test_departures_within_duration_or_none():
    trace = generate_workload(params())
    for vm in trace:
        if vm.departure is not None:
            assert vm.arrival < vm.departure <= 7 * DAY


def test_behaviour_shares():
    trace = generate_workload(params(seed=8, target_population=600))
    kinds = np.array([vm.usage_kind for vm in trace])
    assert np.mean(kinds == "stress") == pytest.approx(0.6, abs=0.06)
    assert np.mean(kinds == "idle") == pytest.approx(0.1, abs=0.04)
    assert np.mean(kinds == "interactive") == pytest.approx(0.3, abs=0.05)


def test_arrival_count_follows_littles_law():
    # lambda * duration = target/lifetime * duration.
    p = params(target_population=100, seed=11)
    trace = generate_workload(p)
    expected = 100 / p.mean_lifetime * p.duration
    assert len(trace) == pytest.approx(expected, rel=0.2)


def test_invalid_params_rejected():
    with pytest.raises(WorkloadError):
        params(target_population=0)
    with pytest.raises(WorkloadError):
        params(duration=-1.0)
    with pytest.raises(WorkloadError):
        params(diurnal_amplitude=1.5)
    with pytest.raises(WorkloadError):
        params(behaviour_shares={"idle": 0.5, "stress": 0.2, "interactive": 0.2})


def test_peak_population_counts_overlap():
    from repro.core import LEVEL_1_1, VMRequest, VMSpec

    def mk(vm_id, arrival, departure):
        return VMRequest(vm_id=vm_id, spec=VMSpec(1, 1.0), level=LEVEL_1_1,
                         arrival=arrival, departure=departure)

    trace = [mk("a", 0.0, 10.0), mk("b", 5.0, 15.0), mk("c", 12.0, None)]
    assert peak_population(trace) == 2
    assert peak_population([mk("a", 0.0, 10.0), mk("b", 10.0, 20.0)]) == 1
