"""Usage-profile tests."""

import numpy as np
import pytest

from repro.core import WorkloadError
from repro.workload import (
    DEFAULT_BEHAVIOUR_SHARES,
    IdleProfile,
    InteractiveProfile,
    StressProfile,
    profile_for,
)

DAY = 86_400.0


def test_behaviour_shares_match_section7a():
    # §VII-A1: 10% idle, 60% stress benchmark, 30% interactive.
    assert DEFAULT_BEHAVIOUR_SHARES == {"idle": 0.10, "stress": 0.60, "interactive": 0.30}
    assert sum(DEFAULT_BEHAVIOUR_SHARES.values()) == pytest.approx(1.0)


def test_idle_profile_is_flat_and_small():
    p = IdleProfile()
    assert p.demand(0.0) == p.demand(12345.0) < 0.1


def test_stress_profile_is_constant():
    p = StressProfile(utilization=0.7)
    assert p.demand(0.0) == p.demand(999.0) == 0.7


def test_stress_bounds_validated():
    with pytest.raises(WorkloadError):
        StressProfile(utilization=1.5)


def test_interactive_profile_is_diurnal():
    p = InteractiveProfile(base=0.4, amplitude=0.5, phase=0.0)
    quarter = p.demand(DAY / 4)  # sin peak
    three_quarters = p.demand(3 * DAY / 4)  # sin trough
    assert quarter == pytest.approx(0.6)
    assert three_quarters == pytest.approx(0.2)
    assert p.demand(0.0) == pytest.approx(p.demand(DAY))  # 24h period


def test_interactive_demand_never_exceeds_one():
    p = InteractiveProfile(base=0.9, amplitude=1.0)
    times = np.linspace(0, DAY, 200)
    assert np.all(p.demand_series(times) <= 1.0)


def test_interactive_phase_shifts_peak():
    a = InteractiveProfile(base=0.4, amplitude=0.5, phase=0.0)
    b = InteractiveProfile(base=0.4, amplitude=0.5, phase=0.5)
    assert a.demand(DAY / 4) == pytest.approx(b.demand(3 * DAY / 4))


def test_interactive_validation():
    with pytest.raises(WorkloadError):
        InteractiveProfile(base=0.0)
    with pytest.raises(WorkloadError):
        InteractiveProfile(base=0.5, amplitude=2.0)


def test_profile_for_dispatch():
    assert isinstance(profile_for("idle", 0.0), IdleProfile)
    assert isinstance(profile_for("stress", 0.5), StressProfile)
    assert isinstance(profile_for("interactive", 0.3, phase=0.2), InteractiveProfile)
    with pytest.raises(WorkloadError):
        profile_for("batch", 0.5)


def test_demand_series_matches_scalar():
    p = InteractiveProfile(base=0.3)
    times = np.array([0.0, 100.0, 5000.0])
    series = p.demand_series(times)
    assert series == pytest.approx([p.demand(float(t)) for t in times])


@pytest.mark.parametrize(
    "profile",
    [
        IdleProfile(),
        StressProfile(utilization=0.45),
        InteractiveProfile(base=0.37, amplitude=0.5, phase=0.13),
        InteractiveProfile(base=0.9, amplitude=1.0, phase=0.71),
    ],
    ids=["idle", "stress", "interactive", "interactive-clamped"],
)
def test_vectorized_demand_series_is_bit_identical(profile):
    # The vectorized overrides must not just be close — the estimator
    # layer and the scalar perfmodel path read the same signal, so the
    # two implementations are required to agree bit-for-bit.
    times = np.linspace(-DAY, 3 * DAY, 1013)
    series = profile.demand_series(times)
    scalar = np.array([profile.demand(float(t)) for t in times])
    assert series.shape == times.shape
    assert np.array_equal(series, scalar)


def test_demand_series_accepts_lists_and_empty():
    p = StressProfile(utilization=0.25)
    assert np.array_equal(p.demand_series([0.0, 1.0]), [0.25, 0.25])
    assert p.demand_series(np.array([])).size == 0
