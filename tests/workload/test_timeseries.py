"""Tests of the Markov-modulated usage model and trace profiles."""

import numpy as np
import pytest

from repro.core import WorkloadError
from repro.workload.timeseries import (
    AZURE_LIKE_USAGE,
    MarkovUsageModel,
    TraceProfile,
    generate_usage_series,
)


class TestModel:
    def test_stationary_mean(self):
        model = MarkovUsageModel(levels=(0.0, 1.0), dwell=(100.0, 100.0))
        assert model.stationary_mean() == pytest.approx(0.5)

    def test_dwell_weighting(self):
        model = MarkovUsageModel(levels=(0.0, 1.0), dwell=(300.0, 100.0))
        assert model.stationary_mean() == pytest.approx(0.25)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(levels=(0.5,), dwell=(10.0,)),
            dict(levels=(0.5, 1.5), dwell=(10.0, 10.0)),
            dict(levels=(0.1, 0.2), dwell=(10.0,)),
            dict(levels=(0.1, 0.2), dwell=(10.0, -1.0)),
            dict(levels=(0.1, 0.2), dwell=(10.0, 10.0), jitter=0.9),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(WorkloadError):
            MarkovUsageModel(**kwargs)


class TestSeries:
    def test_deterministic_per_seed(self):
        a = generate_usage_series(AZURE_LIKE_USAGE, 3600, 10.0,
                                  np.random.default_rng(4))
        b = generate_usage_series(AZURE_LIKE_USAGE, 3600, 10.0,
                                  np.random.default_rng(4))
        assert np.array_equal(a, b)

    def test_series_bounds(self):
        s = generate_usage_series(AZURE_LIKE_USAGE, 7200, 5.0,
                                  np.random.default_rng(0))
        assert np.all((s >= 0.0) & (s <= 1.0))

    def test_long_run_mean_matches_stationary(self):
        model = MarkovUsageModel(levels=(0.1, 0.5), dwell=(200.0, 200.0),
                                 jitter=0.0)
        s = generate_usage_series(model, 400_000, 10.0, np.random.default_rng(1))
        assert s.mean() == pytest.approx(model.stationary_mean(), abs=0.04)

    def test_regimes_actually_alternate(self):
        model = MarkovUsageModel(levels=(0.1, 0.9), dwell=(50.0, 50.0), jitter=0.0)
        s = generate_usage_series(model, 5000, 10.0, np.random.default_rng(2))
        assert (s < 0.2).any() and (s > 0.8).any()

    def test_initial_state_respected(self):
        model = MarkovUsageModel(levels=(0.1, 0.9), dwell=(1e6, 1e6), jitter=0.0)
        s = generate_usage_series(model, 100, 10.0, np.random.default_rng(0),
                                  initial_state=1)
        assert np.all(s == pytest.approx(0.9))

    def test_invalid_grid(self):
        with pytest.raises(WorkloadError):
            generate_usage_series(AZURE_LIKE_USAGE, 0, 1.0, np.random.default_rng(0))
        with pytest.raises(WorkloadError):
            generate_usage_series(AZURE_LIKE_USAGE, 10, 0.0, np.random.default_rng(0))
        with pytest.raises(WorkloadError):
            generate_usage_series(AZURE_LIKE_USAGE, 10, 1.0,
                                  np.random.default_rng(0), initial_state=9)


class TestTraceProfile:
    def test_step_interpolation(self):
        p = TraceProfile(series=(0.1, 0.5, 0.9), dt=10.0)
        assert p.demand(0.0) == 0.1
        assert p.demand(9.99) == 0.1
        assert p.demand(10.0) == 0.5
        assert p.demand(25.0) == 0.9

    def test_clamping_outside_window(self):
        p = TraceProfile(series=(0.2, 0.8), dt=5.0, start=100.0)
        assert p.demand(0.0) == 0.2  # before the window
        assert p.demand(1e9) == 0.8  # after the window

    def test_from_model(self):
        p = TraceProfile.from_model(AZURE_LIKE_USAGE, 600, 10.0,
                                    np.random.default_rng(3))
        assert len(p.series) == 60
        assert 0.0 <= p.demand(300.0) <= 1.0

    def test_vectorized_series_is_bit_identical(self):
        p = TraceProfile.from_model(AZURE_LIKE_USAGE, 600, 10.0,
                                    np.random.default_rng(11))
        times = np.linspace(-50.0, 700.0, 331)
        series = p.demand_series(times)
        scalar = np.array([p.demand(float(t)) for t in times])
        assert np.array_equal(series, scalar)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TraceProfile(series=(), dt=1.0)
        with pytest.raises(WorkloadError):
            TraceProfile(series=(0.5,), dt=0.0)
        with pytest.raises(WorkloadError):
            TraceProfile(series=(1.5,), dt=1.0)

    def test_usable_in_contention_group(self):
        from repro.core import LEVEL_2_1, VMRequest, VMSpec
        from repro.perfmodel import ContentionGroup, CpuSetCapacity, GroupMember

        rng = np.random.default_rng(7)
        vm = VMRequest(vm_id="t", spec=VMSpec(2, 4.0), level=LEVEL_2_1)
        member = GroupMember(vm=vm, profile=TraceProfile.from_model(
            AZURE_LIKE_USAGE, 600, 10.0, rng))
        group = ContentionGroup(CpuSetCapacity(threads=4, physical=4), [member])
        tick = group.step(50.0)
        assert 0.0 <= tick.total_demand <= 2.0
