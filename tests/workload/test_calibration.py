"""Catalog calibration tests — including re-deriving the frozen catalogs."""

import pytest

from repro.core import VMSpec, WorkloadError
from repro.workload import AZURE, OVHCLOUD
from repro.workload.calibration import CalibrationTarget, calibrate_catalog

pytest.importorskip("scipy")


AZURE_TARGET = CalibrationTarget(
    mean_vcpus=2.25, mean_mem_gb=4.8, restricted_mem_per_vcpu=1.5
)
OVH_TARGET = CalibrationTarget(
    mean_vcpus=3.24, mean_mem_gb=10.05, restricted_mem_per_vcpu=29 / 15
)


def test_rederive_azure_catalog_moments():
    cat = calibrate_catalog("azure-refit", AZURE.specs, AZURE_TARGET,
                            prior=AZURE.probabilities)
    assert cat.mean_vcpus == pytest.approx(2.25, abs=1e-4)
    assert cat.mean_mem_gb == pytest.approx(4.8, abs=1e-4)
    assert cat.mc_ratio(2.0) == pytest.approx(3.0, abs=1e-3)
    assert cat.mc_ratio(3.0) == pytest.approx(4.5, abs=1e-3)


def test_rederive_ovh_catalog_moments():
    cat = calibrate_catalog("ovh-refit", OVHCLOUD.specs, OVH_TARGET,
                            prior=OVHCLOUD.probabilities)
    assert cat.mean_vcpus == pytest.approx(3.24, abs=1e-4)
    assert cat.mc_ratio(3.0) == pytest.approx(5.8, abs=1e-3)


def test_uniform_prior_also_feasible():
    cat = calibrate_catalog("uniform", AZURE.specs, AZURE_TARGET)
    assert cat.mean_vcpus == pytest.approx(2.25, abs=1e-4)


def test_prior_shapes_the_solution():
    """Among feasible solutions, the fit stays close to the prior."""
    skewed = [0.9 if s.vcpus == 1 else 0.1 / (len(AZURE.specs) - 3)
              for s in AZURE.specs]
    cat = calibrate_catalog("skewed", AZURE.specs, AZURE_TARGET, prior=skewed)
    p_one = sum(p for s, p in cat.entries if s.vcpus == 1)
    uniform = calibrate_catalog("uniform", AZURE.specs, AZURE_TARGET)
    u_one = sum(p for s, p in uniform.entries if s.vcpus == 1)
    assert p_one > u_one


def test_infeasible_restricted_ratio_rejected():
    """The OVHcloud failure mode: all eligible flavors have mem/vCPU >= 2,
    so a restricted ratio below 2 is impossible."""
    flavors = [VMSpec(1, 2.0), VMSpec(2, 4.0), VMSpec(2, 8.0), VMSpec(4, 16.0)]
    target = CalibrationTarget(mean_vcpus=2.0, mean_mem_gb=6.0,
                               restricted_mem_per_vcpu=1.9)
    with pytest.raises(WorkloadError, match="outside the eligible"):
        calibrate_catalog("bad", flavors, target)


def test_impossible_means_rejected():
    flavors = [VMSpec(1, 1.0), VMSpec(2, 2.0), VMSpec(4, 4.0)]
    target = CalibrationTarget(mean_vcpus=16.0, mean_mem_gb=1.0)
    with pytest.raises(WorkloadError):
        calibrate_catalog("bad", flavors, target)


def test_validation():
    with pytest.raises(WorkloadError):
        CalibrationTarget(mean_vcpus=0.0, mean_mem_gb=1.0)
    with pytest.raises(WorkloadError):
        calibrate_catalog("x", [VMSpec(1, 1.0)], AZURE_TARGET)
    with pytest.raises(WorkloadError):
        calibrate_catalog("x", list(AZURE.specs), AZURE_TARGET,
                          prior=[1.0])  # wrong length
