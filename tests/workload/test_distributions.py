"""Tests of the A-O level-mix enumeration."""

import pytest

from repro.core import WorkloadError
from repro.workload import DISTRIBUTIONS, enumerate_mixes, mix_shares


def test_fifteen_distributions():
    assert len(DISTRIBUTIONS) == 15
    assert list(DISTRIBUTIONS) == [chr(ord("A") + i) for i in range(15)]


def test_paper_anchor_points():
    # §VII-B2 pins these mixes explicitly.
    assert DISTRIBUTIONS["A"] == (100, 0, 0)  # only 1:1
    assert DISTRIBUTIONS["O"] == (0, 0, 100)  # only 3:1
    assert DISTRIBUTIONS["F"] == (50, 0, 50)  # the 9.6% case


def test_no_3to1_distributions_match_paper():
    # "distributions A, B, D, G, and K" are exactly those without 3:1 VMs.
    without = {k for k, (s1, s2, s3) in DISTRIBUTIONS.items() if s3 == 0}
    assert without == {"A", "B", "D", "G", "K"}


def test_all_mixes_sum_to_100():
    for mix in DISTRIBUTIONS.values():
        assert sum(mix) == 100


def test_enumerate_matches_frozen_constants():
    assert enumerate_mixes(25) == {
        k: tuple(float(x) for x in v) for k, v in DISTRIBUTIONS.items()
    }


def test_enumerate_finer_step():
    mixes = enumerate_mixes(50)
    assert len(mixes) == 6
    mixes10 = enumerate_mixes(10)
    assert len(mixes10) == 66


def test_enumerate_invalid_step():
    with pytest.raises(WorkloadError):
        enumerate_mixes(30)
    with pytest.raises(WorkloadError):
        enumerate_mixes(0)


class TestMixShares:
    def test_by_name(self):
        shares = mix_shares("F")
        assert shares == {1.0: 0.5, 2.0: 0.0, 3.0: 0.5}

    def test_name_is_case_insensitive(self):
        assert mix_shares("f") == mix_shares("F")

    def test_by_tuple_normalizes(self):
        assert mix_shares((1, 1, 2)) == {1.0: 0.25, 2.0: 0.25, 3.0: 0.5}

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            mix_shares("Z")

    def test_negative_share_rejected(self):
        with pytest.raises(WorkloadError):
            mix_shares((-1, 2, 0))

    def test_zero_total_rejected(self):
        with pytest.raises(WorkloadError):
            mix_shares((0, 0, 0))
