"""Tests of the contention-group tick model."""

import numpy as np
import pytest

from repro.core import ConfigError, LEVEL_2_1, VMRequest, VMSpec
from repro.perfmodel import ContentionGroup, CpuSetCapacity, GroupMember


def member(vm_id, vcpus=2, kind="stress", param=0.5):
    vm = VMRequest(
        vm_id=vm_id, spec=VMSpec(vcpus, 4.0), level=LEVEL_2_1,
        usage_kind=kind, usage_param=param,
    )
    return GroupMember.from_request(vm)


def test_no_contention_grants_full_demand():
    cap = CpuSetCapacity(threads=8, physical=8)
    group = ContentionGroup(cap, [member("a", param=0.4), member("b", param=0.2)])
    tick = group.step(0.0)
    assert tick.allocations == pytest.approx(tick.demands)
    assert np.all(tick.slowdowns == 1.0)


def test_saturation_shares_fairly_by_vcpus():
    cap = CpuSetCapacity(threads=2, physical=2)
    group = ContentionGroup(
        cap,
        [member("a", vcpus=2, param=1.0), member("b", vcpus=6, param=1.0)],
    )
    tick = group.step(0.0)
    assert tick.total_allocation == pytest.approx(2.0)
    # Weighted by vCPU count: 1/4 and 3/4 of the pool.
    assert tick.allocations == pytest.approx([0.5, 1.5])


def test_idle_members_have_unit_slowdown():
    cap = CpuSetCapacity(threads=2, physical=2)
    group = ContentionGroup(cap, [member("a", kind="idle", param=0.0)])
    tick = group.step(0.0)
    assert tick.slowdowns[0] == 1.0


def test_smt_pressure_reported():
    cap = CpuSetCapacity(threads=8, physical=4)
    group = ContentionGroup(cap, [member("a", vcpus=8, param=0.8)])
    tick = group.step(0.0)
    assert tick.smt_pressure > 0


def test_utilization_capped_at_one():
    cap = CpuSetCapacity(threads=2, physical=1)
    group = ContentionGroup(cap, [member("a", vcpus=8, param=1.0)])
    assert group.step(0.0).utilization == 1.0


def test_demand_noise_preserves_mean():
    cap = CpuSetCapacity(threads=64, physical=64)
    rng = np.random.default_rng(0)
    group = ContentionGroup(
        cap, [member("a", vcpus=4, param=0.5)], rng=rng, noise_sigma=0.3
    )
    demands = [group.step(float(t)).total_demand for t in range(3000)]
    assert np.mean(demands) == pytest.approx(2.0, rel=0.1)
    assert np.std(demands) > 0.05


def test_noise_never_exceeds_vcpus():
    cap = CpuSetCapacity(threads=64, physical=64)
    rng = np.random.default_rng(1)
    group = ContentionGroup(
        cap, [member("a", vcpus=2, param=0.9)], rng=rng, noise_sigma=1.0
    )
    for t in range(500):
        assert group.step(float(t)).total_demand <= 2.0 + 1e-9


def test_noise_requires_rng():
    cap = CpuSetCapacity(threads=2, physical=2)
    with pytest.raises(ConfigError):
        ContentionGroup(cap, [member("a")], noise_sigma=0.2)


def test_empty_group_rejected():
    with pytest.raises(ConfigError):
        ContentionGroup(CpuSetCapacity(threads=2, physical=2), [])


def test_total_vcpus():
    cap = CpuSetCapacity(threads=8, physical=8)
    group = ContentionGroup(cap, [member("a", vcpus=2), member("b", vcpus=4)])
    assert group.total_vcpus == 6
