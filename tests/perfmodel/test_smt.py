"""Tests of the SMT-aware CPU-set capacity model."""

import pytest

from repro.core import ConfigError
from repro.perfmodel import CpuSetCapacity, cpu_set_capacity


class TestCapacity:
    def test_fully_paired_set(self):
        cap = CpuSetCapacity(threads=8, physical=4, smt_speedup=1.3)
        assert cap.paired_cores == 4
        assert cap.max_throughput == pytest.approx(4 + 0.3 * 4)

    def test_unpaired_set_has_no_smt_gain(self):
        cap = CpuSetCapacity(threads=4, physical=4)
        assert cap.paired_cores == 0
        assert cap.max_throughput == 4.0

    def test_deliverable_is_identity_below_physical(self):
        cap = CpuSetCapacity(threads=8, physical=4)
        assert cap.deliverable(3.0) == 3.0
        assert cap.deliverable(4.0) == 4.0

    def test_deliverable_marginal_rate_in_smt_zone(self):
        cap = CpuSetCapacity(threads=8, physical=4, smt_speedup=1.3)
        # 1 core-second of demand beyond physical yields 0.3 extra.
        assert cap.deliverable(5.0) == pytest.approx(4.3)

    def test_deliverable_saturates(self):
        cap = CpuSetCapacity(threads=8, physical=4, smt_speedup=1.3)
        assert cap.deliverable(100.0) == cap.max_throughput

    def test_deliverable_monotone(self):
        cap = CpuSetCapacity(threads=6, physical=4, smt_speedup=1.4)
        values = [cap.deliverable(d / 10) for d in range(0, 120)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


class TestPressure:
    def test_no_pressure_below_physical(self):
        cap = CpuSetCapacity(threads=8, physical=4)
        assert cap.smt_pressure(4.0) == 0.0

    def test_pressure_grows_with_overflow(self):
        cap = CpuSetCapacity(threads=8, physical=4)
        low = cap.smt_pressure(4.5)
        high = cap.smt_pressure(7.0)
        assert 0 < low < high <= 1.0

    def test_no_pressure_without_siblings(self):
        cap = CpuSetCapacity(threads=4, physical=4)
        assert cap.smt_pressure(10.0) == 0.0


class TestValidation:
    @pytest.mark.parametrize(
        "threads,physical",
        [(0, 0), (2, 0), (1, 2), (9, 4)],
    )
    def test_invalid_sets(self, threads, physical):
        with pytest.raises(ConfigError):
            CpuSetCapacity(threads=threads, physical=physical)

    def test_speedup_below_one_rejected(self):
        with pytest.raises(ConfigError):
            CpuSetCapacity(threads=4, physical=4, smt_speedup=0.9)

    def test_convenience_constructor(self):
        cap = cpu_set_capacity(8, 4, 1.25)
        assert cap.smt_speedup == 1.25
