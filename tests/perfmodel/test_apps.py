"""Tests of the latency model."""

import numpy as np
import pytest

from repro.core import ConfigError
from repro.perfmodel import LatencyParams, LatencyTracker, percentile_windows


def tracker(seed=0, vcpus=2, **params):
    return LatencyTracker(
        params=LatencyParams(**params),
        vm_id="vm",
        vcpus=vcpus,
        rng=np.random.default_rng(seed),
    )


def drive(tr, ticks=600, demand=0.5, slowdown=1.0, pressure=0.0,
          pm_util=0.0, pool_util=0.0, pool_size=64):
    for t in range(ticks):
        tr.observe(float(t), 1.0, demand, slowdown, pressure, pm_util,
                   pool_utilization=pool_util, pool_size=pool_size)


def median_p90(tr):
    return float(np.median(tr.window_p90s()))


class TestLatencyMechanics:
    def test_uncontended_latency_near_service_time(self):
        tr = tracker()
        drive(tr)
        assert median_p90(tr) < 5 * tr.params.service_time

    def test_slowdown_increases_latency(self):
        fast, slow = tracker(), tracker()
        drive(fast, slowdown=1.0)
        drive(slow, slowdown=0.5)
        assert median_p90(slow) > median_p90(fast)

    def test_smt_pressure_increases_latency(self):
        calm, pressured = tracker(), tracker()
        drive(calm, pressure=0.0)
        drive(pressured, pressure=1.0)
        assert median_p90(pressured) > median_p90(calm)

    def test_pm_interference_increases_latency(self):
        quiet, noisy = tracker(), tracker()
        drive(quiet, pm_util=0.0)
        drive(noisy, pm_util=1.0)
        assert median_p90(noisy) > median_p90(quiet)

    def test_saturated_small_pool_hurts_more_than_big_pool(self):
        """The economy-of-scale term: the same pool utilisation delays a
        small pinned vNode far more than a whole machine."""
        vnode, machine = tracker(), tracker()
        drive(vnode, pool_util=0.93, pool_size=16)
        drive(machine, pool_util=0.93, pool_size=128)
        assert median_p90(vnode) > 1.5 * median_p90(machine)

    def test_overload_accumulates_backlog(self):
        tr = tracker(vcpus=1)
        drive(tr, demand=0.9, slowdown=0.5, ticks=300)  # capacity 0.5 < 0.9
        assert tr.backlog > 0
        assert median_p90(tr) > 20 * tr.params.service_time

    def test_no_arrivals_records_no_samples(self):
        tr = tracker()
        drive(tr, demand=0.0, ticks=50)
        assert tr.samples == []
        assert tr.window_p90s().size == 0


class TestWindows:
    def test_percentile_windows_partitions_time(self):
        times = np.array([0.0, 10.0, 29.0, 30.0, 45.0])
        values = np.array([1.0, 2.0, 3.0, 10.0, 20.0])
        p = percentile_windows(times, values, window=30.0, q=50.0)
        assert len(p) == 2
        assert p[0] == pytest.approx(2.0)
        assert p[1] == pytest.approx(15.0)

    def test_empty_series(self):
        assert percentile_windows(np.array([]), np.array([]), 30.0, 90.0).size == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            percentile_windows(np.array([1.0]), np.array([1.0, 2.0]), 30.0, 90.0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(service_time=0.0),
            dict(window=-1.0),
            dict(smt_latency_penalty=-0.1),
            dict(interference=-0.1),
            dict(rho_max=1.0),
            dict(rho_max=0.0),
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ConfigError):
            LatencyParams(**kwargs)
