"""Churn-testbed tests: dynamic vNode resizing under load."""

import pytest

from repro.core import SimulationError
from repro.perfmodel import ChurnParams, TestbedParams, run_churn_testbed


@pytest.fixture(scope="module")
def result():
    return run_churn_testbed(
        ChurnParams(base=TestbedParams(duration=300.0), event_interval=10.0)
    )


def test_churn_actually_happens(result):
    assert result.deploys > 0
    assert result.removals > 0
    assert result.final_vms > 0


def test_pinning_changes_only_on_lifecycle_events(result):
    """§V-A: re-pinning happens only when a VM is deployed or destroyed.
    Every pin change must be attributable to a lifecycle event (warm
    fill + churn), never to the tick loop."""
    # Warm fill performs at most final_vms + removals deploys; each
    # deploy/remove changes the pinning at most once.
    lifecycle_events = (result.final_vms + result.removals) + result.removals + result.deploys
    assert result.pin_changes <= lifecycle_events


def test_isolation_mostly_holds_under_churn(result):
    """Fragmentation can force brief LLC sharing (the paper's fallback:
    'if not feasible, we proceed to the (n-1)th level'), but it must
    stay rare on a 70%-filled machine."""
    assert result.max_llc_violations <= 2


def test_levels_keep_their_latency_ordering(result):
    medians = result.median_p90_ms
    assert set(medians) == {"1:1", "2:1", "3:1"}
    assert medians["1:1"] <= medians["2:1"] <= medians["3:1"]


def test_premium_latency_stays_in_static_band(result):
    # The static testbed's 1:1 medians sit near 1.2-1.6 ms; churn must
    # not degrade premium VMs materially.
    assert result.median_p90_ms["1:1"] < 2.5


def test_param_validation():
    with pytest.raises(SimulationError):
        ChurnParams(warm_fill=0.0)
    with pytest.raises(SimulationError):
        ChurnParams(event_interval=-1.0)
