"""Property and unit tests of the water-filling fair share."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import ConfigError
from repro.perfmodel import water_fill, weighted_water_fill


class TestUnit:
    def test_under_capacity_gives_full_demand(self):
        d = np.array([1.0, 2.0, 3.0])
        assert water_fill(d, 10.0) == pytest.approx(d)

    def test_equal_demands_split_evenly(self):
        d = np.array([4.0, 4.0, 4.0])
        assert water_fill(d, 6.0) == pytest.approx([2.0, 2.0, 2.0])

    def test_small_demands_are_protected(self):
        # EEVDF fairness: a light consumer keeps its demand; heavy ones
        # share the rest equally.
        d = np.array([1.0, 10.0, 10.0])
        alloc = water_fill(d, 11.0)
        assert alloc[0] == pytest.approx(1.0)
        assert alloc[1] == pytest.approx(5.0)
        assert alloc[2] == pytest.approx(5.0)

    def test_weights_scale_entitlements(self):
        d = np.array([10.0, 10.0])
        alloc = weighted_water_fill(d, np.array([1.0, 3.0]), 8.0)
        assert alloc == pytest.approx([2.0, 6.0])

    def test_zero_capacity(self):
        assert water_fill(np.array([1.0, 2.0]), 0.0) == pytest.approx([0.0, 0.0])

    def test_empty_demands(self):
        assert water_fill(np.array([]), 5.0).size == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            weighted_water_fill(np.array([1.0]), np.array([1.0, 2.0]), 1.0)
        with pytest.raises(ConfigError):
            weighted_water_fill(np.array([-1.0]), np.array([1.0]), 1.0)
        with pytest.raises(ConfigError):
            weighted_water_fill(np.array([1.0]), np.array([0.0]), 1.0)
        with pytest.raises(ConfigError):
            water_fill(np.array([1.0]), -1.0)


@st.composite
def share_cases(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    demands = np.array(
        [draw(st.floats(min_value=0.0, max_value=16.0)) for _ in range(n)]
    )
    weights = np.array(
        [draw(st.floats(min_value=0.25, max_value=8.0)) for _ in range(n)]
    )
    capacity = draw(st.floats(min_value=0.0, max_value=64.0))
    return demands, weights, capacity


@settings(max_examples=200, deadline=None)
@given(case=share_cases())
def test_water_fill_properties(case):
    demands, weights, capacity = case
    alloc = weighted_water_fill(demands, weights, capacity)
    # 1. Nobody gets more than they asked for.
    assert np.all(alloc <= demands + 1e-9)
    # 2. Nothing is negative.
    assert np.all(alloc >= -1e-9)
    # 3. Capacity is respected, and fully used when demand saturates it.
    total = demands.sum()
    assert alloc.sum() <= min(total, capacity) + 1e-6
    if total > capacity:
        assert alloc.sum() == pytest.approx(capacity, rel=1e-6, abs=1e-9)
    else:
        assert alloc == pytest.approx(demands)


@settings(max_examples=100, deadline=None)
@given(case=share_cases())
def test_water_fill_is_weight_fair(case):
    """No consumer receiving less than demand may have a lower
    per-weight share than another consumer (max-min fairness)."""
    demands, weights, capacity = case
    alloc = weighted_water_fill(demands, weights, capacity)
    unsated = demands - alloc > 1e-6
    if not unsated.any():
        return
    theta = (alloc / weights)[unsated]
    # All unsated consumers sit at (approximately) the same water level,
    # and no one else exceeds it by more than their demand allows.
    assert theta.max() - theta.min() <= 1e-4 * max(theta.max(), 1.0)
