"""Tests of the testbed harness (short runs; the full experiment lives
in benchmarks/test_table4_fig2_response_times.py)."""

import numpy as np
import pytest

from repro.core import LEVEL_1_1, LEVEL_3_1, SlackVMConfig
from repro.hardware import EPYC_7662_DUAL
from repro.localsched import LocalScheduler
from repro.perfmodel import TestbedParams, build_vm_population, run_testbed


@pytest.fixture(scope="module")
def result():
    # Short run: enough windows for stable medians, fast enough for CI.
    return run_testbed(TestbedParams(duration=240.0))


def test_fill_single_level_respects_capacity():
    params = TestbedParams()
    rng = np.random.default_rng(0)
    agent = LocalScheduler(EPYC_7662_DUAL, SlackVMConfig(levels=(LEVEL_1_1,)))
    vms = build_vm_population(LEVEL_1_1, params, rng, agent)
    assert sum(v.spec.vcpus for v in vms) <= EPYC_7662_DUAL.cpus
    assert sum(v.spec.mem_gb for v in vms) <= EPYC_7662_DUAL.mem_gb
    # The PM genuinely refused the next VM: it is nearly full.
    assert agent.free_cpus < 16 or agent.free_mem < 64


def test_oversubscribed_fill_hosts_more_vms():
    params = TestbedParams()
    rng = np.random.default_rng(0)
    prem = LocalScheduler(EPYC_7662_DUAL, SlackVMConfig(levels=(LEVEL_1_1,)))
    n_prem = len(build_vm_population(LEVEL_1_1, params, rng, prem))
    over = LocalScheduler(EPYC_7662_DUAL, SlackVMConfig(levels=(LEVEL_3_1,)))
    n_over = len(build_vm_population(LEVEL_3_1, params, rng, over))
    assert n_over > 1.5 * n_prem  # §VII-A1: 131 vs 356 in the paper


def test_slackvm_hosts_all_levels_in_roughly_equal_shares(result):
    counts = result.slackvm_vm_counts
    assert set(counts) == {"1:1", "2:1", "3:1"}
    low, high = min(counts.values()), max(counts.values())
    assert high - low <= 2  # round-robin fill


def test_table4_reports_all_levels(result):
    table = result.table4()
    assert set(table) == {"1:1", "2:1", "3:1"}
    for base, slack, ratio in table.values():
        assert base > 0 and slack > 0
        assert ratio == pytest.approx(slack / base)


def test_baseline_latency_increases_with_oversubscription(result):
    table = result.table4()
    assert table["1:1"][0] <= table["2:1"][0] <= table["3:1"][0] * 1.05


def test_premium_level_is_preserved_under_cohosting(result):
    """§VII-A2: the least oversubscribed VMs see <10-ish % degradation;
    the highest level absorbs the penalty."""
    table = result.table4()
    assert table["1:1"][2] < 1.3  # premium preserved (generous CI margin)
    assert table["3:1"][2] > table["1:1"][2]  # 3:1 pays more than premium


def test_fig2_distributions_available(result):
    for perf in list(result.baseline.values()) + list(result.slackvm.values()):
        q1, q2, q3 = perf.quartiles_ms()
        assert q1 <= q2 <= q3
        assert perf.num_interactive > 0
