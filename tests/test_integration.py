"""Cross-module integration tests: the paper's causal chain end-to-end.

Each test exercises a full pipeline (generator → scheduler → simulator →
metrics) and asserts a *qualitative* result the paper reports, at small
scale so the suite stays fast.
"""

import pytest

from repro.analysis import evaluate_distribution
from repro.core import LEVEL_1_1, LEVEL_3_1, SlackVMConfig
from repro.hardware import SIM_WORKER
from repro.simulator import demand_lower_bound, minimal_cluster
from repro.workload import AZURE, OVHCLOUD, WorkloadParams, generate_workload


POP = 200  # concurrent VMs; small but large enough for stable shapes


def trace(catalog, mix, seed=42, pop=POP):
    return generate_workload(
        WorkloadParams(catalog=catalog, level_mix=mix, target_population=pop, seed=seed)
    )


class TestComplementarity:
    """§III: different oversubscription levels saturate different
    resources, and co-hosting them saves PMs."""

    def test_dedicated_1to1_is_cpu_bound(self):
        sub = trace(OVHCLOUD, "A")
        cfg = SlackVMConfig(levels=(LEVEL_1_1,))
        sized = minimal_cluster(sub, SIM_WORKER, policy="first_fit", config=cfg)
        cpu_un, mem_un = sized.result.unallocated_at_peak()
        assert mem_un > cpu_un  # memory stranded, CPU exhausted

    def test_dedicated_3to1_is_memory_bound(self):
        sub = trace(OVHCLOUD, "O")
        cfg = SlackVMConfig(levels=(LEVEL_3_1,))
        sized = minimal_cluster(sub, SIM_WORKER, policy="first_fit", config=cfg)
        cpu_un, mem_un = sized.result.unallocated_at_peak()
        assert cpu_un > mem_un  # CPU stranded, memory exhausted

    def test_sharing_complementary_levels_saves_pms(self):
        out = evaluate_distribution(OVHCLOUD, "F", target_population=POP, seed=42)
        assert out.savings_percent > 2.0

    def test_azure_also_gains_on_low_1to1_mixes(self):
        out = evaluate_distribution(AZURE, "J", target_population=POP, seed=42)
        assert out.savings_percent >= 0.0


class TestSchedulerQuality:
    def test_progress_scheduler_never_needs_more_than_lower_bound_x2(self):
        workload = trace(OVHCLOUD, "E")
        sized = minimal_cluster(workload, SIM_WORKER, policy="progress")
        assert sized.pms <= 2 * sized.lower_bound

    def test_progress_beats_or_matches_worst_fit(self):
        workload = trace(OVHCLOUD, "F")
        progress = minimal_cluster(workload, SIM_WORKER, policy="progress")
        worst = minimal_cluster(workload, SIM_WORKER, policy="worst_fit")
        assert progress.pms <= worst.pms

    def test_sized_cluster_is_minimal(self):
        """One fewer PM must actually fail (the sizing search promise)."""
        workload = trace(OVHCLOUD, "F", pop=80)
        sized = minimal_cluster(workload, SIM_WORKER, policy="progress")
        if sized.pms > sized.lower_bound:
            from repro.simulator import VectorSimulation
            from repro.hardware import MachineSpec

            machines = [
                MachineSpec(f"m-{i}", SIM_WORKER.cpus, SIM_WORKER.mem_gb)
                for i in range(sized.pms - 1)
            ]
            sim = VectorSimulation(machines, policy="progress", fail_fast=True)
            assert not sim.run(workload).feasible


class TestPooling:
    def test_pooling_never_hurts_cluster_size(self):
        workload = trace(OVHCLOUD, "M", seed=11)
        pooled = evaluate_distribution(
            OVHCLOUD, "M", workload=workload, pooling=True
        )
        unpooled = evaluate_distribution(
            OVHCLOUD, "M", workload=workload, pooling=False
        )
        assert pooled.slackvm_pms <= unpooled.slackvm_pms + 1


class TestDeterminism:
    def test_full_pipeline_is_reproducible(self):
        a = evaluate_distribution(OVHCLOUD, "F", target_population=100, seed=3)
        b = evaluate_distribution(OVHCLOUD, "F", target_population=100, seed=3)
        assert a.slackvm_pms == b.slackvm_pms
        assert a.baseline_pms_per_level == b.baseline_pms_per_level
        assert tuple(a.slackvm_unallocated) == tuple(b.slackvm_unallocated)
