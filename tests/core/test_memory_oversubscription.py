"""Tests of the memory-oversubscription extension (paper §VIII +
footnote 2: OpenStack defaults to 16:1 CPU and 1.5:1 DRAM)."""

import pytest

from repro.core import (
    CapacityError,
    ConfigError,
    LEVEL_1_1,
    OversubscriptionLevel,
    ResourceVector,
    SlackVMConfig,
    VMRequest,
    VMSpec,
)
from repro.hardware import MachineSpec
from repro.localsched import LocalScheduler

MEM_LEVEL = OversubscriptionLevel(2.0, mem_ratio=1.5)


def vm(vm_id="vm", vcpus=2, mem=6.0, level=MEM_LEVEL):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level)


class TestLevelSemantics:
    def test_name_includes_memory_ratio(self):
        assert MEM_LEVEL.name == "2:1(mem 1.5:1)"
        assert OversubscriptionLevel(2.0).name == "2:1"

    def test_physical_mem_scaling(self):
        assert MEM_LEVEL.physical_mem_for(6.0) == pytest.approx(4.0)
        assert LEVEL_1_1.physical_mem_for(6.0) == 6.0

    def test_allocation_divides_both_dimensions(self):
        alloc = VMSpec(4, 6.0).allocation(MEM_LEVEL)
        assert alloc == ResourceVector(2.0, 4.0)

    def test_premium_requires_both_ratios_at_one(self):
        assert not OversubscriptionLevel(1.0, mem_ratio=1.5).is_premium
        assert LEVEL_1_1.is_premium

    def test_satisfies_requires_both_dimensions(self):
        plain_2 = OversubscriptionLevel(2.0)
        assert plain_2.satisfies(MEM_LEVEL)  # stricter memory, same CPU
        assert not MEM_LEVEL.satisfies(plain_2)  # looser memory
        assert MEM_LEVEL.satisfies(OversubscriptionLevel(3.0, mem_ratio=2.0))

    def test_invalid_mem_ratio_rejected(self):
        with pytest.raises(ConfigError):
            OversubscriptionLevel(2.0, mem_ratio=0.5)


class TestAgentAccounting:
    @pytest.fixture
    def agent(self):
        cfg = SlackVMConfig(levels=(LEVEL_1_1, MEM_LEVEL))
        return LocalScheduler(MachineSpec("pm", 8, 16.0), cfg)

    def test_memory_reservation_is_divided(self, agent):
        agent.deploy(vm(mem=6.0))
        assert agent.allocated_mem == pytest.approx(4.0)
        assert agent.free_mem == pytest.approx(12.0)

    def test_memory_oversubscription_admits_more_vms(self, agent):
        # 16 GB physical; at 1.5:1, 24 GB of virtual memory fit.
        for i in range(4):
            agent.deploy(vm(vm_id=f"v{i}", vcpus=2, mem=6.0))
        assert agent.allocated_mem == pytest.approx(16.0)
        assert not agent.can_deploy(vm(vm_id="extra", vcpus=1, mem=1.0))

    def test_removal_restores_physical_reservation(self, agent):
        agent.deploy(vm(vm_id="a", mem=6.0))
        agent.remove("a")
        assert agent.allocated_mem == 0.0

    def test_mismatched_mem_ratio_is_unsupported(self, agent):
        plain = VMRequest(vm_id="x", spec=VMSpec(2, 4.0),
                          level=OversubscriptionLevel(2.0))
        assert agent.plan(plain) is None


class TestVectorParity:
    def test_vector_cluster_accounts_identically(self):
        from repro.simulator import VectorCluster

        cfg = SlackVMConfig(levels=(LEVEL_1_1, MEM_LEVEL))
        cluster = VectorCluster([MachineSpec("pm", 8, 16.0)], cfg)
        cluster.deploy(vm(vm_id="a", mem=6.0), host=0)
        assert cluster.alloc_mem[0] == pytest.approx(4.0)
        cluster.remove("a")
        assert cluster.alloc_mem[0] == 0.0

    def test_vector_rejects_mismatched_mem_ratio(self):
        from repro.simulator import VectorCluster

        cfg = SlackVMConfig(levels=(MEM_LEVEL,))
        cluster = VectorCluster([MachineSpec("pm", 8, 16.0)], cfg)
        plain = VMRequest(vm_id="x", spec=VMSpec(2, 4.0),
                          level=OversubscriptionLevel(2.0))
        with pytest.raises(ConfigError):
            cluster.feasibility(plain)


def test_remap_levels_applies_mem_ratio():
    from repro.workload import AZURE, WorkloadParams, generate_workload, remap_levels

    trace = generate_workload(
        WorkloadParams(catalog=AZURE, level_mix=(50, 50, 0),
                       target_population=50, seed=0)
    )
    remapped = remap_levels(trace, [LEVEL_1_1, MEM_LEVEL])
    for vm_ in remapped:
        if vm_.level.ratio == 2.0:
            assert vm_.level.mem_ratio == 1.5
        else:
            assert vm_.level.mem_ratio == 1.0


def test_remap_levels_rejects_unknown_ratio():
    from repro.core import WorkloadError
    from repro.workload import AZURE, WorkloadParams, generate_workload, remap_levels

    trace = generate_workload(
        WorkloadParams(catalog=AZURE, level_mix=(0, 0, 100),
                       target_population=30, seed=0)
    )
    with pytest.raises(WorkloadError):
        remap_levels(trace, [LEVEL_1_1])
