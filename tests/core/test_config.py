"""Unit tests for SlackVMConfig validation and helpers."""

import pytest

from repro.core import (
    ConfigError,
    DEFAULT_LEVELS,
    LEVEL_1_1,
    LEVEL_2_1,
    LEVEL_3_1,
    OversubscriptionLevel,
    SlackVMConfig,
)


def test_default_levels_are_the_papers():
    cfg = SlackVMConfig()
    assert [lv.ratio for lv in cfg.levels] == [1.0, 2.0, 3.0]
    assert cfg.levels == DEFAULT_LEVELS


def test_levels_must_be_sorted():
    with pytest.raises(ConfigError):
        SlackVMConfig(levels=(LEVEL_2_1, LEVEL_1_1))


def test_duplicate_levels_rejected():
    with pytest.raises(ConfigError):
        SlackVMConfig(levels=(LEVEL_1_1, OversubscriptionLevel(1.0)))


def test_empty_levels_rejected():
    with pytest.raises(ConfigError):
        SlackVMConfig(levels=())


def test_level_by_ratio():
    cfg = SlackVMConfig()
    assert cfg.level_by_ratio(2.0) == LEVEL_2_1
    with pytest.raises(ConfigError):
        cfg.level_by_ratio(5.0)


def test_max_ratio():
    assert SlackVMConfig().max_ratio == 3.0


def test_with_levels_sorts_and_preserves_flags():
    cfg = SlackVMConfig(pooling=False, topology_aware=False)
    new = cfg.with_levels(4.0, 1.0, 2.0)
    assert [lv.ratio for lv in new.levels] == [1.0, 2.0, 4.0]
    assert new.pooling is False
    assert new.topology_aware is False


def test_single_level_config_is_valid():
    cfg = SlackVMConfig(levels=(LEVEL_3_1,))
    assert cfg.max_ratio == 3.0
