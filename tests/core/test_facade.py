"""Tests of the top-level SlackVM facade."""

import pytest

from repro import SlackVM, SlackVMConfig
from repro.workload import OVHCLOUD, WorkloadParams, generate_workload


@pytest.fixture(scope="module")
def trace():
    return generate_workload(
        WorkloadParams(catalog=OVHCLOUD, level_mix="F", target_population=100, seed=7)
    )


def test_place_on_fixed_cluster(trace):
    result = SlackVM().place(trace, num_hosts=20)
    assert result.num_hosts == 20
    assert result.feasible


def test_place_too_small_cluster_rejects(trace):
    result = SlackVM().place(trace, num_hosts=1)
    assert not result.feasible


def test_size_cluster(trace):
    sized = SlackVM().size_cluster(trace)
    assert sized.pms >= sized.lower_bound
    assert sized.result.feasible


def test_evaluate_with_pregenerated_workload(trace):
    outcome = SlackVM().evaluate(OVHCLOUD, trace)
    assert outcome.baseline_pms >= outcome.slackvm_pms - 1


def test_evaluate_mix_end_to_end():
    outcome = SlackVM().evaluate_mix(OVHCLOUD, "F", target_population=100, seed=7)
    assert outcome.mix == (50, 0, 50)
    assert outcome.slackvm_pms >= 1


def test_config_is_respected(trace):
    no_pool = SlackVM(config=SlackVMConfig(pooling=False))
    pooled = SlackVM(config=SlackVMConfig(pooling=True))
    r1 = no_pool.place(trace, num_hosts=20)
    r2 = pooled.place(trace, num_hosts=20)
    assert r1.pooled_placements == 0
    assert r2.pooled_placements >= 0
