"""Unit tests for the core data model."""

import math

import pytest

from repro.core import (
    ConfigError,
    LEVEL_1_1,
    LEVEL_2_1,
    LEVEL_3_1,
    OversubscriptionLevel,
    ResourceVector,
    VMRequest,
    VMSpec,
)


class TestResourceVector:
    def test_addition(self):
        assert ResourceVector(1, 2) + ResourceVector(3, 4) == ResourceVector(4, 6)

    def test_subtraction(self):
        assert ResourceVector(3, 4) - ResourceVector(1, 2) == ResourceVector(2, 2)

    def test_scalar_multiplication_commutes(self):
        assert 2 * ResourceVector(1, 2) == ResourceVector(1, 2) * 2 == ResourceVector(2, 4)

    def test_fits_within(self):
        assert ResourceVector(2, 4).fits_within(ResourceVector(2, 4))
        assert ResourceVector(2, 4).fits_within(ResourceVector(3, 5))
        assert not ResourceVector(2, 6).fits_within(ResourceVector(3, 5))
        assert not ResourceVector(4, 4).fits_within(ResourceVector(3, 5))

    def test_fits_within_tolerates_float_drift(self):
        assert ResourceVector(2 + 1e-12, 4).fits_within(ResourceVector(2, 4))

    def test_mc_ratio(self):
        assert ResourceVector(32, 128).mc_ratio == 4.0

    def test_mc_ratio_of_zero_cpu_is_infinite(self):
        assert math.isinf(ResourceVector(0, 128).mc_ratio)

    def test_clamp_nonnegative(self):
        assert ResourceVector(-1, 2).clamp_nonnegative() == ResourceVector(0, 2)

    def test_zero(self):
        assert ResourceVector.zero() == ResourceVector(0.0, 0.0)


class TestOversubscriptionLevel:
    def test_names(self):
        assert LEVEL_1_1.name == "1:1"
        assert LEVEL_2_1.name == "2:1"
        assert OversubscriptionLevel(1.5).name == "1.5:1"

    def test_premium_flag(self):
        assert LEVEL_1_1.is_premium
        assert not LEVEL_2_1.is_premium

    def test_physical_cores_scaling(self):
        assert LEVEL_2_1.physical_cores_for(6) == 3.0
        assert LEVEL_3_1.physical_cores_for(6) == 2.0

    def test_ordering_by_ratio(self):
        assert LEVEL_1_1 < LEVEL_2_1 < LEVEL_3_1

    def test_stricter_satisfies_looser(self):
        # §V-B: "no more than 2 vCPUs per core" satisfies "no more than 3".
        assert LEVEL_2_1.satisfies(LEVEL_3_1)
        assert LEVEL_1_1.satisfies(LEVEL_2_1)
        assert not LEVEL_3_1.satisfies(LEVEL_2_1)
        assert LEVEL_2_1.satisfies(LEVEL_2_1)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ConfigError):
            OversubscriptionLevel(0.5)


class TestVMSpec:
    def test_mc_ratio(self):
        assert VMSpec(2, 8.0).mc_ratio == 4.0

    def test_allocation_divides_cpu_by_level(self):
        alloc = VMSpec(6, 8.0).allocation(LEVEL_3_1)
        assert alloc == ResourceVector(2.0, 8.0)

    def test_allocation_premium_is_identity(self):
        assert VMSpec(4, 16.0).allocation(LEVEL_1_1) == ResourceVector(4.0, 16.0)

    @pytest.mark.parametrize("vcpus,mem", [(0, 1.0), (-1, 1.0), (1, 0.0), (1, -2.0)])
    def test_invalid_spec_rejected(self, vcpus, mem):
        with pytest.raises(ConfigError):
            VMSpec(vcpus, mem)


class TestVMRequest:
    def _vm(self, **kw):
        defaults = dict(
            vm_id="vm-0", spec=VMSpec(2, 4.0), level=LEVEL_2_1, arrival=10.0
        )
        defaults.update(kw)
        return VMRequest(**defaults)

    def test_lifetime_finite(self):
        assert self._vm(departure=70.0).lifetime == 60.0

    def test_lifetime_unbounded(self):
        assert math.isinf(self._vm(departure=None).lifetime)

    def test_allocation_uses_own_level(self):
        assert self._vm().allocation() == ResourceVector(1.0, 4.0)

    def test_with_level(self):
        upgraded = self._vm().with_level(LEVEL_1_1)
        assert upgraded.level == LEVEL_1_1
        assert upgraded.vm_id == "vm-0"

    def test_departure_before_arrival_rejected(self):
        with pytest.raises(ConfigError):
            self._vm(departure=5.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ConfigError):
            self._vm(arrival=-1.0)

    def test_departure_equal_arrival_rejected(self):
        with pytest.raises(ConfigError):
            self._vm(departure=10.0)
