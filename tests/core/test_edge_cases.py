"""Edge-case sweep across the core data model and small utilities."""

import math

import pytest

from repro.core import (
    LEVEL_1_1,
    LEVEL_3_1,
    OversubscriptionLevel,
    ResourceVector,
    SlackVMConfig,
    VMRequest,
    VMSpec,
)


class TestResourceVectorEdges:
    def test_subtraction_can_go_negative(self):
        v = ResourceVector(1, 1) - ResourceVector(2, 3)
        assert v.cpu == -1 and v.mem == -2
        assert v.clamp_nonnegative() == ResourceVector(0, 0)

    def test_multiplication_by_zero(self):
        assert ResourceVector(3, 5) * 0 == ResourceVector(0, 0)

    def test_fits_within_zero_capacity(self):
        assert ResourceVector(0, 0).fits_within(ResourceVector(0, 0))
        assert not ResourceVector(1, 0).fits_within(ResourceVector(0, 0))

    def test_vectors_are_hashable_values(self):
        assert len({ResourceVector(1, 2), ResourceVector(1, 2)}) == 1


class TestLevelEdges:
    def test_fractional_ratio_supported(self):
        lvl = OversubscriptionLevel(1.5)
        assert lvl.name == "1.5:1"
        assert lvl.physical_cores_for(3) == 2.0

    def test_ratio_exactly_one_with_memory_oversub(self):
        lvl = OversubscriptionLevel(1.0, mem_ratio=2.0)
        assert not lvl.is_premium
        assert lvl.physical_mem_for(8.0) == 4.0

    def test_level_equality_includes_mem_ratio(self):
        assert OversubscriptionLevel(2.0) != OversubscriptionLevel(2.0, 1.5)

    def test_ordering_with_mem_ratio(self):
        assert OversubscriptionLevel(2.0) < OversubscriptionLevel(2.0, 1.5)


class TestVMRequestEdges:
    def test_metadata_does_not_affect_equality(self):
        a = VMRequest(vm_id="x", spec=VMSpec(1, 1.0), level=LEVEL_1_1,
                      metadata={"k": 1})
        b = VMRequest(vm_id="x", spec=VMSpec(1, 1.0), level=LEVEL_1_1,
                      metadata={"k": 2})
        assert a == b

    def test_infinite_lifetime_allocation(self):
        vm = VMRequest(vm_id="x", spec=VMSpec(3, 6.0), level=LEVEL_3_1)
        assert math.isinf(vm.lifetime)
        assert vm.allocation() == ResourceVector(1.0, 6.0)

    def test_with_level_preserves_everything_else(self):
        vm = VMRequest(vm_id="x", spec=VMSpec(2, 4.0), level=LEVEL_1_1,
                       arrival=5.0, departure=9.0, usage_kind="idle")
        up = vm.with_level(LEVEL_3_1)
        assert up.arrival == 5.0 and up.departure == 9.0
        assert up.usage_kind == "idle"
        assert up.level == LEVEL_3_1


class TestConfigEdges:
    def test_many_levels(self):
        cfg = SlackVMConfig().with_levels(1, 2, 3, 4, 8, 16)
        assert cfg.max_ratio == 16.0
        assert len(cfg.levels) == 6

    def test_mem_ratio_levels_in_config(self):
        levels = (OversubscriptionLevel(1.0),
                  OversubscriptionLevel(2.0, mem_ratio=1.5))
        cfg = SlackVMConfig(levels=levels)
        assert cfg.level_by_ratio(2.0).mem_ratio == 1.5
