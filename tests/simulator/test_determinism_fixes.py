"""Regressions for the reprolint determinism fixes (rules R004/R005).

PR 5's lint pass replaced several hash-order set iterations with
``sorted(...)`` materializations and one exact float ``!=`` with the
tolerance helper.  Each change was argued behaviour-neutral; these
tests pin that argument down:

* the allocator's picks must not depend on the *insertion history* of
  its free-CPU set (only on its contents);
* the vector kernel must stay bit-identical to the naive reference
  after the shape-cache refresh paths run over multiply-dirtied hosts;
* ``_vm_level_index`` accepts a memory ratio within CAPACITY_EPSILON
  (the tolerance change only *widens* acceptance);
* the -inf sentinel rewrite in ``select`` still returns None when no
  host is feasible.
"""

import numpy as np
import pytest

from repro.core import (
    ConfigError,
    OversubscriptionLevel,
    SlackVMConfig,
    VMRequest,
    VMSpec,
)
from repro.core.constants import CAPACITY_EPSILON
from repro.hardware import MachineSpec, epyc_7662_dual
from repro.localsched import CoreAllocator
from repro.simulator import naive_feasibility, naive_scores
from repro.simulator.vectorpool import POLICIES, VectorCluster


def _vm(i, vcpus, mem, ratio, mem_ratio=1.0):
    return VMRequest(
        vm_id=f"vm-{i:03d}",
        spec=VMSpec(vcpus, mem),
        level=OversubscriptionLevel(ratio, mem_ratio),
    )


# ---------------------------------------------------------------------------
# allocator: picks depend on set *contents*, never insertion history
# ---------------------------------------------------------------------------


class TestAllocatorOrderIndependence:
    def _scrambled(self, topo, churn):
        """An allocator whose free set was rebuilt via take/release churn."""
        alloc = CoreAllocator(topo)
        taken = alloc.pick_seed(churn, occupied=())
        # Release in an order unrelated to cpu id to vary the set's
        # internal layout while restoring identical contents.
        for cpu in sorted(taken, key=lambda c: (c % 3, -c)):
            alloc.release([cpu])
        return alloc

    @pytest.mark.parametrize("churn", [1, 7, 31])
    def test_pick_grow_ignores_free_set_history(self, churn):
        topo = epyc_7662_dual()
        fresh = CoreAllocator(topo)
        scrambled = self._scrambled(topo, churn)
        anchor = fresh.pick_seed(2, occupied=())
        assert scrambled.pick_seed(2, occupied=()) == anchor
        assert fresh.pick_grow(anchor, 6) == scrambled.pick_grow(anchor, 6)

    def test_pick_seed_with_occupied_ignores_history(self):
        topo = epyc_7662_dual()
        fresh = CoreAllocator(topo)
        scrambled = self._scrambled(topo, 13)
        occ = fresh.pick_seed(4, occupied=())
        assert scrambled.pick_seed(4, occupied=()) == occ
        assert fresh.pick_seed(3, occupied=occ) == scrambled.pick_seed(
            3, occupied=occ
        )


# ---------------------------------------------------------------------------
# vector kernel: sorted dirty-host sync stays bit-identical to naive
# ---------------------------------------------------------------------------


def _machines(n=5):
    return [MachineSpec(f"pm-{i}", 8, 32.0) for i in range(n)]


def _pair(machines=None, cfg=None):
    machines = machines or _machines()
    cfg = cfg or SlackVMConfig()
    return (
        VectorCluster(machines, cfg, kernel="incremental"),
        VectorCluster(machines, cfg, kernel="naive"),
    )


def _assert_kernels_agree(inc, ref, vm, policy):
    feas_i, growth_i, own_i = (a.copy() for a in inc.feasibility(vm))
    feas_r, growth_r, own_r = naive_feasibility(ref, vm)
    assert np.array_equal(feas_i, feas_r)
    assert np.array_equal(growth_i, growth_r)
    assert np.array_equal(own_i, own_r)
    assert np.array_equal(inc.scores(vm, policy).copy(), naive_scores(ref, vm, policy))
    if feas_r.any():
        masked = np.where(feas_r, naive_scores(ref, vm, policy), -np.inf)
        expected = int(np.argmax(masked))
    else:
        expected = None
    assert inc.select(vm, policy) == expected


class TestDirtyHostSync:
    def test_multi_host_refresh_matches_naive(self):
        inc, ref = _pair()
        placed = []
        # Dirty every host: deploys land round-robin, removals then
        # re-dirty a scattered subset so _sync walks several hosts.
        for i in range(10):
            vm = _vm(i, 2, 4.0, 2.0)
            probe = _vm(100 + i, 1, 2.0, 2.0)
            host = inc.select(vm, "progress")
            assert host is not None
            inc.deploy(vm, host)
            ref.deploy(vm, host)
            placed.append(vm.vm_id)
            _assert_kernels_agree(inc, ref, probe, "progress")
        for j, vm_id in enumerate(placed):
            if j % 3 != 0:
                continue
            inc.remove(vm_id)
            ref.remove(vm_id)
        for policy in sorted(POLICIES):
            _assert_kernels_agree(inc, ref, _vm(200, 3, 6.0, 2.0), policy)

    def test_select_returns_none_when_nothing_fits(self):
        inc, ref = _pair(_machines(2))
        oversized = _vm(0, 64, 512.0, 1.0)
        for policy in sorted(POLICIES):
            _assert_kernels_agree(inc, ref, oversized, policy)
            assert inc.select(oversized, policy) is None


# ---------------------------------------------------------------------------
# level lookup: tolerance helper only widens acceptance
# ---------------------------------------------------------------------------


class TestLevelMemRatioTolerance:
    CFG = SlackVMConfig(
        levels=(
            OversubscriptionLevel(1.0),
            OversubscriptionLevel(4.0, mem_ratio=1.5),
        )
    )

    def test_exact_ratio_accepted(self):
        inc, _ = _pair(cfg=self.CFG)
        assert inc.select(_vm(0, 1, 2.0, 4.0, mem_ratio=1.5), "progress") is not None

    def test_epsilon_close_ratio_accepted(self):
        # Pre-fix this raised: the comparison was an exact `!=`.
        inc, _ = _pair(cfg=self.CFG)
        vm = _vm(0, 1, 2.0, 4.0, mem_ratio=1.5 + CAPACITY_EPSILON / 2)
        assert inc.select(vm, "progress") is not None

    def test_distant_ratio_still_rejected(self):
        inc, _ = _pair(cfg=self.CFG)
        vm = _vm(0, 1, 2.0, 4.0, mem_ratio=2.0)
        with pytest.raises(ConfigError, match="mem ratio"):
            inc.select(vm, "progress")
