"""Heterogeneous-hardware tests: §VI computes target ratios per PM."""

import pytest

from repro.core import LEVEL_1_1, ResourceVector, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.simulator import (
    VectorCluster,
    demand_lower_bound,
    minimal_cluster,
)

CPU_HEAVY_PM = MachineSpec("cpu-pm", 32, 64.0)  # target ratio 2
MEM_HEAVY_PM = MachineSpec("mem-pm", 32, 256.0)  # target ratio 8


def vm(vm_id, vcpus=2, mem=4.0, arrival=0.0, departure=None):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=LEVEL_1_1,
                     arrival=arrival, departure=departure)


def test_progress_routes_by_per_pm_target():
    """A memory-heavy VM belongs on the memory-heavy PM, and vice versa
    — the score uses each PM's own hardware ratio."""
    cluster = VectorCluster([CPU_HEAVY_PM, MEM_HEAVY_PM], SlackVMConfig())
    # Both PMs get a seed VM so neither is "idle-ideal".
    cluster.deploy(vm("seed0", vcpus=2, mem=4.0), host=0)
    cluster.deploy(vm("seed1", vcpus=2, mem=4.0), host=1)
    mem_heavy_vm = vm("big-mem", vcpus=1, mem=32.0)
    scores = cluster.scores(mem_heavy_vm, "progress")
    assert scores[1] > scores[0]
    cpu_heavy_vm = vm("big-cpu", vcpus=8, mem=4.0)
    scores = cluster.scores(cpu_heavy_vm, "progress")
    assert scores[0] > scores[1]


def test_lower_bound_uses_capacity_envelope():
    trace = [vm(f"v{i}", vcpus=8, mem=8.0) for i in range(8)]
    # 64 vCPUs peak; the envelope (32 CPUs) gives lb 2.
    assert demand_lower_bound(trace, [CPU_HEAVY_PM, MEM_HEAVY_PM]) == 2


def test_minimal_cluster_cycles_pattern():
    trace = [vm(f"v{i}", vcpus=4, mem=28.0) for i in range(16)]
    sized = minimal_cluster(trace, [CPU_HEAVY_PM, MEM_HEAVY_PM], policy="progress")
    assert sized.result.feasible
    # Memory demand 448 GB; a homogeneous CPU-heavy cluster would need
    # 7 PMs on memory alone, the mixed pattern does better per PM pair.
    homogeneous = minimal_cluster(trace, CPU_HEAVY_PM, policy="progress")
    assert sized.pms <= homogeneous.pms


def test_empty_pattern_rejected():
    from repro.core import SimulationError

    with pytest.raises(SimulationError):
        minimal_cluster([vm("a")], [], policy="progress")


def test_heterogeneous_capacity_vectors():
    cluster = VectorCluster([CPU_HEAVY_PM, MEM_HEAVY_PM], SlackVMConfig())
    assert cluster.cap_mem[0] == 64.0
    assert cluster.cap_mem[1] == 256.0
