"""Tests of the event queue ordering and same-timestamp batching."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import LEVEL_1_1, VMRequest, VMSpec
from repro.simulator import EventKind, EventQueue, workload_events
from repro.simulator.events import iter_event_batches, workload_event_list


def vm(vm_id, arrival=0.0, departure=None):
    return VMRequest(
        vm_id=vm_id, spec=VMSpec(1, 1.0), level=LEVEL_1_1,
        arrival=arrival, departure=departure,
    )


def test_events_fire_in_time_order():
    q = EventQueue()
    q.push(5.0, EventKind.ARRIVAL, vm("a"))
    q.push(1.0, EventKind.ARRIVAL, vm("b"))
    q.push(3.0, EventKind.ARRIVAL, vm("c"))
    assert [e.vm.vm_id for e in q.drain()] == ["b", "c", "a"]


def test_departures_fire_before_arrivals_at_equal_time():
    q = EventQueue()
    q.push(2.0, EventKind.ARRIVAL, vm("incoming"))
    q.push(2.0, EventKind.DEPARTURE, vm("leaving"))
    kinds = [e.kind for e in q.drain()]
    assert kinds == [EventKind.DEPARTURE, EventKind.ARRIVAL]


def test_insertion_order_breaks_remaining_ties():
    q = EventQueue()
    q.push(1.0, EventKind.ARRIVAL, vm("first"))
    q.push(1.0, EventKind.ARRIVAL, vm("second"))
    assert [e.vm.vm_id for e in q.drain()] == ["first", "second"]


def test_workload_events_includes_finite_departures_only():
    trace = [vm("a", 0.0, 10.0), vm("b", 5.0, None)]
    q = workload_events(trace)
    events = list(q.drain())
    assert len(events) == 3
    kinds = [(e.time, e.kind) for e in events]
    assert kinds == [
        (0.0, EventKind.ARRIVAL),
        (5.0, EventKind.ARRIVAL),
        (10.0, EventKind.DEPARTURE),
    ]


def test_queue_len_and_bool():
    q = EventQueue()
    assert not q
    q.push(0.0, EventKind.ARRIVAL, vm("a"))
    assert q and len(q) == 1
    q.pop()
    assert not q


def test_batches_split_departures_from_arrivals_per_timestamp():
    trace = [
        vm("a", 0.0, 2.0),
        vm("b", 0.0, 5.0),
        vm("c", 2.0, None),  # arrives exactly when "a" departs
    ]
    batches = list(iter_event_batches(workload_event_list(trace)))
    assert [(len(d), len(a)) for d, a in batches] == [(0, 2), (1, 1), (1, 0)]
    deps, arrs = batches[1]
    assert deps[0].vm.vm_id == "a" and deps[0].kind is EventKind.DEPARTURE
    assert arrs[0].vm.vm_id == "c" and arrs[0].kind is EventKind.ARRIVAL


def test_batch_concatenation_reproduces_the_event_list():
    trace = [vm(f"vm-{i}", float(i % 3), float(i % 3) + 2.0) for i in range(12)]
    events = workload_event_list(trace)
    flattened = [
        e for deps, arrs in iter_event_batches(events) for e in (*deps, *arrs)
    ]
    assert flattened == events


@given(
    arrivals=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),  # arrival tick
            st.integers(min_value=0, max_value=5),  # lifetime ticks (0: forever)
        ),
        max_size=25,
    )
)
@settings(max_examples=100, deadline=None)
def test_batches_partition_any_trace_without_reordering(arrivals):
    trace = [
        vm(
            f"vm-{i:02d}",
            float(t),
            None if life == 0 else float(t + life),
        )
        for i, (t, life) in enumerate(arrivals)
    ]
    events = workload_event_list(trace)
    batches = list(iter_event_batches(events))
    # Lossless partition, in order.
    flattened = [e for d, a in batches for e in (*d, *a)]
    assert flattened == events
    # Each batch holds exactly one timestamp, kinds fully split.
    for deps, arrs in batches:
        assert deps or arrs
        times = {e.time for e in (*deps, *arrs)}
        assert len(times) == 1
        assert all(e.kind is EventKind.DEPARTURE for e in deps)
        assert all(e.kind is EventKind.ARRIVAL for e in arrs)
    # Batches are strictly time-ordered.
    batch_times = [(d or a)[0].time for d, a in batches]
    assert batch_times == sorted(set(batch_times))
