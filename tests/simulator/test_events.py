"""Tests of the event queue ordering."""

from repro.core import LEVEL_1_1, VMRequest, VMSpec
from repro.simulator import EventKind, EventQueue, workload_events


def vm(vm_id, arrival=0.0, departure=None):
    return VMRequest(
        vm_id=vm_id, spec=VMSpec(1, 1.0), level=LEVEL_1_1,
        arrival=arrival, departure=departure,
    )


def test_events_fire_in_time_order():
    q = EventQueue()
    q.push(5.0, EventKind.ARRIVAL, vm("a"))
    q.push(1.0, EventKind.ARRIVAL, vm("b"))
    q.push(3.0, EventKind.ARRIVAL, vm("c"))
    assert [e.vm.vm_id for e in q.drain()] == ["b", "c", "a"]


def test_departures_fire_before_arrivals_at_equal_time():
    q = EventQueue()
    q.push(2.0, EventKind.ARRIVAL, vm("incoming"))
    q.push(2.0, EventKind.DEPARTURE, vm("leaving"))
    kinds = [e.kind for e in q.drain()]
    assert kinds == [EventKind.DEPARTURE, EventKind.ARRIVAL]


def test_insertion_order_breaks_remaining_ties():
    q = EventQueue()
    q.push(1.0, EventKind.ARRIVAL, vm("first"))
    q.push(1.0, EventKind.ARRIVAL, vm("second"))
    assert [e.vm.vm_id for e in q.drain()] == ["first", "second"]


def test_workload_events_includes_finite_departures_only():
    trace = [vm("a", 0.0, 10.0), vm("b", 5.0, None)]
    q = workload_events(trace)
    events = list(q.drain())
    assert len(events) == 3
    kinds = [(e.time, e.kind) for e in events]
    assert kinds == [
        (0.0, EventKind.ARRIVAL),
        (5.0, EventKind.ARRIVAL),
        (10.0, EventKind.DEPARTURE),
    ]


def test_queue_len_and_bool():
    q = EventQueue()
    assert not q
    q.push(0.0, EventKind.ARRIVAL, vm("a"))
    assert q and len(q) == 1
    q.pop()
    assert not q
