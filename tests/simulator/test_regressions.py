"""Regression tests for latent placement-path bugs.

Each test pins one fix:

* ``build_hosts`` must propagate the machine's ``topology_factory``
  (it used to silently rebuild every host with the generic
  single-socket fallback);
* ``VectorCluster.level_index`` must resolve computed ratios within a
  tolerance instead of requiring an exact float key;
* ``SimulationResult`` peak accessors must be well-defined on an empty
  timeline (empty workload, or ``fail_fast`` rejecting the first
  arrival) instead of crashing inside numpy;
* the scoring blend constants must have a single shared definition so
  the two engines cannot drift apart.
"""

import pytest

from repro.core import OversubscriptionLevel, SlackVMConfig, VMRequest, VMSpec
from repro.core.errors import ConfigError, SimulationError
from repro.hardware import EPYC_7662_DUAL, MachineSpec
from repro.hardware.topology import epyc_7662_dual
from repro.scheduling import first_fit_scheduler
from repro.scheduling.constants import BESTFIT_BLEND, TIEBREAK_WEIGHT
from repro.simulator import Simulation, SimulationResult, Timeline, VectorSimulation, build_hosts
from repro.simulator.vectorpool import VectorCluster


def _vm(vm_id="vm-0", vcpus=64, mem=128.0, ratio=1.0, **kw):
    return VMRequest(vm_id, VMSpec(vcpus, mem), OversubscriptionLevel(ratio), **kw)


class TestBuildHostsTopology:
    def test_topology_factory_propagates(self):
        hosts = build_hosts(EPYC_7662_DUAL, 3)
        for host in hosts:
            assert host.machine.topology_factory is EPYC_7662_DUAL.topology_factory
            topo = host.machine.build_topology()
            # The real testbed machine is dual-socket, not the generic
            # single-socket fallback.
            assert topo.num_cpus == 256
            assert topo.num_sockets == 2

    def test_generic_machine_still_falls_back(self):
        hosts = build_hosts(MachineSpec("plain", 32, 128.0), 2)
        for host in hosts:
            assert host.machine.topology_factory is None
            assert host.machine.build_topology().num_sockets == 1

    def test_host_names_still_indexed(self):
        hosts = build_hosts(EPYC_7662_DUAL, 2)
        assert [h.machine.name for h in hosts] == ["2xEPYC-7662-0", "2xEPYC-7662-1"]


class TestTolerantLevelIndex:
    def setup_method(self):
        self.cluster = VectorCluster(
            [MachineSpec("pm", 16, 64.0)], SlackVMConfig()
        )

    def test_exact_lookup(self):
        assert self.cluster.level_index(1.0) == 0
        assert self.cluster.level_index(2.0) == 1
        assert self.cluster.level_index(3.0) == 2

    def test_float_noise_resolves(self):
        # A ratio recomputed through float arithmetic: 3 * (1 - 2**-35).
        noisy = 2.9999999999
        assert self.cluster.level_index(noisy) == 2
        assert self.cluster.level_index(2.0000000001) == 1

    def test_genuinely_unconfigured_ratio_still_raises(self):
        with pytest.raises(ConfigError):
            self.cluster.level_index(4.0)
        with pytest.raises(ConfigError):
            self.cluster.level_index(2.5)

    def test_host_levels_accept_computed_ratios(self):
        # host_levels resolves through level_index too.
        cluster = VectorCluster(
            [MachineSpec("pm", 16, 64.0)],
            SlackVMConfig(),
            host_levels=[(1.0, 2.9999999999)],
        )
        assert cluster.supported[2, 0]
        assert not cluster.supported[1, 0]


class TestEmptyTimelineAccessors:
    def _empty_result(self):
        return SimulationResult(
            num_hosts=2,
            capacity_cpu=32.0,
            capacity_mem=128.0,
            placements={},
            rejections=[],
            timeline=Timeline(),
        )

    def test_peak_index_raises_domain_error(self):
        with pytest.raises(SimulationError, match="empty"):
            self._empty_result().peak_index()

    def test_unallocated_at_peak_is_total(self):
        assert self._empty_result().unallocated_at_peak() == (1.0, 1.0)

    def test_peak_allocation_is_zero(self):
        assert self._empty_result().peak_allocation() == (0.0, 0.0)

    def test_empty_workload_object_engine(self):
        hosts = build_hosts(MachineSpec("pm", 16, 64.0), 2)
        result = Simulation(hosts, first_fit_scheduler()).run([])
        assert result.unallocated_at_peak() == (1.0, 1.0)
        assert result.peak_allocation() == (0.0, 0.0)

    def test_empty_workload_vector_engine(self):
        machines = [MachineSpec("pm", 16, 64.0)]
        result = VectorSimulation(machines, policy="first_fit").run([])
        assert result.unallocated_at_peak() == (1.0, 1.0)

    def test_fail_fast_first_rejection(self):
        # A VM no host can take: first event is a rejection, fail_fast
        # breaks before anything is recorded on the timeline.
        hosts = build_hosts(MachineSpec("pm", 4, 8.0), 1)
        giant = _vm(vcpus=64, mem=256.0)
        result = Simulation(hosts, first_fit_scheduler(), fail_fast=True).run([giant])
        assert result.rejections == ["vm-0"]
        assert result.timeline.times == []
        assert result.unallocated_at_peak() == (1.0, 1.0)
        with pytest.raises(SimulationError):
            result.peak_index()


class TestSharedScoreConstants:
    def test_single_definition(self):
        from repro.scheduling import baselines
        from repro.simulator import vectorpool

        assert baselines._TIEBREAK == vectorpool._TIEBREAK == TIEBREAK_WEIGHT
        assert baselines._BESTFIT_BLEND == vectorpool._BESTFIT_BLEND == BESTFIT_BLEND

    def test_values_unchanged_from_seed(self):
        assert TIEBREAK_WEIGHT == 1e-9
        assert BESTFIT_BLEND == 0.2
