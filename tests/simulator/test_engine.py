"""Tests of the reference (object-path) simulation engine."""

import pytest

from repro.core import LEVEL_1_1, LEVEL_2_1, LEVEL_3_1, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.scheduling import first_fit_scheduler, slackvm_scheduler
from repro.simulator import Simulation, build_hosts


MACHINE = MachineSpec("pm", 8, 32.0)


def vm(vm_id, vcpus=2, mem=4.0, level=LEVEL_1_1, arrival=0.0, departure=None):
    return VMRequest(
        vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level,
        arrival=arrival, departure=departure,
    )


def test_all_vms_placed_when_capacity_allows():
    hosts = build_hosts(MACHINE, 2)
    sim = Simulation(hosts, first_fit_scheduler())
    result = sim.run([vm(f"vm-{i}") for i in range(6)])
    assert result.feasible
    assert len(result.placements) == 6


def test_first_fit_fills_hosts_in_order():
    hosts = build_hosts(MACHINE, 3)
    sim = Simulation(hosts, first_fit_scheduler())
    result = sim.run([vm(f"vm-{i}", vcpus=4, mem=4.0) for i in range(4)])
    assert [result.placements[f"vm-{i}"].host for i in range(4)] == [0, 0, 1, 1]


def test_rejection_recorded():
    hosts = build_hosts(MACHINE, 1)
    sim = Simulation(hosts, first_fit_scheduler())
    result = sim.run([vm("big", vcpus=16, mem=8.0)])
    assert result.rejections == ["big"]
    assert not result.feasible


def test_fail_fast_stops_on_first_rejection():
    hosts = build_hosts(MACHINE, 1)
    sim = Simulation(hosts, first_fit_scheduler(), fail_fast=True)
    result = sim.run([vm("big", vcpus=16), vm("ok", arrival=1.0)])
    assert result.rejections == ["big"]
    assert "ok" not in result.placements


def test_departures_free_capacity():
    hosts = build_hosts(MACHINE, 1)
    sim = Simulation(hosts, first_fit_scheduler())
    trace = [
        vm("a", vcpus=8, mem=8.0, arrival=0.0, departure=10.0),
        vm("b", vcpus=8, mem=8.0, arrival=10.0),
    ]
    result = sim.run(trace)
    assert result.feasible


def test_timeline_tracks_allocation():
    hosts = build_hosts(MACHINE, 1)
    sim = Simulation(hosts, first_fit_scheduler())
    result = sim.run([vm("a", vcpus=4, mem=8.0, departure=10.0)])
    times, cpu, mem = result.timeline.as_arrays()
    assert list(times) == [0.0, 10.0]
    assert list(cpu) == [4.0, 0.0]
    assert list(mem) == [8.0, 0.0]


def test_unallocated_at_peak():
    hosts = build_hosts(MACHINE, 1)
    sim = Simulation(hosts, first_fit_scheduler())
    result = sim.run([vm("a", vcpus=4, mem=8.0, departure=10.0)])
    cpu_share, mem_share = result.unallocated_at_peak()
    assert cpu_share == pytest.approx(0.5)
    assert mem_share == pytest.approx(0.75)


def test_pooled_placements_counted():
    cfg = SlackVMConfig(pooling=True)
    hosts = build_hosts(MACHINE, 1, cfg)
    sim = Simulation(hosts, slackvm_scheduler())
    trace = [
        vm("prem", vcpus=6, mem=4.0, level=LEVEL_1_1),
        vm("mid", vcpus=3, mem=4.0, level=LEVEL_2_1, arrival=1.0),
        vm("low", vcpus=1, mem=2.0, level=LEVEL_3_1, arrival=2.0),
    ]
    result = sim.run(trace)
    assert result.feasible
    assert result.pooled_placements == 1
    assert result.placements["low"].hosted_ratio == 2.0


def test_departure_of_rejected_vm_is_ignored():
    hosts = build_hosts(MACHINE, 1)
    sim = Simulation(hosts, first_fit_scheduler())
    trace = [vm("big", vcpus=16, mem=8.0, departure=5.0), vm("ok", arrival=6.0)]
    result = sim.run(trace)
    assert result.rejections == ["big"]
    assert "ok" in result.placements
