"""Property tests: the incremental kernel is bit-identical to the naive one.

Two clusters — one per kernel — are driven through the *same* random
operation sequence (arrivals, departures, host failures), and after
every step the incremental kernel's ``feasibility()``/``scores()``/
``select()`` must equal the retained naive reference **element-wise and
bit-exactly** (``np.array_equal``, no tolerance): the rewrite's whole
correctness argument is that it reorders bookkeeping, never arithmetic.

Directed cases cover the states property shrinking tends to miss:
all-empty, all-full, and dead-host clusters (via the same
``kill_host`` drain that :class:`FaultySimulation` uses).
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import OversubscriptionLevel, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.simulator import naive_feasibility, naive_scores
from repro.simulator.vectorpool import POLICIES, VectorCluster

RATIOS = (1.0, 2.0, 3.0)


def _vm(i: int, vcpus: int, mem: float, ratio: float) -> VMRequest:
    return VMRequest(
        vm_id=f"vm-{i:03d}",
        spec=VMSpec(vcpus, mem),
        level=OversubscriptionLevel(ratio),
    )


def _clusters(machines):
    cfg = SlackVMConfig()
    return (
        VectorCluster(machines, cfg, kernel="incremental"),
        VectorCluster(machines, cfg, kernel="naive"),
    )


def _naive_select(cluster, vm, policy):
    feasible, _g, _o = naive_feasibility(cluster, vm)
    if not feasible.any():
        return None
    masked = np.where(feasible, naive_scores(cluster, vm, policy), -np.inf)
    return int(np.argmax(masked))


def _assert_probe_equal(inc, ref, vm, policy):
    feas_i, growth_i, own_i = (a.copy() for a in inc.feasibility(vm))
    feas_r, growth_r, own_r = naive_feasibility(ref, vm)
    assert np.array_equal(feas_i, feas_r), vm
    assert np.array_equal(growth_i, growth_r), vm
    assert np.array_equal(own_i, own_r), vm
    scores_i = inc.scores(vm, policy).copy()
    scores_r = naive_scores(ref, vm, policy)
    # Bit-exact, not approx: the kernels must share every rounding.
    assert np.array_equal(scores_i, scores_r), vm
    assert inc.select(vm, policy) == _naive_select(ref, vm, policy), vm


@st.composite
def operation_sequence(draw):
    num_hosts = draw(st.integers(min_value=1, max_value=8))
    machines = [
        MachineSpec(
            f"pm-{i}",
            draw(st.sampled_from([4, 8, 16])),
            float(draw(st.sampled_from([16, 32, 64]))),
        )
        for i in range(num_hosts)
    ]
    num_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for i in range(num_ops):
        kind = draw(
            st.sampled_from(["arrive", "arrive", "arrive", "depart", "kill"])
        )
        if kind == "arrive":
            ops.append(
                (
                    "arrive",
                    _vm(
                        i,
                        draw(st.sampled_from([1, 2, 4, 8])),
                        float(draw(st.sampled_from([1, 2, 4, 8, 16]))),
                        draw(st.sampled_from(RATIOS)),
                    ),
                )
            )
        elif kind == "depart":
            ops.append(("depart", draw(st.integers(min_value=0, max_value=10**6))))
        else:
            ops.append(("kill", draw(st.integers(min_value=0, max_value=num_hosts - 1))))
    probe = _vm(
        10**6,
        draw(st.sampled_from([1, 2, 4])),
        float(draw(st.sampled_from([1, 2, 8]))),
        draw(st.sampled_from(RATIOS)),
    )
    return machines, ops, probe


@pytest.mark.slow
@settings(max_examples=80, deadline=None)
@given(case=operation_sequence(), policy=st.sampled_from(POLICIES))
def test_kernels_agree_through_random_operation_sequences(case, policy):
    machines, ops, probe = case
    inc, ref = _clusters(machines)
    dead: set[int] = set()
    for op, arg in ops:
        if op == "arrive":
            _assert_probe_equal(inc, ref, arg, policy)
            host = inc.select(arg, policy)
            if host is not None:
                inc.deploy(arg, host)
                ref.deploy(arg, host)
        elif op == "depart":
            placed = inc.placed_vm_ids
            if placed:
                vm_id = placed[arg % len(placed)]
                inc.remove(vm_id)
                ref.remove(vm_id)
        else:  # kill: drain like FaultySimulation._fail_host, then fail
            if arg in dead:
                continue
            for vm_id in inc.vms_on(arg):
                inc.remove(vm_id)
                ref.remove(vm_id)
            inc.kill_host(arg)
            ref.kill_host(arg)
            dead.add(arg)
    _assert_probe_equal(inc, ref, probe, policy)
    assert np.array_equal(inc.alloc_cpu, ref.alloc_cpu)
    assert np.array_equal(inc.alloc_mem, ref.alloc_mem)
    assert np.array_equal(inc.vnode_vcpus, ref.vnode_vcpus)
    assert np.array_equal(inc.vnode_cpus, ref.vnode_cpus)


@pytest.mark.parametrize("policy", POLICIES)
def test_kernels_agree_on_empty_cluster(policy):
    machines = [MachineSpec(f"pm-{i}", 8, 32.0) for i in range(4)]
    inc, ref = _clusters(machines)
    for ratio in RATIOS:
        _assert_probe_equal(inc, ref, _vm(0, 2, 4.0, ratio), policy)


@pytest.mark.parametrize("policy", POLICIES)
def test_kernels_agree_on_full_cluster(policy):
    machines = [MachineSpec(f"pm-{i}", 4, 8.0) for i in range(3)]
    inc, ref = _clusters(machines)
    i = 0
    while True:
        vm = _vm(i, 1, 1.0, 1.0)
        host = inc.select(vm, policy)
        assert host == _naive_select(ref, vm, policy)
        if host is None:
            break
        inc.deploy(vm, host)
        ref.deploy(vm, host)
        i += 1
    assert i > 0  # the loop genuinely filled the cluster
    for ratio in RATIOS:
        _assert_probe_equal(inc, ref, _vm(10**6, 1, 1.0, ratio), policy)


@pytest.mark.parametrize("policy", POLICIES)
def test_kernels_agree_with_dead_hosts(policy):
    machines = [MachineSpec(f"pm-{i}", 8, 32.0) for i in range(4)]
    inc, ref = _clusters(machines)
    for i in range(6):
        vm = _vm(i, 2, 4.0, 2.0)
        host = inc.select(vm, policy)
        assert host is not None
        inc.deploy(vm, host)
        ref.deploy(vm, host)
    for host in (0, 2):
        for vm_id in inc.vms_on(host):
            inc.remove(vm_id)
            ref.remove(vm_id)
        inc.kill_host(host)
        ref.kill_host(host)
    for ratio in RATIOS:
        _assert_probe_equal(inc, ref, _vm(10**6, 2, 4.0, ratio), policy)


def test_all_dead_cluster_rejects_everything():
    machines = [MachineSpec(f"pm-{i}", 8, 32.0) for i in range(2)]
    inc, ref = _clusters(machines)
    for host in range(2):
        inc.kill_host(host)
        ref.kill_host(host)
    for policy in POLICIES:
        vm = _vm(0, 1, 1.0, 2.0)
        assert inc.select(vm, policy) is None
        assert _naive_select(ref, vm, policy) is None
        _assert_probe_equal(inc, ref, vm, policy)
