"""Property tests: every placement kernel is bit-identical to naive.

Three clusters — one per kernel (``incremental``, ``naive``,
``pruned``) — are driven through the *same* random operation sequence
(arrivals, departures, host failures), and after every step the fast
kernels' ``feasibility()``/``scores()``/``select()`` must equal the
retained naive reference **element-wise and bit-exactly**
(``np.array_equal``, no tolerance): the rewrites' whole correctness
argument is that they reorder bookkeeping (and, for the pruned kernel,
*which hosts get looked at*), never arithmetic.

Directed cases cover the states property shrinking tends to miss:
all-empty, all-full, and dead-host clusters (via the same
``kill_host`` drain that :class:`FaultySimulation` uses) — plus the
adversarial cache states the pruned kernel's partition summaries must
survive: stale entries after bulk departures, every host dirty at once
(``invalidate()``), and ``set_effective_capacity`` shrinking/growing
capacity mid-stream.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import OversubscriptionLevel, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.simulator import naive_feasibility, naive_scores
from repro.simulator.vectorpool import POLICIES, VectorCluster

RATIOS = (1.0, 2.0, 3.0)

#: The kernels under test, probed against the naive reference.
FAST_KERNELS = ("incremental", "pruned")


def _vm(i: int, vcpus: int, mem: float, ratio: float) -> VMRequest:
    return VMRequest(
        vm_id=f"vm-{i:03d}",
        spec=VMSpec(vcpus, mem),
        level=OversubscriptionLevel(ratio),
    )


def _clusters(machines):
    """(incremental, pruned, naive-reference) over the same fleet."""
    cfg = SlackVMConfig()
    return (
        VectorCluster(machines, cfg, kernel="incremental"),
        VectorCluster(machines, cfg, kernel="pruned"),
        VectorCluster(machines, cfg, kernel="naive"),
    )


def _naive_select(cluster, vm, policy):
    feasible, _g, _o = naive_feasibility(cluster, vm)
    if not feasible.any():
        return None
    if policy == "first_fit":
        return int(np.argmax(feasible))
    masked = np.where(feasible, naive_scores(cluster, vm, policy), -np.inf)
    return int(np.argmax(masked))


def _assert_probe_equal(fasts, ref, vm, policy):
    feas_r, growth_r, own_r = naive_feasibility(ref, vm)
    scores_r = naive_scores(ref, vm, policy)
    want = _naive_select(ref, vm, policy)
    for fast in fasts:
        feas_f, growth_f, own_f = (a.copy() for a in fast.feasibility(vm))
        assert np.array_equal(feas_f, feas_r), (fast.kernel, vm)
        assert np.array_equal(growth_f, growth_r), (fast.kernel, vm)
        assert np.array_equal(own_f, own_r), (fast.kernel, vm)
        # Bit-exact, not approx: the kernels must share every rounding.
        scores_f = fast.scores(vm, policy).copy()
        assert np.array_equal(scores_f, scores_r), (fast.kernel, vm)
        assert fast.select(vm, policy) == want, (fast.kernel, vm)


@st.composite
def operation_sequence(draw):
    num_hosts = draw(st.integers(min_value=1, max_value=8))
    machines = [
        MachineSpec(
            f"pm-{i}",
            draw(st.sampled_from([4, 8, 16])),
            float(draw(st.sampled_from([16, 32, 64]))),
        )
        for i in range(num_hosts)
    ]
    num_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for i in range(num_ops):
        kind = draw(
            st.sampled_from(
                ["arrive", "arrive", "arrive", "depart", "kill", "capacity"]
            )
        )
        if kind == "arrive":
            ops.append(
                (
                    "arrive",
                    _vm(
                        i,
                        draw(st.sampled_from([1, 2, 4, 8])),
                        float(draw(st.sampled_from([1, 2, 4, 8, 16]))),
                        draw(st.sampled_from(RATIOS)),
                    ),
                )
            )
        elif kind == "depart":
            ops.append(("depart", draw(st.integers(min_value=0, max_value=10**6))))
        elif kind == "kill":
            ops.append(("kill", draw(st.integers(min_value=0, max_value=num_hosts - 1))))
        else:  # mid-stream effective-capacity shrink/grow
            ops.append(("capacity", draw(st.sampled_from([0.5, 0.8, 1.0, 1.25, 2.0]))))
    probe = _vm(
        10**6,
        draw(st.sampled_from([1, 2, 4])),
        float(draw(st.sampled_from([1, 2, 8]))),
        draw(st.sampled_from(RATIOS)),
    )
    return machines, ops, probe


@pytest.mark.slow
@settings(max_examples=80, deadline=None)
@given(case=operation_sequence(), policy=st.sampled_from(POLICIES))
def test_kernels_agree_through_random_operation_sequences(case, policy):
    machines, ops, probe = case
    inc, pru, ref = _clusters(machines)
    fasts = (inc, pru)
    dead: set[int] = set()
    for op, arg in ops:
        if op == "arrive":
            _assert_probe_equal(fasts, ref, arg, policy)
            host = inc.select(arg, policy)
            if host is not None:
                for c in (inc, pru, ref):
                    c.deploy(arg, host)
        elif op == "depart":
            placed = inc.placed_vm_ids
            if placed:
                vm_id = placed[arg % len(placed)]
                for c in (inc, pru, ref):
                    c.remove(vm_id)
        elif op == "kill":
            # kill: drain like FaultySimulation._fail_host, then fail
            if arg in dead:
                continue
            for vm_id in inc.vms_on(arg):
                for c in (inc, pru, ref):
                    c.remove(vm_id)
            for c in (inc, pru, ref):
                c.kill_host(arg)
            dead.add(arg)
        else:  # capacity: effective-capacity override mid-stream
            eff = inc.physical_cpu * arg
            for c in (inc, pru, ref):
                c.set_effective_capacity(eff.copy())
    _assert_probe_equal(fasts, ref, probe, policy)
    for c in fasts:
        assert np.array_equal(c.alloc_cpu, ref.alloc_cpu)
        assert np.array_equal(c.alloc_mem, ref.alloc_mem)
        assert np.array_equal(c.vnode_vcpus, ref.vnode_vcpus)
        assert np.array_equal(c.vnode_cpus, ref.vnode_cpus)


@pytest.mark.parametrize("policy", POLICIES)
def test_kernels_agree_on_empty_cluster(policy):
    machines = [MachineSpec(f"pm-{i}", 8, 32.0) for i in range(4)]
    inc, pru, ref = _clusters(machines)
    for ratio in RATIOS:
        _assert_probe_equal((inc, pru), ref, _vm(0, 2, 4.0, ratio), policy)


@pytest.mark.parametrize("policy", POLICIES)
def test_kernels_agree_on_full_cluster(policy):
    machines = [MachineSpec(f"pm-{i}", 4, 8.0) for i in range(3)]
    inc, pru, ref = _clusters(machines)
    i = 0
    while True:
        vm = _vm(i, 1, 1.0, 1.0)
        host = inc.select(vm, policy)
        assert host == _naive_select(ref, vm, policy)
        assert pru.select(vm, policy) == host
        if host is None:
            break
        for c in (inc, pru, ref):
            c.deploy(vm, host)
        i += 1
    assert i > 0  # the loop genuinely filled the cluster
    for ratio in RATIOS:
        _assert_probe_equal((inc, pru), ref, _vm(10**6, 1, 1.0, ratio), policy)


@pytest.mark.parametrize("policy", POLICIES)
def test_kernels_agree_with_dead_hosts(policy):
    machines = [MachineSpec(f"pm-{i}", 8, 32.0) for i in range(4)]
    inc, pru, ref = _clusters(machines)
    for i in range(6):
        vm = _vm(i, 2, 4.0, 2.0)
        host = inc.select(vm, policy)
        assert host is not None
        assert pru.select(vm, policy) == host
        for c in (inc, pru, ref):
            c.deploy(vm, host)
    for host in (0, 2):
        for vm_id in inc.vms_on(host):
            for c in (inc, pru, ref):
                c.remove(vm_id)
        for c in (inc, pru, ref):
            c.kill_host(host)
    for ratio in RATIOS:
        _assert_probe_equal((inc, pru), ref, _vm(10**6, 2, 4.0, ratio), policy)


def test_all_dead_cluster_rejects_everything():
    machines = [MachineSpec(f"pm-{i}", 8, 32.0) for i in range(2)]
    inc, pru, ref = _clusters(machines)
    for host in range(2):
        for c in (inc, pru, ref):
            c.kill_host(host)
    for policy in POLICIES:
        vm = _vm(0, 1, 1.0, 2.0)
        assert inc.select(vm, policy) is None
        assert pru.select(vm, policy) is None
        assert _naive_select(ref, vm, policy) is None
        _assert_probe_equal((inc, pru), ref, vm, policy)


# -- adversarial cache states (the pruned kernel's partition summaries
# -- and the shape cache must survive these without drifting) ----------


@pytest.mark.parametrize("policy", POLICIES)
def test_stale_entries_after_bulk_departures(policy):
    """Warm the caches, then retire most of the fleet's VMs at once.

    The shape cache's mutation-log replay crosses its bulk-rebuild
    threshold here, and the pruned kernel's partition maxima must be
    rebuilt, not patched — a stale blockmax would surface as a select
    disagreement.
    """
    machines = [MachineSpec(f"pm-{i}", 8, 32.0) for i in range(6)]
    inc, pru, ref = _clusters(machines)
    deployed = []
    for i in range(20):
        vm = _vm(i, 1, 2.0, 2.0)
        _assert_probe_equal((inc, pru), ref, vm, policy)  # warm caches
        host = inc.select(vm, policy)
        if host is None:
            break
        for c in (inc, pru, ref):
            c.deploy(vm, host)
        deployed.append(vm.vm_id)
    assert len(deployed) >= 10
    for vm_id in deployed[:-2]:  # bulk departure wave
        for c in (inc, pru, ref):
            c.remove(vm_id)
    for ratio in RATIOS:
        _assert_probe_equal((inc, pru), ref, _vm(10**6, 2, 4.0, ratio), policy)


@pytest.mark.parametrize("policy", POLICIES)
def test_all_hosts_dirty_after_invalidate(policy):
    """``invalidate()`` marks every host dirty and drops every cache."""
    machines = [MachineSpec(f"pm-{i}", 8, 32.0) for i in range(5)]
    inc, pru, ref = _clusters(machines)
    for i in range(8):
        vm = _vm(i, 2, 4.0, 2.0)
        _assert_probe_equal((inc, pru), ref, vm, policy)
        host = inc.select(vm, policy)
        assert host is not None
        for c in (inc, pru, ref):
            c.deploy(vm, host)
    for c in (inc, pru, ref):
        c.invalidate()
    for ratio in RATIOS:
        _assert_probe_equal((inc, pru), ref, _vm(10**6, 1, 2.0, ratio), policy)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("factor", [0.5, 1.5])
def test_set_effective_capacity_mid_stream(policy, factor):
    """Shrink/grow effective capacity between arrivals.

    Capacity overrides rewrite ``cap_cpu`` wholesale (the dynamic
    oversubscription controller's path); every cached structure —
    candidate counters included — must be rebuilt before the next
    selection.
    """
    machines = [MachineSpec(f"pm-{i}", 8, 32.0) for i in range(5)]
    inc, pru, ref = _clusters(machines)
    for i in range(6):
        vm = _vm(i, 2, 4.0, 2.0)
        _assert_probe_equal((inc, pru), ref, vm, policy)
        host = inc.select(vm, policy)
        assert host is not None
        for c in (inc, pru, ref):
            c.deploy(vm, host)
    eff = inc.physical_cpu * factor
    for c in (inc, pru, ref):
        c.set_effective_capacity(eff.copy())
    for ratio in RATIOS:
        _assert_probe_equal((inc, pru), ref, _vm(10**6, 2, 2.0, ratio), policy)
    # And back: a second override must not leave stale summaries.
    for c in (inc, pru, ref):
        c.set_effective_capacity(inc.physical_cpu.copy())
    _assert_probe_equal((inc, pru), ref, _vm(10**6 + 1, 1, 1.0, 2.0), policy)
