"""Property tests: physical capacity invariants hold at every event.

Whatever the policy, pooling setting or workload, the simulator must
never overcommit physical CPUs, never oversubscribe memory, and every
vNode must honour its level's vCPU-per-CPU guarantee.
"""

import math

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core import OversubscriptionLevel, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.simulator import EventKind, VectorCluster, workload_events

MACHINE = MachineSpec("pm", 16, 64.0)


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=50))
    vms = []
    for i in range(n):
        vcpus = draw(st.sampled_from([1, 2, 3, 4, 8]))
        mem = float(draw(st.sampled_from([1, 2, 4, 8, 16, 32])))
        ratio = draw(st.sampled_from([1.0, 2.0, 3.0]))
        arrival = draw(st.floats(min_value=0.0, max_value=50.0))
        departs = draw(st.booleans())
        vms.append(
            VMRequest(
                vm_id=f"vm-{i:03d}",
                spec=VMSpec(vcpus, mem),
                level=OversubscriptionLevel(ratio),
                arrival=arrival,
                departure=arrival + draw(st.floats(min_value=0.1, max_value=30.0))
                if departs
                else None,
            )
        )
    return vms


def check_invariants(cluster: VectorCluster):
    # Physical CPU reservations never exceed machine CPUs.
    assert np.all(cluster.alloc_cpu <= cluster.cap_cpu + 1e-9)
    # Memory is never oversubscribed.
    assert np.all(cluster.alloc_mem <= cluster.cap_mem + 1e-9)
    # Nothing is negative.
    assert np.all(cluster.alloc_cpu >= -1e-9)
    assert np.all(cluster.alloc_mem >= -1e-9)
    assert np.all(cluster.vnode_cpus >= -1e-9)
    assert np.all(cluster.vnode_vcpus >= -1e-9)
    # Each vNode honours its oversubscription guarantee:
    # vcpus <= ratio * cpus, and cpus is the minimal ceil.
    for li, ratio in enumerate(cluster.ratios):
        vcpus = cluster.vnode_vcpus[li]
        cpus = cluster.vnode_cpus[li]
        assert np.all(vcpus <= ratio * cpus + 1e-9)
        for j in range(cluster.num_hosts):
            expected = 0 if vcpus[j] == 0 else math.ceil(vcpus[j] / ratio)
            assert cpus[j] == expected
    # PM-level CPU allocation is exactly the sum of its vNodes.
    assert np.allclose(cluster.alloc_cpu, cluster.vnode_cpus.sum(axis=0))


@settings(max_examples=50, deadline=None)
@given(workload=workloads(), pooling=st.booleans(),
       policy=st.sampled_from(["first_fit", "progress"]))
def test_capacity_invariants_hold_at_every_event(workload, pooling, policy):
    cfg = SlackVMConfig(pooling=pooling)
    cluster = VectorCluster([MachineSpec(f"pm-{i}", 16, 64.0) for i in range(3)], cfg)
    alive = set()
    for event in workload_events(workload).drain():
        vm = event.vm
        if event.kind is EventKind.ARRIVAL:
            feasible, _, _ = cluster.feasibility(vm)
            if feasible.any():
                scores = np.where(feasible, cluster.scores(vm, policy), -np.inf)
                cluster.deploy(vm, int(np.argmax(scores)))
                alive.add(vm.vm_id)
        elif vm.vm_id in alive:
            cluster.remove(vm.vm_id)
            alive.discard(vm.vm_id)
        check_invariants(cluster)


@settings(max_examples=50, deadline=None)
@given(workload=workloads())
def test_full_drain_returns_to_empty(workload):
    """Deploy whatever fits, then remove everything: the cluster state
    must return exactly to zero (no accounting leaks)."""
    cfg = SlackVMConfig(pooling=True)
    cluster = VectorCluster([MachineSpec("pm", 16, 64.0)], cfg)
    placed = []
    for vm in sorted(workload, key=lambda v: v.vm_id):
        feasible, _, _ = cluster.feasibility(vm)
        if feasible[0]:
            cluster.deploy(vm, 0)
            placed.append(vm.vm_id)
    for vm_id in placed:
        cluster.remove(vm_id)
    assert np.all(cluster.alloc_cpu == 0)
    assert np.all(cluster.alloc_mem == 0)
    assert np.all(cluster.vnode_cpus == 0)
    assert np.all(cluster.vnode_vcpus == 0)


@settings(max_examples=30, deadline=None)
@given(workload=workloads())
def test_feasibility_never_lies(workload):
    """If feasibility() says a host can take the VM, deploy must succeed."""
    cfg = SlackVMConfig(pooling=True)
    cluster = VectorCluster([MachineSpec(f"pm-{i}", 16, 64.0) for i in range(2)], cfg)
    for vm in sorted(workload, key=lambda v: v.vm_id):
        feasible, _, _ = cluster.feasibility(vm)
        for host in np.flatnonzero(feasible):
            # deploy on a copy-free check: deploy then remove restores state
            cluster.deploy(vm, int(host))
            cluster.remove(vm.vm_id)
        if feasible.any():
            cluster.deploy(vm, int(np.flatnonzero(feasible)[0]))
