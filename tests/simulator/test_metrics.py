"""Tests of cluster metrics."""

import pytest

from repro.core import LEVEL_1_1, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.scheduling import first_fit_scheduler
from repro.simulator import (
    Simulation,
    build_hosts,
    combine_unallocated,
    pm_savings_percent,
    time_averaged_unallocated,
    unallocated_at_peak,
)

MACHINE = MachineSpec("pm", 8, 32.0)


def vm(vm_id, vcpus=2, mem=4.0, arrival=0.0, departure=None):
    return VMRequest(
        vm_id=vm_id, spec=VMSpec(vcpus, mem), level=LEVEL_1_1,
        arrival=arrival, departure=departure,
    )


def run(trace, hosts=1):
    return Simulation(build_hosts(MACHINE, hosts), first_fit_scheduler()).run(trace)


def test_unallocated_at_peak():
    result = run([vm("a", vcpus=4, mem=8.0, departure=5.0), vm("b", vcpus=2, mem=2.0, arrival=6.0)])
    shares = unallocated_at_peak(result)
    assert shares.cpu == pytest.approx(0.5)
    assert shares.mem == pytest.approx(0.75)


def test_time_averaged_unallocated():
    # 4 CPUs for 10s then 0 for 10s => mean alloc 2 cpus of 8.
    result = run([vm("a", vcpus=4, mem=8.0, departure=10.0), vm("end", vcpus=1, mem=1.0, arrival=20.0)])
    shares = time_averaged_unallocated(result)
    assert shares.cpu == pytest.approx(1 - 2 / 8)
    assert shares.mem == pytest.approx(1 - 4 / 32)


def test_combine_unallocated_weights_by_capacity():
    r_small = run([vm("a", vcpus=8, mem=8.0)], hosts=1)  # 0% cpu unalloc
    r_big = run([vm("b", vcpus=8, mem=8.0)], hosts=3)  # 2/3 cpu unalloc
    combined = combine_unallocated([r_small, r_big])
    # 8+8 cpus allocated over 32 total => 0.5 unallocated.
    assert combined.cpu == pytest.approx(0.5)


def test_combine_requires_results():
    with pytest.raises(ValueError):
        combine_unallocated([])


def test_pm_savings_percent():
    assert pm_savings_percent(83, 75) == pytest.approx(9.64, abs=0.01)
    assert pm_savings_percent(10, 10) == 0.0
    assert pm_savings_percent(10, 11) == pytest.approx(-10.0)
    with pytest.raises(ValueError):
        pm_savings_percent(0, 1)


def test_shares_iterate_as_pairs():
    result = run([vm("a")])
    cpu, mem = unallocated_at_peak(result)
    assert 0 <= cpu <= 1 and 0 <= mem <= 1
