"""Failure-injection tests."""

import numpy as np
import pytest

from repro.core import LEVEL_1_1, SimulationError, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.simulator.faults import FaultySimulation, HostFailure


def vm(vm_id, vcpus=2, mem=4.0, arrival=0.0, departure=None):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=LEVEL_1_1,
                     arrival=arrival, departure=departure)


def machines(n=3, cpus=8, mem=32.0):
    return [MachineSpec(f"pm-{i}", cpus, mem) for i in range(n)]


def test_victims_are_recovered_when_headroom_exists():
    sim = FaultySimulation(machines(3), [HostFailure(time=5.0, host=0)],
                           policy="first_fit")
    trace = [vm("a", vcpus=4), vm("b", vcpus=4),  # both land on host 0
             vm("late", arrival=10.0)]
    result = sim.run(trace)
    assert result.feasible
    assert sim.report.failed_hosts == [0]
    assert sim.report.recovered_vms == 2
    assert sim.report.lost_vms == []
    for vm_id in ("a", "b"):
        assert result.placements[vm_id].host != 0


def test_vms_lost_when_no_headroom():
    sim = FaultySimulation(machines(2, cpus=4), [HostFailure(5.0, 0)],
                           policy="first_fit")
    trace = [vm("a", vcpus=4), vm("b", vcpus=4), vm("probe", arrival=10.0, vcpus=1)]
    result = sim.run(trace)
    # Host 1 is full with 'b': 'a' cannot be recovered.
    assert sim.report.lost_vms == ["a"]
    assert sim.report.recovered_vms == 0


def test_dead_host_receives_no_new_vms():
    sim = FaultySimulation(machines(2), [HostFailure(1.0, 0)],
                           policy="first_fit")
    trace = [vm(f"v{i}", arrival=2.0 + i) for i in range(3)]
    result = sim.run(trace)
    assert all(rec.host == 1 for rec in result.placements.values())


def test_arrivals_rejected_when_cluster_shrinks_too_far():
    sim = FaultySimulation(machines(1), [HostFailure(1.0, 0)],
                           policy="first_fit")
    result = sim.run([vm("late", arrival=5.0)])
    assert result.rejections == ["late"]


def test_departure_of_lost_vm_is_harmless():
    sim = FaultySimulation(machines(2, cpus=4), [HostFailure(5.0, 0)],
                           policy="first_fit")
    trace = [vm("a", vcpus=4, departure=20.0), vm("b", vcpus=4, departure=25.0)]
    result = sim.run(trace)
    assert "a" in sim.report.lost_vms
    assert result is not None  # the departure event did not crash


def test_failures_after_last_event_are_applied():
    sim = FaultySimulation(machines(2), [HostFailure(100.0, 1)],
                           policy="first_fit")
    sim.run([vm("a")])
    assert sim.report.failed_hosts == [1]


def test_invalid_failures_rejected():
    with pytest.raises(SimulationError):
        FaultySimulation(machines(2), [HostFailure(1.0, 5)])
    with pytest.raises(SimulationError):
        HostFailure(-1.0, 0)
    with pytest.raises(SimulationError):
        FaultySimulation(machines(2), [], policy="bogus")


def test_capacity_reported_net_of_failures():
    sim = FaultySimulation(machines(4), [HostFailure(0.5, 2)],
                           policy="first_fit")
    result = sim.run([vm("a", arrival=1.0)])
    assert result.capacity_cpu == pytest.approx(3 * 8)
