"""Unit tests of the vectorized cluster state."""

import numpy as np
import pytest

from repro.core import (
    CapacityError,
    ConfigError,
    LEVEL_1_1,
    LEVEL_2_1,
    LEVEL_3_1,
    SlackVMConfig,
    VMRequest,
    VMSpec,
)
from repro.hardware import MachineSpec
from repro.simulator import POLICIES, VectorCluster, VectorSimulation


def vm(vm_id, vcpus=2, mem=4.0, level=LEVEL_2_1, arrival=0.0, departure=None):
    return VMRequest(
        vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level,
        arrival=arrival, departure=departure,
    )


def machines(n=2, cpus=8, mem=32.0):
    return [MachineSpec(f"pm-{i}", cpus, mem) for i in range(n)]


@pytest.fixture
def cluster():
    return VectorCluster(machines(), SlackVMConfig())


class TestDeployRemove:
    def test_deploy_updates_arrays(self, cluster):
        cluster.deploy(vm("a", vcpus=3, mem=6.0), host=0)
        assert cluster.alloc_cpu[0] == 2.0  # ceil(3/2)
        assert cluster.alloc_mem[0] == 6.0
        assert cluster.alloc_cpu[1] == 0.0

    def test_remove_restores_state_exactly(self, cluster):
        before = (
            cluster.alloc_cpu.copy(),
            cluster.alloc_mem.copy(),
            cluster.vnode_cpus.copy(),
            cluster.vnode_vcpus.copy(),
        )
        cluster.deploy(vm("a", vcpus=5, mem=10.0, level=LEVEL_3_1), host=1)
        cluster.remove("a")
        after = (
            cluster.alloc_cpu,
            cluster.alloc_mem,
            cluster.vnode_cpus,
            cluster.vnode_vcpus,
        )
        for b, a in zip(before, after):
            assert np.array_equal(b, a)

    def test_duplicate_deploy_rejected(self, cluster):
        cluster.deploy(vm("a"), host=0)
        with pytest.raises(CapacityError):
            cluster.deploy(vm("a"), host=1)

    def test_remove_unknown_rejected(self, cluster):
        with pytest.raises(CapacityError):
            cluster.remove("ghost")

    def test_overfull_host_rejected(self, cluster):
        with pytest.raises(CapacityError):
            cluster.deploy(vm("big", vcpus=1, mem=64.0), host=0)

    def test_unconfigured_level_rejected(self, cluster):
        from repro.core import OversubscriptionLevel

        with pytest.raises(ConfigError):
            cluster.deploy(vm("x", level=OversubscriptionLevel(5.0)), host=0)


class TestFeasibility:
    def test_feasibility_vector_matches_deploy(self, cluster):
        cluster.deploy(vm("fill", vcpus=16, mem=4.0, level=LEVEL_2_1), host=0)
        probe = vm("probe", vcpus=16, mem=4.0, level=LEVEL_2_1)
        feasible, growth, own = cluster.feasibility(probe)
        assert list(feasible) == [False, True]
        assert growth[1] == 8.0

    def test_pooling_feasibility(self):
        cluster = VectorCluster(machines(1), SlackVMConfig(pooling=True))
        cluster.deploy(vm("prem", vcpus=6, mem=4.0, level=LEVEL_1_1), host=0)
        cluster.deploy(vm("mid", vcpus=3, mem=4.0, level=LEVEL_2_1), host=0)
        probe = vm("low", vcpus=1, mem=2.0, level=LEVEL_3_1)
        feasible, _, own = cluster.feasibility(probe)
        assert feasible[0] and not own[0]
        record = cluster.deploy(probe, host=0)
        assert record.pooled and record.hosted_ratio == 2.0

    def test_pooling_disabled(self):
        cluster = VectorCluster(machines(1), SlackVMConfig(pooling=False))
        cluster.deploy(vm("prem", vcpus=6, mem=4.0, level=LEVEL_1_1), host=0)
        cluster.deploy(vm("mid", vcpus=3, mem=4.0, level=LEVEL_2_1), host=0)
        feasible, _, _ = cluster.feasibility(vm("low", vcpus=1, mem=2.0, level=LEVEL_3_1))
        assert not feasible.any()


class TestScores:
    def test_first_fit_scores_are_negative_ranks(self, cluster):
        s = cluster.scores(vm("x"), "first_fit")
        assert list(s) == [0.0, -1.0]

    def test_unknown_policy_rejected(self, cluster):
        with pytest.raises(ConfigError):
            cluster.scores(vm("x"), "random")

    def test_progress_prefers_counterbalancing_host(self):
        cluster = VectorCluster(machines(2, cpus=32, mem=128.0), SlackVMConfig())
        cluster.deploy(vm("c", vcpus=16, mem=16.0, level=LEVEL_1_1), host=0)
        cluster.deploy(vm("m", vcpus=4, mem=64.0, level=LEVEL_1_1), host=1)
        s = cluster.scores(vm("x", vcpus=2, mem=32.0, level=LEVEL_1_1), "progress")
        assert s[0] > s[1]


class TestIntrospection:
    def test_host_of_and_vms_on(self, cluster):
        cluster.deploy(vm("a"), host=1)
        assert cluster.host_of("a") == 1
        assert cluster.vms_on(1) == ["a"]
        assert cluster.vms_on(0) == []

    def test_request_of_returns_original(self, cluster):
        request = vm("a", vcpus=3, mem=5.0)
        cluster.deploy(request, host=0)
        assert cluster.request_of("a") is request

    def test_host_weight(self, cluster):
        assert cluster.host_weight(0) == 0.0
        cluster.deploy(vm("a", vcpus=4, mem=16.0), host=0)
        assert cluster.host_weight(0) == pytest.approx(2 / 8 + 16 / 32)


class TestVectorSimulation:
    def test_policies_constant_is_exhaustive(self):
        sim_ok = [VectorSimulation(machines(), policy=p) for p in POLICIES]
        assert len(sim_ok) == len(POLICIES)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            VectorSimulation(machines(), policy="nope")

    def test_run_places_and_frees(self):
        sim = VectorSimulation(machines(1), policy="first_fit")
        trace = [
            vm("a", vcpus=8, mem=8.0, departure=10.0),
            vm("b", vcpus=8, mem=8.0, arrival=10.0),
        ]
        result = sim.run(trace)
        assert result.feasible
        assert result.placements["a"].host == 0
        assert result.placements["b"].host == 0
