"""Edge cases for host-failure injection (:mod:`repro.simulator.faults`).

The corners a random schedule rarely lands on exactly: a failure at
``t=0`` (before any arrival), the same host failing twice, a failure
arriving after every VM has already departed, and the guarantee that an
*empty* failure list reproduces the plain vector engine event-for-event.
"""

import numpy as np
import pytest

from repro.core import OversubscriptionLevel, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.simulator import VectorSimulation
from repro.simulator.faults import FaultySimulation, HostFailure

NUM_HOSTS = 3


def _machines():
    return [MachineSpec(f"pm-{i}", 16, 64.0) for i in range(NUM_HOSTS)]


def _vm(i, arrival=0.0, departure=None, vcpus=2, mem=4.0, ratio=2.0):
    return VMRequest(
        vm_id=f"vm-{i:03d}",
        spec=VMSpec(vcpus, mem),
        level=OversubscriptionLevel(ratio),
        arrival=arrival,
        departure=departure,
    )


def _workload(n=12):
    return [_vm(i, arrival=float(i), departure=float(i) + 30.0) for i in range(n)]


def test_failure_at_time_zero_precedes_every_arrival():
    sim = FaultySimulation(_machines(), [HostFailure(0.0, 0)])
    result = sim.run(_workload())
    assert sim.report.failed_hosts == [0]
    # The host died before anything was placed: nothing to recover or
    # lose, and no placement may ever name it.
    assert sim.report.recovered_vms == 0
    assert sim.report.lost_vms == []
    assert all(p.host != 0 for p in result.placements.values())
    assert result.capacity_cpu == pytest.approx((NUM_HOSTS - 1) * 16)


def test_repeated_failure_of_same_host_is_harmless():
    failures = [HostFailure(5.0, 1), HostFailure(8.0, 1)]
    result = FaultySimulation(_machines(), failures).run(_workload())
    # The second failure finds an already-dead, already-drained host:
    # no victims, no capacity change, no crash.
    assert all(p.host != 1 for p in result.placements.values())
    assert result.capacity_cpu == pytest.approx((NUM_HOSTS - 1) * 16)
    _, cpu, mem = result.timeline.as_arrays()
    assert np.all(cpu >= -1e-9) and np.all(mem >= -1e-9)


def test_failure_after_all_departures_has_no_victims():
    workload = [_vm(i, arrival=float(i), departure=10.0 + i) for i in range(4)]
    sim = FaultySimulation(_machines(), [HostFailure(100.0, 2)])
    result = sim.run(workload)
    # The failure postdates the last event, so it fires in the trailing
    # sweep against an empty host.
    assert sim.report.failed_hosts == [2]
    assert sim.report.recovered_vms == 0
    assert sim.report.lost_vms == []
    assert len(result.placements) == 4
    assert result.capacity_cpu == pytest.approx((NUM_HOSTS - 1) * 16)


@pytest.mark.parametrize("policy", ["progress", "first_fit"])
def test_empty_failure_list_matches_plain_vector_simulation(policy):
    workload = _workload(20)
    plain = VectorSimulation(_machines(), policy=policy).run(workload)
    faulty = FaultySimulation(_machines(), [], policy=policy).run(workload)
    assert {k: (p.host, p.hosted_ratio, p.pooled) for k, p in faulty.placements.items()} \
        == {k: (p.host, p.hosted_ratio, p.pooled) for k, p in plain.placements.items()}
    assert faulty.rejections == plain.rejections
    assert faulty.pooled_placements == plain.pooled_placements
    assert faulty.timeline.times == plain.timeline.times
    assert faulty.timeline.alloc_cpu == plain.timeline.alloc_cpu
    assert faulty.timeline.alloc_mem == plain.timeline.alloc_mem


def test_failure_of_fully_loaded_cluster_loses_unplaceable_victims():
    # Saturate a 2-host cluster, then kill one host: some victims
    # cannot be re-placed and must be reported lost, not leaked.
    machines = [MachineSpec(f"pm-{i}", 4, 16.0) for i in range(2)]
    workload = [_vm(i, arrival=float(i), vcpus=2, mem=4.0, ratio=1.0) for i in range(4)]
    sim = FaultySimulation(machines, [HostFailure(50.0, 0)], config=SlackVMConfig())
    result = sim.run(workload)
    assert len(result.placements) == 4
    assert sim.report.failed_hosts == [0]
    assert sim.report.recovered_vms + len(sim.report.lost_vms) > 0
    # Every lost VM had been placed, and none remains on the dead host.
    assert set(sim.report.lost_vms) <= set(result.placements)
