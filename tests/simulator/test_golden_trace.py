"""Golden decision-trace conformance suite.

``tests/fixtures/golden/`` holds a frozen workload trace plus one
JSON-Lines decision stream per policy, recorded by
``scripts/regen_golden.py`` with the **naive** reference kernel — the
pre-change oracle.  These tests replay the frozen trace and require:

* the incremental and pruned kernels' recorded streams to be
  **byte-identical** to the golden file (the kernel rewrites'
  bit-equality contract, end to end through JSON serialization);
* the naive kernel to still reproduce its own stream byte-for-byte
  (guards the fixtures against accidental regeneration drift);
* the object engine (``Simulation`` + ``LocalScheduler``) to match the
  golden stream field-by-field under
  :func:`repro.obs.audit.diff_decision_streams` — same candidates,
  same chosen host, same admission kind/level/growth, scores within
  ``SCORE_RTOL`` (the two paths use different float pipelines, so
  byte-identity is deliberately not required there).

Regenerate the corpus only on a deliberate semantics change:
``PYTHONPATH=src python scripts/regen_golden.py``.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.hardware import MachineSpec
from repro.localsched.agent import LocalScheduler
from repro.obs.audit import diff_decision_streams
from repro.obs.records import JsonlRecorder, MemoryRecorder, load_jsonl_records
from repro.scheduling.baselines import scheduler_for_policy
from repro.simulator import VectorSimulation
from repro.simulator.engine import Simulation
from repro.simulator.vectorpool import POLICIES
from repro.workload.traces import load_trace

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden"


@pytest.fixture(scope="module")
def manifest() -> dict:
    return json.loads((GOLDEN_DIR / "manifest.json").read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def workload():
    return load_trace(GOLDEN_DIR / "trace.jsonl")


@pytest.fixture(scope="module")
def machines(manifest):
    return [
        MachineSpec(m["name"], m["cpus"], m["mem_gb"]) for m in manifest["machines"]
    ]


def _vector_stream(machines, workload, policy: str, kernel: str) -> str:
    sink = io.StringIO()
    result = VectorSimulation(
        machines, policy=policy, kernel=kernel, recorder=JsonlRecorder(sink)
    ).run(workload)
    assert result is not None
    return sink.getvalue()


def test_corpus_covers_every_policy(manifest):
    assert sorted(manifest["policies"]) == sorted(POLICIES)
    for policy in POLICIES:
        assert (GOLDEN_DIR / f"{policy}.jsonl").is_file()


def test_manifest_matches_trace(manifest, workload):
    assert manifest["num_vms"] == len(workload)


def test_corpus_exercises_every_admission_kind(manifest):
    # A corpus without rejections (or without pooling) would silently
    # stop locking down those code paths.
    for policy, stats in manifest["policies"].items():
        assert stats["rejected"] > 0, policy
    assert any(s["pooled"] > 0 for s in manifest["policies"].values())


@pytest.mark.parametrize("policy", POLICIES)
def test_incremental_kernel_is_byte_identical(machines, workload, policy):
    golden = (GOLDEN_DIR / f"{policy}.jsonl").read_text(encoding="utf-8")
    assert _vector_stream(machines, workload, policy, "incremental") == golden


@pytest.mark.parametrize("policy", POLICIES)
def test_pruned_kernel_is_byte_identical(machines, workload, policy):
    golden = (GOLDEN_DIR / f"{policy}.jsonl").read_text(encoding="utf-8")
    assert _vector_stream(machines, workload, policy, "pruned") == golden


@pytest.mark.parametrize("policy", POLICIES)
def test_naive_kernel_reproduces_its_own_stream(machines, workload, policy):
    golden = (GOLDEN_DIR / f"{policy}.jsonl").read_text(encoding="utf-8")
    assert _vector_stream(machines, workload, policy, "naive") == golden


@pytest.mark.parametrize("policy", POLICIES)
def test_object_engine_matches_golden(machines, workload, policy):
    golden_decisions, golden_admissions = load_jsonl_records(
        GOLDEN_DIR / f"{policy}.jsonl"
    )
    recorder = MemoryRecorder()
    hosts = [LocalScheduler(m, recorder=recorder) for m in machines]
    Simulation(hosts, scheduler_for_policy(policy), recorder=recorder).run(workload)
    divergences = diff_decision_streams(recorder.decisions, golden_decisions)
    assert not divergences, divergences[0].describe()
    assert recorder.admissions == golden_admissions


@pytest.mark.parametrize("policy", POLICIES)
def test_loader_round_trips_byte_identically(policy):
    # load_jsonl_records → JsonlRecorder must reproduce the exact
    # bytes: this is what makes the loader a trustworthy oracle.
    decisions, admissions = load_jsonl_records(GOLDEN_DIR / f"{policy}.jsonl")
    sink = io.StringIO()
    recorder = JsonlRecorder(sink)
    by_seq = iter(decisions)
    admission_iter = iter(admissions)
    # Interleave exactly as the engine emitted: an admission follows
    # its decision for every non-rejected arrival.
    for decision in by_seq:
        if decision.admission != "rejected":
            recorder.record_admission(next(admission_iter))
        recorder.record_decision(decision)
    assert sink.getvalue() == (GOLDEN_DIR / f"{policy}.jsonl").read_text(
        encoding="utf-8"
    )
