"""Tests of minimal-cluster sizing."""

import pytest

from repro.core import LEVEL_1_1, LEVEL_3_1, SimulationError, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.simulator import demand_lower_bound, minimal_cluster

MACHINE = MachineSpec("pm", 8, 32.0)


def vm(vm_id, vcpus=2, mem=4.0, level=LEVEL_1_1, arrival=0.0, departure=None):
    return VMRequest(
        vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level,
        arrival=arrival, departure=departure,
    )


class TestLowerBound:
    def test_cpu_bound(self):
        trace = [vm(f"v{i}", vcpus=8, mem=1.0) for i in range(3)]
        assert demand_lower_bound(trace, MACHINE) == 3

    def test_memory_bound(self):
        trace = [vm(f"v{i}", vcpus=1, mem=32.0) for i in range(3)]
        assert demand_lower_bound(trace, MACHINE) == 3

    def test_oversubscription_shrinks_cpu_demand(self):
        trace = [vm(f"v{i}", vcpus=8, mem=1.0, level=LEVEL_3_1) for i in range(3)]
        # 3 * 8/3 = 8 cores => one PM.
        assert demand_lower_bound(trace, MACHINE) == 1

    def test_temporal_overlap_matters(self):
        overlap = [vm("a", vcpus=8, departure=10.0), vm("b", vcpus=8, arrival=5.0)]
        disjoint = [vm("a", vcpus=8, departure=10.0), vm("b", vcpus=8, arrival=10.0)]
        assert demand_lower_bound(overlap, MACHINE) == 2
        assert demand_lower_bound(disjoint, MACHINE) == 1

    def test_minimum_is_one(self):
        assert demand_lower_bound([vm("a", vcpus=1, mem=1.0)], MACHINE) == 1


class TestMinimalCluster:
    def test_exact_fit(self):
        trace = [vm(f"v{i}", vcpus=8, mem=8.0) for i in range(3)]
        sized = minimal_cluster(trace, MACHINE, policy="first_fit",
                                config=SlackVMConfig(levels=(LEVEL_1_1,)))
        assert sized.pms == 3
        assert sized.result.feasible

    def test_fragmentation_needs_extra_pm(self):
        # 3 VMs of 6 vCPUs cannot share PMs of 8 (6+6 > 8): one PM each.
        trace = [vm(f"v{i}", vcpus=6, mem=4.0) for i in range(3)]
        sized = minimal_cluster(trace, MACHINE, policy="first_fit",
                                config=SlackVMConfig(levels=(LEVEL_1_1,)))
        assert sized.lower_bound == 3  # 18/8 -> 3
        assert sized.pms == 3

    def test_fragmentation_above_lower_bound(self):
        # Two 5-vCPU VMs per PM impossible (10 > 8): lb=2, need 3.
        trace = [vm(f"v{i}", vcpus=5, mem=4.0) for i in range(3)]
        sized = minimal_cluster(trace, MACHINE, policy="first_fit",
                                config=SlackVMConfig(levels=(LEVEL_1_1,)))
        assert sized.lower_bound == 2
        assert sized.pms == 3

    def test_departures_enable_reuse(self):
        trace = [
            vm("a", vcpus=8, mem=8.0, departure=10.0),
            vm("b", vcpus=8, mem=8.0, arrival=10.0),
        ]
        sized = minimal_cluster(trace, MACHINE, policy="first_fit",
                                config=SlackVMConfig(levels=(LEVEL_1_1,)))
        assert sized.pms == 1

    def test_impossible_vm_raises(self):
        trace = [vm("giant", vcpus=64, mem=4.0)]
        with pytest.raises(SimulationError):
            minimal_cluster(trace, MACHINE, policy="first_fit",
                            config=SlackVMConfig(levels=(LEVEL_1_1,)))

    def test_empty_workload_rejected(self):
        with pytest.raises(SimulationError):
            minimal_cluster([], MACHINE)

    def test_probes_are_recorded(self):
        trace = [vm(f"v{i}", vcpus=5, mem=4.0) for i in range(3)]
        sized = minimal_cluster(trace, MACHINE, policy="first_fit",
                                config=SlackVMConfig(levels=(LEVEL_1_1,)))
        assert any(not ok for _, ok in sized.probes)
        assert any(ok for _, ok in sized.probes)

    def test_custom_simulation_factory(self):
        calls = []

        def factory(machines):
            from repro.simulator import VectorSimulation

            calls.append(len(machines))
            return VectorSimulation(
                machines, config=SlackVMConfig(levels=(LEVEL_1_1,)),
                policy="first_fit", fail_fast=True,
            )

        trace = [vm("a", vcpus=4, mem=4.0)]
        sized = minimal_cluster(trace, MACHINE, simulation_factory=factory)
        assert sized.pms == 1
        assert calls  # the factory was actually used
