"""Property tests: fault injection preserves every accounting invariant.

Random workloads + random failure schedules: no VM may be double-placed
or leaked, dead hosts stay empty, and every VM is exactly one of
{placed-alive, departed, lost, rejected} at the end.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import OversubscriptionLevel, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.simulator.faults import FaultySimulation, HostFailure

NUM_HOSTS = 3


@st.composite
def scenario(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    vms = []
    for i in range(n):
        arrival = draw(st.floats(min_value=0.0, max_value=50.0))
        departs = draw(st.booleans())
        vms.append(
            VMRequest(
                vm_id=f"vm-{i:03d}",
                spec=VMSpec(
                    draw(st.sampled_from([1, 2, 4, 8])),
                    float(draw(st.sampled_from([1, 2, 4, 8]))),
                ),
                level=OversubscriptionLevel(draw(st.sampled_from([1.0, 2.0, 3.0]))),
                arrival=arrival,
                departure=arrival + draw(st.floats(min_value=0.5, max_value=30.0))
                if departs
                else None,
            )
        )
    k = draw(st.integers(min_value=0, max_value=NUM_HOSTS - 1))
    failures = [
        HostFailure(
            time=draw(st.floats(min_value=0.0, max_value=60.0)),
            host=draw(st.integers(min_value=0, max_value=NUM_HOSTS - 1)),
        )
        for _ in range(k)
    ]
    # A host can only die once.
    seen: set[int] = set()
    failures = [f for f in failures if not (f.host in seen or seen.add(f.host))]
    return vms, failures


@settings(max_examples=60, deadline=None)
@given(case=scenario(), policy=st.sampled_from(["first_fit", "progress"]))
def test_fault_injection_invariants(case, policy):
    vms, failures = case
    machines = [MachineSpec(f"pm-{i}", 16, 64.0) for i in range(NUM_HOSTS)]
    sim = FaultySimulation(machines, failures, config=SlackVMConfig(),
                           policy=policy)
    result = sim.run(vms)

    dead = set(sim.report.failed_hosts)
    lost = set(sim.report.lost_vms)
    rejected = set(result.rejections)

    # Dead hosts are unique and within range.
    assert len(dead) == len(sim.report.failed_hosts)
    assert dead <= set(range(NUM_HOSTS))
    # Lost and rejected sets are disjoint (a VM is lost only after being
    # placed; a rejected VM was never placed).
    assert not (lost & rejected)
    # Every lost VM had a placement record.
    assert lost <= set(result.placements)
    # Timeline allocations never go negative and never exceed the
    # original full capacity.
    _, cpu, mem = result.timeline.as_arrays()
    assert np.all(cpu >= -1e-9) and np.all(mem >= -1e-9)
    assert np.all(cpu <= NUM_HOSTS * 16 + 1e-9)
    assert np.all(mem <= NUM_HOSTS * 64 + 1e-9)
    # Capacity reported net of failures.
    expected_cap = (NUM_HOSTS - len(dead)) * 16
    assert result.capacity_cpu == pytest.approx(expected_cap, abs=1e-6)

