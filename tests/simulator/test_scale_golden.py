"""Scale-tier golden conformance: 5000 hosts, byte-level, every kernel.

The main golden corpus (``tests/fixtures/golden/``) locks the
*instrumented* decision stream — but recording disables the engine's
uninstrumented fast loop, so neither the shape-keyed score cache nor
the pruned kernel's partition structures execute under it.  These
fixtures lock the other path: each ``scale/<policy>.stream`` is the
canonical result stream (:func:`repro.simulator.conformance.
result_stream` — placements in arrival order, rejections, SHA-256 of
the float64 allocation timeline) of an **uninstrumented** naive-kernel
run over a frozen 5000-host trace, and every kernel must reproduce it
byte-for-byte.  5000 hosts spans ~20 pruning partitions, so partition
argmax, counter skips and mutation-log replay all run for real here.

Regenerate (deliberate semantics changes only):
``PYTHONPATH=src python scripts/regen_golden.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.hardware import MachineSpec
from repro.simulator import VectorSimulation, result_stream
from repro.simulator.vectorpool import KERNELS, POLICIES
from repro.workload.traces import load_trace

SCALE_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden" / "scale"

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def manifest() -> dict:
    return json.loads((SCALE_DIR / "manifest.json").read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def workload():
    return load_trace(SCALE_DIR / "trace.jsonl")


@pytest.fixture(scope="module")
def machines(manifest):
    return [
        MachineSpec(f"pm-{i}", manifest["host_cpus"], manifest["host_mem_gb"])
        for i in range(manifest["num_hosts"])
    ]


def test_corpus_covers_every_policy(manifest):
    assert sorted(manifest["policies"]) == sorted(POLICIES)
    for policy in POLICIES:
        assert (SCALE_DIR / f"{policy}.stream").is_file()


def test_manifest_matches_trace(manifest, workload):
    assert manifest["num_vms"] == len(workload)


def test_fixture_spans_many_pruning_partitions(manifest):
    # The whole point of the tier: the pruned kernel's partition
    # structures must be non-trivial (one block would degenerate to
    # the full scan it is supposed to avoid).
    from repro.simulator.prunekernel import PRUNE_BLOCK

    assert manifest["num_hosts"] // PRUNE_BLOCK >= 10


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("policy", POLICIES)
def test_kernel_reproduces_stream_byte_identically(
    machines, workload, policy, kernel
):
    golden = (SCALE_DIR / f"{policy}.stream").read_text(encoding="utf-8")
    result = VectorSimulation(machines, policy=policy, kernel=kernel).run(workload)
    assert result_stream(result) == golden
