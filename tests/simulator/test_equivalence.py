"""Property tests: the vectorized engine must be semantically identical
to the reference object-path engine (same placements, same rejections,
same timelines) for every policy, on random workloads.

This is the load-bearing guarantee that lets the at-scale benches run
on the fast path while the paper's mechanisms stay validated on the
readable path.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import OversubscriptionLevel, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.scheduling import (
    best_fit_scheduler,
    first_fit_scheduler,
    slackvm_combined_scheduler,
    slackvm_scheduler,
    worst_fit_scheduler,
)
from repro.scheduling.global_scheduler import ScoreBasedScheduler
from repro.scheduling.weighers import FirstFitWeigher, ProgressWeigher, WorstFitWeigher
from repro.localsched import LocalScheduler
from repro.simulator import Simulation, VectorSimulation, build_hosts

MACHINE = MachineSpec("pm", 16, 64.0)

OBJECT_SCHEDULERS = {
    "first_fit": first_fit_scheduler,
    "best_fit": best_fit_scheduler,
    "worst_fit": worst_fit_scheduler,
    "progress": slackvm_scheduler,
    "progress_no_factor": lambda: slackvm_scheduler(negative_factor=False),
    "progress_bestfit": slackvm_combined_scheduler,
}


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    vms = []
    for i in range(n):
        vcpus = draw(st.sampled_from([1, 2, 4, 8]))
        mem = float(draw(st.sampled_from([1, 2, 4, 8, 16])))
        ratio = draw(st.sampled_from([1.0, 2.0, 3.0]))
        arrival = draw(st.floats(min_value=0.0, max_value=100.0))
        stays = draw(st.booleans())
        lifetime = draw(st.floats(min_value=0.5, max_value=50.0))
        vms.append(
            VMRequest(
                vm_id=f"vm-{i:03d}",
                spec=VMSpec(vcpus, mem),
                level=OversubscriptionLevel(ratio),
                arrival=arrival,
                departure=None if stays else arrival + lifetime,
            )
        )
    return vms


def run_both(workload, policy, pooling, num_hosts=3):
    cfg = SlackVMConfig(pooling=pooling)
    hosts = build_hosts(MACHINE, num_hosts, cfg)
    obj = Simulation(hosts, OBJECT_SCHEDULERS[policy]()).run(workload)
    machines = [MachineSpec(f"pm-{i}", 16, 64.0) for i in range(num_hosts)]
    vec = VectorSimulation(machines, config=cfg, policy=policy).run(workload)
    return obj, vec


def assert_identical(obj, vec):
    assert set(obj.placements) == set(vec.placements)
    for vm_id, rec in obj.placements.items():
        vrec = vec.placements[vm_id]
        assert rec.host == vrec.host, vm_id
        assert rec.hosted_ratio == vrec.hosted_ratio, vm_id
        assert rec.pooled == vrec.pooled, vm_id
    assert obj.rejections == vec.rejections
    assert obj.pooled_placements == vec.pooled_placements
    assert obj.timeline.alloc_cpu == vec.timeline.alloc_cpu
    assert obj.timeline.alloc_mem == vec.timeline.alloc_mem


@settings(max_examples=60, deadline=None)
@given(workload=workloads(), pooling=st.booleans())
def test_first_fit_engines_agree(workload, pooling):
    assert_identical(*run_both(workload, "first_fit", pooling))


@settings(max_examples=60, deadline=None)
@given(workload=workloads(), pooling=st.booleans())
def test_progress_engines_agree(workload, pooling):
    assert_identical(*run_both(workload, "progress", pooling))


@settings(max_examples=30, deadline=None)
@given(workload=workloads())
def test_progress_no_factor_engines_agree(workload):
    assert_identical(*run_both(workload, "progress_no_factor", pooling=True))


@settings(max_examples=30, deadline=None)
@given(workload=workloads())
def test_best_fit_engines_agree(workload):
    assert_identical(*run_both(workload, "best_fit", pooling=True))


@settings(max_examples=30, deadline=None)
@given(workload=workloads())
def test_progress_bestfit_engines_agree(workload):
    assert_identical(*run_both(workload, "progress_bestfit", pooling=True))


@settings(max_examples=30, deadline=None)
@given(workload=workloads())
def test_worst_fit_engines_agree(workload):
    assert_identical(*run_both(workload, "worst_fit", pooling=True))


@settings(max_examples=30, deadline=None)
@given(workload=workloads(), data=st.data())
def test_mixed_fleet_engines_agree(workload, data):
    """Per-host level restrictions (dedicated/shared mixed fleets) must
    also match between engines, pooling included."""
    num_hosts = 3
    all_sets = [(1.0,), (2.0,), (3.0,), (1.0, 2.0), (2.0, 3.0),
                (1.0, 2.0, 3.0)]
    host_levels = [data.draw(st.sampled_from(all_sets)) for _ in range(num_hosts)]
    machines = [MachineSpec(f"pm-{i}", 16, 64.0) for i in range(num_hosts)]
    vec = VectorSimulation(machines, config=SlackVMConfig(pooling=True),
                           policy="first_fit", host_levels=host_levels).run(workload)
    hosts = [
        LocalScheduler(
            m,
            SlackVMConfig(
                levels=tuple(OversubscriptionLevel(r) for r in ratios),
                pooling=True,
            ),
        )
        for m, ratios in zip(machines, host_levels)
    ]
    obj = Simulation(hosts, first_fit_scheduler()).run(workload)
    assert_identical(obj, vec)
