"""Invariant property tests for the pruned kernel's partition summaries.

The pruned kernel is only allowed to *skip* work, never to change an
answer, so its two summary structures carry hard invariants against
the full arrays they summarise:

* per-shape **partition maxima** — after any mutation-log replay,
  ``blockmax[b]`` must equal the true maximum of its masked-score
  slice (a stale maximum could hide the argmax host inside an
  unvisited partition), and the two-stage argmax must land exactly on
  ``np.argmax(masked)``, first-maximal tie-breaks included;
* per-level **candidate counters** — ``cand_counts[li, b]`` must equal
  the popcount of its candidate-mask slice, and the mask itself must
  stay a superset of exact feasibility, because a zero counter makes
  ``first_fit`` skip the partition without looking: no feasible host
  may be silently unreachable.

The suite drives a pruned cluster through random operation sequences
(hypothesis) and checks the invariants after every replay-triggering
``select``; plus directed unit tests for the ``PruneState`` primitives
over adversarial arrays (all ``-inf``, ties across partition
boundaries, ragged final partition).
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import OversubscriptionLevel, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.simulator.prunekernel import PruneState
from repro.simulator.vectorpool import POLICIES, VectorCluster

RATIOS = (1.0, 2.0, 3.0)


# -- PruneState primitives ---------------------------------------------


@given(
    values=st.lists(
        st.one_of(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.just(-np.inf),
        ),
        min_size=1,
        max_size=60,
    ),
    block=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=200, deadline=None)
def test_partition_argmax_matches_numpy(values, block):
    masked = np.asarray(values, dtype=float)
    state = PruneState(masked.shape[0], 1, block=block)
    blockmax = state.block_maxima(masked)
    assert np.array_equal(
        blockmax, [masked[i : i + block].max() for i in range(0, len(values), block)]
    )
    assert state.argmax(masked, blockmax) == int(np.argmax(masked))


@given(
    n=st.integers(min_value=1, max_value=50),
    block=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
@settings(max_examples=200, deadline=None)
def test_incremental_blockmax_update_stays_exact(n, block, data):
    masked = np.asarray(
        data.draw(
            st.lists(
                st.floats(min_value=-100, max_value=100),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=float,
    )
    state = PruneState(n, 1, block=block)
    blockmax = state.block_maxima(masked)
    for _ in range(data.draw(st.integers(min_value=1, max_value=5))):
        k = data.draw(st.integers(min_value=1, max_value=min(n, 6)))
        idx = np.asarray(
            sorted(
                data.draw(
                    st.sets(
                        st.integers(min_value=0, max_value=n - 1),
                        min_size=k,
                        max_size=k,
                    )
                )
            ),
            dtype=np.intp,
        )
        masked[idx] = data.draw(
            st.lists(
                st.one_of(
                    st.floats(min_value=-100, max_value=100), st.just(-np.inf)
                ),
                min_size=len(idx),
                max_size=len(idx),
            )
        )
        state.update_block_maxima(masked, blockmax, idx)
        assert np.array_equal(blockmax, state.block_maxima(masked))
        assert state.argmax(masked, blockmax) == int(np.argmax(masked))


def test_ties_across_partition_boundaries_pick_first():
    # Equal maxima in partitions 0 and 2: np.argmax semantics demand
    # the first one, through the two-stage path as well.
    masked = np.array([1.0, 5.0, 0.0, 0.0, 3.0, 5.0], dtype=float)
    state = PruneState(6, 1, block=2)
    assert state.argmax(masked, state.block_maxima(masked)) == 1


def test_all_minus_inf_returns_first_index():
    masked = np.full(7, -np.inf)
    state = PruneState(7, 1, block=3)
    assert state.argmax(masked, state.block_maxima(masked)) == 0


def test_cand_counter_primitives():
    state = PruneState(10, 2, block=4)  # ragged: blocks of 4, 4, 2
    cand = np.zeros((2, 10), dtype=bool)
    cand[0, [0, 3, 9]] = True
    cand[1, [4]] = True
    state.rebuild_cand_counts(cand)
    assert state.cand_counts.tolist() == [[2, 0, 1], [0, 1, 0]]
    state.adjust_cand_bit(0, 5, False, True)
    assert state.cand_counts[0].tolist() == [2, 1, 1]
    state.adjust_cand_bit(0, 5, True, True)  # no-op transition
    assert state.cand_counts[0].tolist() == [2, 1, 1]
    state.adjust_cand_bit(0, 9, True, False)
    assert state.cand_counts[0].tolist() == [2, 1, 0]


# -- whole-cluster invariants under random operation streams -----------


def _vm(i: int, vcpus: int, mem: float, ratio: float) -> VMRequest:
    return VMRequest(
        vm_id=f"vm-{i:03d}",
        spec=VMSpec(vcpus, mem),
        level=OversubscriptionLevel(ratio),
    )


def _check_summary_invariants(cluster: VectorCluster) -> None:
    state = cluster._prune
    assert state is not None
    # Every cached shape that is fully replayed (entry[0] == log
    # position) must carry exact partition maxima for its masked
    # vector — the "no feasible host silently unreachable" guarantee
    # for scored policies.
    pos = len(cluster._mutlog)
    for key, entry in cluster._shape_cache.items():
        if entry[0] != pos or len(entry) < 3:
            continue
        assert np.array_equal(entry[2], state.block_maxima(entry[1])), key
        assert state.argmax(entry[1], entry[2]) == int(np.argmax(entry[1])), key
    # Candidate counters must agree with the mask they summarise, and
    # the mask must stay a superset of exact per-level feasibility.
    cluster._sync_cand()
    expect = np.add.reduceat(
        cluster._cand.astype(np.int64), state.starts, axis=1
    )
    assert np.array_equal(state.cand_counts, expect)


def _check_cand_superset(cluster: VectorCluster, vm: VMRequest) -> None:
    li = cluster._vm_level_index(vm)
    cluster._sync_cand()
    feasible = cluster._feasibility_block(vm, li, slice(0, cluster.num_hosts))
    unreachable = feasible & ~cluster._cand[li]
    assert not unreachable.any(), (vm, np.flatnonzero(unreachable))


@st.composite
def op_stream(draw):
    num_hosts = draw(st.integers(min_value=1, max_value=10))
    machines = [
        MachineSpec(
            f"pm-{i}",
            draw(st.sampled_from([4, 8, 16])),
            float(draw(st.sampled_from([16, 32, 64]))),
        )
        for i in range(num_hosts)
    ]
    num_ops = draw(st.integers(min_value=1, max_value=30))
    ops = []
    for i in range(num_ops):
        kind = draw(st.sampled_from(["arrive"] * 3 + ["depart", "kill", "capacity"]))
        if kind == "arrive":
            ops.append(
                (
                    "arrive",
                    _vm(
                        i,
                        draw(st.sampled_from([1, 2, 4])),
                        float(draw(st.sampled_from([1, 2, 4, 8]))),
                        draw(st.sampled_from(RATIOS)),
                    ),
                )
            )
        elif kind == "depart":
            ops.append(("depart", draw(st.integers(min_value=0, max_value=10**6))))
        elif kind == "kill":
            ops.append(("kill", draw(st.integers(min_value=0, max_value=num_hosts - 1))))
        else:
            ops.append(("capacity", draw(st.sampled_from([0.5, 1.0, 1.5]))))
    return machines, ops


@pytest.mark.slow
@settings(max_examples=60, deadline=None)
@given(case=op_stream(), policy=st.sampled_from(POLICIES))
def test_partition_summaries_stay_consistent(case, policy):
    machines, ops = case
    cluster = VectorCluster(machines, SlackVMConfig(), kernel="pruned")
    dead: set[int] = set()
    for op, arg in ops:
        if op == "arrive":
            host = cluster.select(arg, policy)
            _check_summary_invariants(cluster)
            _check_cand_superset(cluster, arg)
            if host is not None:
                cluster.deploy(arg, host)
        elif op == "depart":
            placed = cluster.placed_vm_ids
            if placed:
                cluster.remove(placed[arg % len(placed)])
        elif op == "kill":
            if arg in dead:
                continue
            for vm_id in cluster.vms_on(arg):
                cluster.remove(vm_id)
            cluster.kill_host(arg)
            dead.add(arg)
        else:
            cluster.set_effective_capacity(cluster.physical_cpu * arg)
    probe = _vm(10**6, 1, 2.0, 2.0)
    cluster.select(probe, policy)
    _check_summary_invariants(cluster)
    _check_cand_superset(cluster, probe)
