"""Per-host level restriction tests (mixed dedicated/shared fleets)."""

import pytest

from repro.core import (
    ConfigError,
    LEVEL_1_1,
    LEVEL_2_1,
    LEVEL_3_1,
    OversubscriptionLevel,
    SlackVMConfig,
    VMRequest,
    VMSpec,
)
from repro.hardware import MachineSpec
from repro.localsched import LocalScheduler
from repro.scheduling import first_fit_scheduler
from repro.simulator import Simulation, VectorCluster, VectorSimulation


def vm(vm_id, vcpus=2, mem=4.0, level=LEVEL_2_1, arrival=0.0, departure=None):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level,
                     arrival=arrival, departure=departure)


def machines(n=3, cpus=8, mem=32.0):
    return [MachineSpec(f"pm-{i}", cpus, mem) for i in range(n)]


def test_unsupported_host_is_infeasible():
    cluster = VectorCluster(machines(2), SlackVMConfig(),
                            host_levels=[(1.0,), (1.0, 2.0, 3.0)])
    feasible, _, _ = cluster.feasibility(vm("x", level=LEVEL_2_1))
    assert list(feasible) == [False, True]


def test_deploy_on_unsupported_host_rejected():
    from repro.core import CapacityError

    cluster = VectorCluster(machines(2), SlackVMConfig(),
                            host_levels=[(1.0,), (1.0, 2.0, 3.0)])
    with pytest.raises(CapacityError):
        cluster.deploy(vm("x", level=LEVEL_2_1), host=0)


def test_pooling_requires_supported_levels():
    # Host offers 2:1 and 3:1 but NOT the VM's 3:1... construct: host
    # supports only (2.0,): a 3:1 VM cannot pool into it because its own
    # level is not offered there.
    cluster = VectorCluster(machines(1), SlackVMConfig(pooling=True),
                            host_levels=[(2.0,)])
    cluster.deploy(vm("mid", vcpus=3, level=LEVEL_2_1), host=0)
    feasible, _, _ = cluster.feasibility(vm("low", vcpus=1, level=LEVEL_3_1))
    assert not feasible.any()


def test_validation():
    with pytest.raises(ConfigError):
        VectorCluster(machines(2), SlackVMConfig(), host_levels=[(1.0,)])
    with pytest.raises(ConfigError):
        VectorCluster(machines(1), SlackVMConfig(), host_levels=[()])
    with pytest.raises(ConfigError):
        VectorCluster(machines(1), SlackVMConfig(), host_levels=[(7.0,)])


def test_mixed_fleet_matches_object_path():
    """A fleet of one premium-only PM, one oversub-only PM and one
    shared PM must behave identically in both engines."""
    host_levels = [(1.0,), (2.0, 3.0), (1.0, 2.0, 3.0)]
    trace = [
        vm("p1", vcpus=4, level=LEVEL_1_1),
        vm("m1", vcpus=4, level=LEVEL_2_1, arrival=1.0),
        vm("l1", vcpus=3, level=LEVEL_3_1, arrival=2.0),
        vm("p2", vcpus=6, level=LEVEL_1_1, arrival=3.0),
        vm("m2", vcpus=8, level=LEVEL_2_1, arrival=4.0, departure=10.0),
        vm("l2", vcpus=6, level=LEVEL_3_1, arrival=5.0),
        vm("p3", vcpus=8, level=LEVEL_1_1, arrival=6.0),
    ]
    vec = VectorSimulation(machines(), policy="first_fit",
                           host_levels=host_levels).run(trace)

    def cfg(ratios):
        return SlackVMConfig(
            levels=tuple(OversubscriptionLevel(r) for r in ratios)
        )

    hosts = [LocalScheduler(m, cfg(r)) for m, r in zip(machines(), host_levels)]
    obj = Simulation(hosts, first_fit_scheduler()).run(trace)
    assert {k: v.host for k, v in vec.placements.items()} == {
        k: v.host for k, v in obj.placements.items()
    }
    assert vec.rejections == obj.rejections


def test_dedicated_fleet_equals_separate_clusters():
    """A fully dedicated mixed fleet must reject exactly what separate
    dedicated clusters would reject."""
    host_levels = [(1.0,), (3.0,)]
    trace = [
        vm("a", vcpus=8, level=LEVEL_1_1),
        vm("b", vcpus=8, level=LEVEL_1_1, arrival=1.0),  # host 0 full
        vm("c", vcpus=24, level=LEVEL_3_1, arrival=2.0),
    ]
    result = VectorSimulation(machines(2), policy="first_fit",
                              host_levels=host_levels).run(trace)
    assert result.rejections == ["b"]
    assert result.placements["c"].host == 1
