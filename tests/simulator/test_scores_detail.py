"""Hand-computed score checks for the vector engine.

The equivalence suite proves vector == object; these tests pin the
actual numbers against Algorithm 2 computed by hand, so a bug that hit
*both* engines identically would still be caught.
"""

import math

import numpy as np
import pytest

from repro.core import LEVEL_1_1, LEVEL_2_1, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import MachineSpec
from repro.simulator import VectorCluster


def vm(vm_id, vcpus, mem, level=LEVEL_1_1):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level)


@pytest.fixture
def cluster():
    # One PM: 32 CPUs / 128 GB => target ratio 4.
    return VectorCluster([MachineSpec("pm", 32, 128.0)], SlackVMConfig())


def test_progress_score_by_hand(cluster):
    cluster.deploy(vm("seed", 10, 20.0), host=0)  # alloc (10, 20), ratio 2
    candidate = vm("x", 2, 28.0)
    # Algorithm 2: target 4; current |2-4| = 2; next (48/12) = 4 -> |0|;
    # progress = 2 - 0 = 2; positive => no factor; tiebreak -0*1e-9.
    score = cluster.scores(candidate, "progress")[0]
    assert score == pytest.approx(2.0)


def test_negative_progress_factor_by_hand(cluster):
    cluster.deploy(vm("seed", 10, 20.0), host=0)
    candidate = vm("x", 4, 4.0)  # next = 24/14 ~ 1.714
    current_delta = abs(20 / 10 - 4)
    next_delta = abs(24 / 14 - 4)
    raw = current_delta - next_delta
    expected = raw * (1 + 10 / 32)
    assert raw < 0
    assert cluster.scores(candidate, "progress")[0] == pytest.approx(expected)
    assert cluster.scores(candidate, "progress_no_factor")[0] == pytest.approx(raw)


def test_empty_pm_progress_uses_vm_ratio(cluster):
    balanced = vm("x", 4, 16.0)  # ratio 4 == target
    skewed = vm("y", 4, 4.0)  # ratio 1
    assert cluster.scores(balanced, "progress")[0] == pytest.approx(0.0)
    # current = target (line 6) => progress = 0 - |1-4| = -3, times factor 1.
    assert cluster.scores(skewed, "progress")[0] == pytest.approx(-3.0)


def test_best_fit_score_by_hand(cluster):
    candidate = vm("x", 8, 32.0)
    # After placement: free cpu share (32-8)/32 = 0.75, mem (128-32)/128
    # = 0.75 => free = 1.5; best-fit score = -1.5 (+ tiebreak 0).
    assert cluster.scores(candidate, "best_fit")[0] == pytest.approx(-1.5)
    assert cluster.scores(candidate, "worst_fit")[0] == pytest.approx(1.5)


def test_oversubscribed_vm_counts_fractional_cpu(cluster):
    candidate = vm("x", 8, 32.0, level=LEVEL_2_1)
    # Physical cpu 8/2 = 4: free = (32-4)/32 + (128-32)/128 = 0.875+0.75.
    assert cluster.scores(candidate, "best_fit")[0] == pytest.approx(-(0.875 + 0.75))


def test_tiebreak_orders_hosts(cluster):
    multi = VectorCluster(
        [MachineSpec(f"pm-{i}", 32, 128.0) for i in range(3)], SlackVMConfig()
    )
    scores = multi.scores(vm("x", 4, 16.0), "progress")
    # Identical states: only the -1e-9 * index tiebreak differs.
    assert scores[0] > scores[1] > scores[2]
    assert scores[0] - scores[2] == pytest.approx(2e-9)


def test_growth_reflects_ceil_boundary(cluster):
    cluster.deploy(vm("a", 3, 4.0, level=LEVEL_2_1), host=0)  # 2 CPUs, slack 1
    one = vm("one", 1, 1.0, level=LEVEL_2_1)
    _, growth, _ = cluster.feasibility(one)
    assert growth[0] == 0.0  # fits in slack
    two = vm("two", 2, 1.0, level=LEVEL_2_1)
    _, growth, _ = cluster.feasibility(two)
    assert growth[0] == 1.0  # ceil(5/2)=3 > 2
