"""Tests of the peak-usage predictors."""

import numpy as np
import pytest

from repro.core import ConfigError, LEVEL_3_1, VMRequest, VMSpec
from repro.dynamiclevels import (
    MeanStdPredictor,
    PercentilePredictor,
    analytic_peak_demand,
)


def vm(kind, param, vcpus=4):
    return VMRequest(vm_id="vm", spec=VMSpec(vcpus, 4.0), level=LEVEL_3_1,
                     usage_kind=kind, usage_param=param)


class TestSamplePredictors:
    def test_percentile_predictor(self):
        samples = np.arange(101, dtype=float)
        assert PercentilePredictor(99.0).predict(samples) == pytest.approx(99.0)

    def test_percentile_bounds(self):
        with pytest.raises(ConfigError):
            PercentilePredictor(0.0)
        with pytest.raises(ConfigError):
            PercentilePredictor(101.0)

    def test_meanstd_predictor(self):
        samples = np.array([1.0, 1.0, 1.0])
        assert MeanStdPredictor(3.0).predict(samples) == pytest.approx(1.0)
        # Sample std (ddof=1): std([0, 2]) = sqrt(2), not 1.
        noisy = np.array([0.0, 2.0])
        assert MeanStdPredictor(1.0).predict(noisy) == pytest.approx(
            1.0 + np.sqrt(2.0)
        )

    def test_percentile_ignores_nan_gaps(self):
        # Recorded traces have gaps; NaN must not leak into scores.
        gappy = np.array([1.0, np.nan, 3.0, np.nan])
        result = PercentilePredictor(100.0).predict(gappy)
        assert result == pytest.approx(3.0)
        assert not np.isnan(result)

    def test_percentile_rejects_all_nan_window(self):
        with pytest.raises(ConfigError):
            PercentilePredictor().predict(np.array([np.nan, np.nan]))

    def test_meanstd_single_sample_has_no_spread(self):
        # ddof=1 on one sample would be NaN; the guard predicts the
        # sample itself.
        assert MeanStdPredictor(3.0).predict(np.array([5.0])) == 5.0

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigError):
            PercentilePredictor().predict(np.array([]))
        with pytest.raises(ConfigError):
            MeanStdPredictor().predict(np.array([]))

    def test_negative_k_rejected(self):
        with pytest.raises(ConfigError):
            MeanStdPredictor(-1.0)


class TestAnalyticPeak:
    def test_idle_vm_has_tiny_peak(self):
        assert analytic_peak_demand(vm("idle", 0.0)) < 0.5

    def test_stress_peak_scales_with_param(self):
        low = analytic_peak_demand(vm("stress", 0.2))
        high = analytic_peak_demand(vm("stress", 0.6))
        assert high == pytest.approx(3 * low)

    def test_interactive_includes_diurnal_headroom(self):
        flat = analytic_peak_demand(vm("stress", 0.4), safety=1.0)
        diurnal = analytic_peak_demand(vm("interactive", 0.4), safety=1.0)
        assert diurnal == pytest.approx(1.5 * flat)

    def test_peak_never_exceeds_vcpus(self):
        assert analytic_peak_demand(vm("stress", 1.0, vcpus=2), safety=2.0) == 2.0

    def test_unknown_kind_assumes_worst(self):
        assert analytic_peak_demand(vm("batch", 0.1), safety=1.0) == 4.0

    def test_interactive_peak_clamped_at_full_utilisation(self):
        # InteractiveProfile.demand clamps at 1.0; the analytic peak
        # must agree.  For base > 1/(1+amplitude) the clamped peak
        # equals a flat-out stress VM's — not 1.2× it.
        hot = analytic_peak_demand(vm("interactive", 0.9), safety=1.0)
        flat_out = analytic_peak_demand(vm("stress", 1.0), safety=1.0)
        assert hot == flat_out == 4.0

    def test_interactive_amplitude_is_shared_constant(self):
        # The amplitude must come from repro.workload.usage, not a
        # module-local copy that can drift.
        from repro.dynamiclevels import predictor
        from repro.workload.usage import INTERACTIVE_AMPLITUDE

        assert not hasattr(predictor, "_INTERACTIVE_AMPLITUDE")
        boundary = 1.0 / (1.0 + INTERACTIVE_AMPLITUDE)
        assert analytic_peak_demand(
            vm("interactive", boundary), safety=1.0
        ) == pytest.approx(4.0)

    def test_safety_below_one_rejected(self):
        with pytest.raises(ConfigError):
            analytic_peak_demand(vm("stress", 0.5), safety=0.9)
