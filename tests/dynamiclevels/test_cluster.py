"""Tests of the dynamic-level cluster."""

import numpy as np
import pytest

from repro.core import (
    LEVEL_1_1,
    LEVEL_3_1,
    OversubscriptionLevel,
    SlackVMConfig,
    VMRequest,
    VMSpec,
)
from repro.dynamiclevels import DynamicLevelCluster, DynamicLevelParams, DynamicLevelSimulation
from repro.hardware import MachineSpec
from repro.simulator import VectorCluster


def vm(vm_id, vcpus=3, mem=2.0, level=LEVEL_3_1, kind="stress", param=0.2,
       arrival=0.0, departure=None):
    return VMRequest(vm_id=vm_id, spec=VMSpec(vcpus, mem), level=level,
                     usage_kind=kind, usage_param=param,
                     arrival=arrival, departure=departure)


def machines(n=1, cpus=8, mem=64.0):
    return [MachineSpec(f"pm-{i}", cpus, mem) for i in range(n)]


def test_lightly_used_vnode_reserves_below_static():
    cluster = DynamicLevelCluster(machines(), SlackVMConfig(),
                                  DynamicLevelParams(max_ratio=6.0))
    # 12 vCPUs at 3:1 static would need 4 CPUs; peak 12*0.2*1.2 = 2.88.
    for i in range(4):
        cluster.deploy(vm(f"v{i}", vcpus=3, param=0.2), host=0)
    assert cluster.vnode_vcpus[2, 0] == 12
    assert cluster.alloc_cpu[0] == 3  # ceil(2.88), below static 4

    static = VectorCluster(machines(), SlackVMConfig())
    for i in range(4):
        static.deploy(vm(f"v{i}", vcpus=3, param=0.2), host=0)
    assert static.alloc_cpu[0] == 4


def test_max_ratio_floor_bounds_contention():
    cluster = DynamicLevelCluster(machines(), SlackVMConfig(),
                                  DynamicLevelParams(max_ratio=4.0))
    # Nearly idle VMs: predicted peak ~0, but the 4:1 floor holds.
    for i in range(4):
        cluster.deploy(vm(f"v{i}", vcpus=3, kind="idle", param=0.0), host=0)
    assert cluster.alloc_cpu[0] == 3  # ceil(12/4)


def test_premium_level_is_never_dynamic():
    cluster = DynamicLevelCluster(machines(), SlackVMConfig(),
                                  DynamicLevelParams(max_ratio=6.0))
    cluster.deploy(vm("p", vcpus=4, level=LEVEL_1_1, kind="idle", param=0.0), host=0)
    assert cluster.alloc_cpu[0] == 4  # worst-case guarantee preserved


def test_busy_vms_fall_back_to_static_reservation():
    cluster = DynamicLevelCluster(machines(), SlackVMConfig(),
                                  DynamicLevelParams(max_ratio=6.0, safety=1.2))
    # Peak ~ 3*1.0*1.2 capped at vcpus=3: predicted 3 > static ceil(3/3)=1.
    cluster.deploy(vm("hot", vcpus=3, param=1.0), host=0)
    # Dynamic never reserves MORE than static.
    assert cluster.alloc_cpu[0] == 1


def test_remove_restores_zero_state():
    cluster = DynamicLevelCluster(machines(), SlackVMConfig(),
                                  DynamicLevelParams())
    for i in range(3):
        cluster.deploy(vm(f"v{i}"), host=0)
    for i in range(3):
        cluster.remove(f"v{i}")
    assert cluster.alloc_cpu[0] == 0
    assert np.all(cluster.peak_demand == 0)
    assert np.all(cluster.vnode_cpus == 0)


def test_dynamic_admits_more_vms_than_static():
    dyn = DynamicLevelCluster(machines(cpus=8), SlackVMConfig(),
                              DynamicLevelParams(max_ratio=8.0))
    static = VectorCluster(machines(cpus=8), SlackVMConfig())
    n_dyn = n_static = 0
    for i in range(100):
        request = vm(f"v{i}", vcpus=3, mem=0.5, param=0.15)
        if dyn.feasibility(request)[0][0]:
            dyn.deploy(request, 0)
            n_dyn += 1
        request2 = vm(f"w{i}", vcpus=3, mem=0.5, param=0.15)
        if static.feasibility(request2)[0][0]:
            static.deploy(request2, 0)
            n_static += 1
    assert n_dyn > n_static


def test_simulation_end_to_end():
    sim = DynamicLevelSimulation(machines(2), policy="progress")
    trace = [vm(f"v{i}", arrival=float(i), departure=float(i) + 50.0)
             for i in range(10)]
    result = sim.run(trace)
    assert result.feasible
    assert len(result.placements) == 10


def test_pooling_through_dynamic_cluster():
    """§V-B pooling still works when vNodes are demand-sized."""
    from repro.core import LEVEL_2_1

    cluster = DynamicLevelCluster(machines(cpus=8), SlackVMConfig(pooling=True),
                                  DynamicLevelParams(max_ratio=6.0))
    # Fill the PM: premium takes 6 CPUs; a 2:1 vNode with slack.
    cluster.deploy(vm("prem", vcpus=6, mem=4.0, level=LEVEL_1_1,
                      kind="stress", param=1.0), host=0)
    cluster.deploy(vm("mid", vcpus=3, mem=4.0, level=LEVEL_2_1,
                      kind="stress", param=1.0), host=0)
    probe = vm("low", vcpus=1, mem=2.0, level=LEVEL_3_1, kind="stress", param=1.0)
    feasible, _, own = cluster.feasibility(probe)
    record = cluster.deploy(probe, host=0)
    assert record.pooled
    cluster.remove("low")
    assert cluster.vnode_vcpus[1, 0] == 3  # 2:1 vNode restored
