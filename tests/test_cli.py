"""CLI tests (direct main() invocation; no subprocesses needed)."""

import pytest

from repro.cli import build_parser, main


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "azure" in out and "ovhcloud" in out
    assert "Table II" in out and "3:1" in out


def test_generate_and_size_roundtrip(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main(["generate", "--provider", "ovhcloud", "--mix", "F",
                 "--population", "80", "--seed", "1", "-o", str(trace)]) == 0
    assert trace.exists()
    out = capsys.readouterr().out
    assert "wrote" in out

    assert main(["size", str(trace), "--policy", "first_fit"]) == 0
    out = capsys.readouterr().out
    assert "minimal cluster" in out
    assert "lower bound" in out


def test_generate_with_share_mix(tmp_path):
    trace = tmp_path / "trace.jsonl"
    assert main(["generate", "--mix", "40,30,30", "--population", "50",
                 "-o", str(trace)]) == 0


def test_generate_invalid_mix(tmp_path):
    with pytest.raises(SystemExit):
        main(["generate", "--mix", "nope", "-o", str(tmp_path / "x.jsonl")])


def test_evaluate_command(capsys):
    assert main(["evaluate", "--provider", "ovhcloud", "--mix", "F",
                 "--population", "80", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "SlackVM shared cluster" in out
    assert "savings" in out


def test_sweep_command(capsys):
    assert main(["sweep", "--provider", "azure", "--population", "60",
                 "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out and "Figure 4" in out


def test_sweep_command_parallel_checkpoint_resume(tmp_path, capsys):
    out_file = tmp_path / "sweep.jsonl"
    args = ["sweep", "--provider", "ovhcloud", "--population", "40",
            "--mixes", "A,F", "--out", str(out_file)]
    assert main(args + ["--workers", "2"]) == 0
    captured = capsys.readouterr()
    assert "Figure 3" in captured.out
    assert "2 cells run" in captured.err
    first = sorted(out_file.read_text().splitlines())
    # Resuming a complete checkpoint re-runs nothing.
    assert main(args + ["--resume"]) == 0
    captured = capsys.readouterr()
    assert "0 cells run, 2 resumed" in captured.err
    # A fresh serial run of the same spec is byte-identical.
    serial_file = tmp_path / "serial.jsonl"
    assert main(["sweep", "--provider", "ovhcloud", "--population", "40",
                 "--mixes", "A,F", "--out", str(serial_file)]) == 0
    capsys.readouterr()
    assert sorted(serial_file.read_text().splitlines()) == first


def test_sweep_command_num_seeds(capsys):
    assert main(["sweep", "--provider", "ovhcloud", "--population", "40",
                 "--mixes", "F", "--num-seeds", "2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out


def test_sweep_resume_requires_out():
    with pytest.raises(SystemExit, match="--resume requires --out"):
        main(["sweep", "--resume"])


def test_testbed_command(capsys):
    assert main(["testbed", "--duration", "120"]) == 0
    out = capsys.readouterr().out
    assert "Table IV" in out and "Figure 2" in out


def test_custom_machine_spec(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    main(["generate", "--population", "40", "-o", str(trace)])
    capsys.readouterr()
    assert main(["size", str(trace), "--machine", "64:256"]) == 0
    out = capsys.readouterr().out
    assert "64 CPUs" in out


def test_invalid_machine_spec_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["size", "x.jsonl", "--machine", "banana"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_repro_error_returns_exit_code(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"vm_id": "a"}\n')  # missing required fields
    assert main(["size", str(bad)]) == 1
    assert "error:" in capsys.readouterr().err


def test_evaluate_policy_option(capsys):
    assert main(["evaluate", "--mix", "F", "--population", "80",
                 "--seed", "1", "--policy", "progress_bestfit"]) == 0
    assert "savings" in capsys.readouterr().out


def test_audit_command_smoke(tmp_path, capsys):
    """Seeded random workload replayed through both engines: the audit
    must report zero divergences and write the JSON dump."""
    import json

    dump = tmp_path / "audit.json"
    assert main(["audit", "--policy", "progress", "--vms", "40",
                 "--seed", "7", "-o", str(dump)]) == 0
    out = capsys.readouterr().out
    assert "divergences: 0" in out
    assert "object path:" in out and "vector path:" in out
    payload = json.loads(dump.read_text())
    assert payload["ok"] is True
    assert payload["policy"] == "progress"
    assert payload["num_arrivals"] > 0
    assert len(payload["decisions"]["object"]) == payload["num_arrivals"]
    assert len(payload["decisions"]["vector"]) == payload["num_arrivals"]
    assert payload["object"]["metrics"]["arrivals"]["value"] == payload["num_arrivals"]


def test_audit_no_decisions_flag(tmp_path, capsys):
    import json

    dump = tmp_path / "audit.json"
    assert main(["audit", "--vms", "25", "--seed", "3", "--policy", "first_fit",
                 "--pms", "4", "-o", str(dump), "--no-decisions"]) == 0
    payload = json.loads(dump.read_text())
    assert "decisions" not in payload
    assert payload["num_hosts"] == 4


def test_python_dash_m_entry_point():
    """``python -m repro`` must expose the same CLI."""
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0
    assert "audit" in proc.stdout


def test_shard_command_verify_and_baseline(capsys):
    assert main(["shard", "--provider", "ovhcloud", "--mix", "F",
                 "--population", "40", "--seed", "3", "--hosts", "6",
                 "--shards", "2", "--workers", "1",
                 "--verify", "--baseline"]) == 0
    out = capsys.readouterr().out
    assert "2 shard(s) via hash routing" in out
    assert "byte-identical" in out
    assert "unsharded baseline" in out


def test_shard_command_checkpoint_resume(tmp_path, capsys):
    ckpt = str(tmp_path / "shards.jsonl")
    args = ["shard", "--population", "40", "--seed", "3", "--hosts", "6",
            "--shards", "3", "--workers", "1", "--checkpoint", ckpt]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args + ["--resume"]) == 0
    resumed = capsys.readouterr().out
    # Identical placed/rejected/pooled counts whether computed or
    # replayed from the checkpoint (the wall clock line differs).
    def counts(out):
        line = next(ln for ln in out.splitlines() if ln.startswith("sharded"))
        return line.split("ev/s), ")[1]
    assert counts(first) == counts(resumed)


def test_shard_resume_requires_checkpoint():
    with pytest.raises(SystemExit, match="--resume requires --checkpoint"):
        main(["shard", "--resume", "--hosts", "4", "--population", "10"])


def test_serve_command_writes_slo_report(tmp_path, capsys):
    import json
    import math

    report = tmp_path / "slo.json"
    assert main(["serve", "--duration", "3", "--rate", "20", "--seed", "7",
                 "--report", str(report)]) == 0
    out = capsys.readouterr().out
    assert "placement latency p50" in out
    assert "timeout rate" in out
    payload = json.loads(report.read_text(encoding="utf-8"))
    assert math.isfinite(payload["latency"]["placement_p99_s"])
    assert payload["counts"]["arrivals"] > 0
    assert payload["spec"]["seed"] == 7
    assert payload["decision_log"]


def test_serve_command_sharded(capsys):
    assert main(["serve", "--duration", "2", "--rate", "20", "--seed", "3",
                 "--shards", "2", "--queue-bound", "8"]) == 0
    out = capsys.readouterr().out
    assert "2 shard(s)" in out


def test_evaluate_with_shards(capsys):
    assert main(["evaluate", "--provider", "ovhcloud", "--mix", "F",
                 "--population", "60", "--seed", "1",
                 "--shards", "2"]) == 0
    assert "savings" in capsys.readouterr().out
