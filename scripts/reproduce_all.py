#!/usr/bin/env python3
"""Regenerate every paper artifact into one consolidated report.

A thin orchestrator over the same code paths the benches use; writes
``REPORT.md`` (default) with every table and figure, ready to diff
against EXPERIMENTS.md.

Run: python scripts/reproduce_all.py [--fast] [--workers N] [-o REPORT.md]
     (--fast uses smaller populations/durations; ~30 s instead of ~2 min)

The Figure 3/4 sweeps run through ``repro.runner``, sharded over
``--workers`` processes (default: all cores).  The runner's
determinism contract keeps the report bit-identical for any worker
count, so parallelism only changes the wall clock.
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path

from repro.analysis import (
    render_fig2,
    render_fig3,
    render_fig4,
    render_table1,
    render_table2,
    render_table4,
    table1_row,
    table2_row,
)
from repro.oversub.evaluate import OversubSweepSpec, run_oversub_sweep
from repro.perfmodel import TestbedParams, run_testbed
from repro.runner import parallel_fig3_series, parallel_fig4_grid
from repro.workload import AZURE, OVHCLOUD, PROVIDERS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="smaller populations/durations")
    parser.add_argument("--workers", type=int, default=os.cpu_count() or 1,
                        help="process-pool width for the Fig. 3/4 sweeps "
                             "(default: all cores; results are identical "
                             "for any value)")
    parser.add_argument("-o", "--output", default="REPORT.md")
    args = parser.parse_args()

    population = 150 if args.fast else 500
    duration = 600.0 if args.fast else 1800.0
    seeds = (42,) if args.fast else (42, 7)
    started = time.perf_counter()
    sections: list[str] = ["# SlackVM reproduction report", ""]

    def add(title: str, body: str) -> None:
        sections.extend([f"## {title}", "", "```", body, "```", ""])
        print(f"[{time.perf_counter() - started:6.1f}s] {title}")

    t1 = {name: (r.mean_vcpus, r.mean_mem_gb)
          for name, r in ((n, table1_row(c)) for n, c in PROVIDERS.items())}
    add("Table I — mean vCPU & vRAM per VM", render_table1(t1))

    t2 = {name: table2_row(cat).ratios for name, cat in PROVIDERS.items()}
    add("Table II — M/C ratio per oversubscription level", render_table2(t2))

    testbed = run_testbed(TestbedParams(duration=duration))
    add("Table IV — median p90 response times", render_table4(testbed.table4()))
    add("Figure 2 — p90 quartiles (ms)", render_fig2({
        "baseline": {k: v.quartiles_ms() for k, v in testbed.baseline.items()},
        "slackvm": {k: v.quartiles_ms() for k, v in testbed.slackvm.items()},
    }))

    fig3 = parallel_fig3_series(OVHCLOUD, target_population=population,
                                seed=seeds[0], workers=args.workers)
    add("Figure 3 — unallocated resources (OVHcloud)", render_fig3(fig3))

    for catalog in (OVHCLOUD, AZURE):
        grid = parallel_fig4_grid(catalog, target_population=population,
                                  seeds=seeds, workers=args.workers)
        add(f"Figure 4 — PM savings % ({catalog.name})", render_fig4(grid))

    oversub = run_oversub_sweep(OversubSweepSpec(
        providers=("azure", "ovhcloud"), mixes=("F", "J"), seeds=(42,),
        target_population=60 if args.fast else 120,
    ))
    add("Dynamic oversubscription — packing gain vs violation risk "
        "(§VIII, scarcity 0.5)", oversub.table())

    out = Path(args.output)
    out.write_text("\n".join(sections), encoding="utf-8")
    print(f"\nWrote {out} in {time.perf_counter() - started:.1f}s")


if __name__ == "__main__":
    main()
