#!/usr/bin/env python
"""Regenerate the golden decision-trace corpus.

Usage::

    PYTHONPATH=src python scripts/regen_golden.py

Freezes, under ``tests/fixtures/golden/``:

* ``trace.jsonl`` — a small seeded workload (the *frozen trace*; the
  conformance suite replays this file, never the RNG, so fixture
  stability does not depend on numpy's bit-stream across versions);
* ``<policy>.jsonl`` — one JSON-Lines decision stream per placement
  policy, recorded with the **naive** reference kernel
  (:mod:`repro.simulator.refkernel`), the pre-change oracle;
* ``manifest.json`` — cluster shape, per-policy summaries and the
  generation parameters, for provenance.

``tests/simulator/test_golden_trace.py`` replays the frozen trace
through the incremental and pruned kernels (byte-identical stream
required), the naive kernel (ditto) and the object engine
(field-level diff via :func:`repro.obs.audit.diff_decision_streams`).

Additionally freezes the **scale tier** under
``tests/fixtures/golden/scale/``: a 5000-host trace and one canonical
*result stream* per policy (:func:`repro.simulator.conformance.
result_stream`), recorded with the naive kernel through the
uninstrumented run loop.  Decision recording disables the engine's
fast path, so only these result-stream fixtures pin the shape-cache
and pruned-kernel selection code that production runs execute;
``tests/simulator/test_scale_golden.py`` replays them for every
kernel, byte-for-byte.

Regenerate only when a *deliberate* decision-semantics change lands,
and say so in the commit message.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.hardware import MachineSpec  # noqa: E402
from repro.obs.records import JsonlRecorder  # noqa: E402
from repro.simulator import VectorSimulation  # noqa: E402
from repro.simulator.vectorpool import POLICIES  # noqa: E402
from repro.workload.catalog import AZURE  # noqa: E402
from repro.workload.generator import WorkloadParams, generate_workload  # noqa: E402
from repro.workload.traces import load_trace, save_trace  # noqa: E402

GOLDEN_DIR = REPO / "tests" / "fixtures" / "golden"
SCALE_DIR = GOLDEN_DIR / "scale"

#: Generation parameters.  Chosen (seed scan) so every policy rejects
#: at least one VM and most exercise §V-B pooling — the corpus must
#: cover all three admission kinds, not just the happy path.
SEED = 2030
TARGET_POPULATION = 40
LEVEL_MIX = (40, 30, 30)
NUM_HOSTS = 5
HOST_CPUS = 16
HOST_MEM_GB = 64.0

#: Scale tier: enough hosts that the pruned kernel's partition
#: structures span many blocks (5000 hosts = 20 blocks of 256), with a
#: workload small enough that the naive oracle regenerates in seconds.
SCALE_SEED = 2031
SCALE_TARGET_POPULATION = 1200
SCALE_NUM_HOSTS = 5000
SCALE_HOST_CPUS = 48
SCALE_HOST_MEM_GB = 192.0


def machines() -> list[MachineSpec]:
    return [MachineSpec(f"pm-{i}", HOST_CPUS, HOST_MEM_GB) for i in range(NUM_HOSTS)]


def scale_machines() -> list[MachineSpec]:
    return [
        MachineSpec(f"pm-{i}", SCALE_HOST_CPUS, SCALE_HOST_MEM_GB)
        for i in range(SCALE_NUM_HOSTS)
    ]


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    params = WorkloadParams(
        catalog=AZURE,
        level_mix=LEVEL_MIX,
        target_population=TARGET_POPULATION,
        seed=SEED,
    )
    save_trace(generate_workload(params), GOLDEN_DIR / "trace.jsonl")
    # Record from the *loaded* trace — the exact objects the test will
    # replay — so a lossy round-trip can never hide behind regen.
    workload = load_trace(GOLDEN_DIR / "trace.jsonl")

    summaries = {}
    for policy in POLICIES:
        stream = GOLDEN_DIR / f"{policy}.jsonl"
        with JsonlRecorder(stream) as recorder:
            result = VectorSimulation(
                machines(), policy=policy, kernel="naive", recorder=recorder
            ).run(workload)
        summaries[policy] = {
            "placed": len(result.placements),
            "rejected": len(result.rejections),
            "pooled": result.pooled_placements,
        }
        print(f"{policy:20s} {summaries[policy]}")

    manifest = {
        "seed": SEED,
        "catalog": "azure",
        "level_mix": list(LEVEL_MIX),
        "target_population": TARGET_POPULATION,
        "num_vms": len(workload),
        "machines": [
            {"name": m.name, "cpus": m.cpus, "mem_gb": m.mem_gb} for m in machines()
        ],
        "policies": summaries,
    }
    (GOLDEN_DIR / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {len(POLICIES)} streams + trace + manifest to {GOLDEN_DIR}")
    regen_scale_tier()
    return 0


def regen_scale_tier() -> None:
    from repro.simulator.conformance import result_stream

    SCALE_DIR.mkdir(parents=True, exist_ok=True)
    params = WorkloadParams(
        catalog=AZURE,
        level_mix=LEVEL_MIX,
        target_population=SCALE_TARGET_POPULATION,
        seed=SCALE_SEED,
    )
    save_trace(generate_workload(params), SCALE_DIR / "trace.jsonl")
    workload = load_trace(SCALE_DIR / "trace.jsonl")

    summaries = {}
    for policy in POLICIES:
        # The naive kernel through the *uninstrumented* loop is the
        # oracle: no recorder, so the engine takes the same run loop
        # the fast kernels use in production.
        result = VectorSimulation(
            scale_machines(), policy=policy, kernel="naive"
        ).run(workload)
        (SCALE_DIR / f"{policy}.stream").write_text(
            result_stream(result), encoding="utf-8"
        )
        summaries[policy] = {
            "placed": len(result.placements),
            "rejected": len(result.rejections),
            "pooled": result.pooled_placements,
        }
        print(f"scale/{policy:20s} {summaries[policy]}")

    manifest = {
        "seed": SCALE_SEED,
        "catalog": "azure",
        "level_mix": list(LEVEL_MIX),
        "target_population": SCALE_TARGET_POPULATION,
        "num_vms": len(workload),
        "num_hosts": SCALE_NUM_HOSTS,
        "host_cpus": SCALE_HOST_CPUS,
        "host_mem_gb": SCALE_HOST_MEM_GB,
        "policies": summaries,
    }
    (SCALE_DIR / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {len(POLICIES)} result streams + trace + manifest to {SCALE_DIR}")


if __name__ == "__main__":
    raise SystemExit(main())
