#!/usr/bin/env python3
"""Performance isolation on one PM: the paper's physical experiment.

Fills a simulated 2×EPYC-7662 worker (256 threads, 1 TB) with
Azure-sized VMs — 10% idle, 60% CPU benchmark, 30% interactive — under
two scenarios and compares the p90 response times of the interactive
applications per oversubscription level:

* baseline: three dedicated PMs, one per level, no pinning;
* SlackVM: one PM hosting all three levels in topology-pinned vNodes.

Expected shape (paper Table IV): premium 1:1 VMs keep near-baseline
latency, while the 3:1 vNode — pinned to a constrained CPU set that
activates SMT siblings — absorbs the co-hosting penalty.

Run: python examples/testbed_isolation.py [duration_seconds]
"""

import sys

from repro.analysis import render_fig2, render_table4
from repro.perfmodel import TestbedParams, run_testbed


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 1800.0
    params = TestbedParams(duration=duration)
    print(f"Simulating both scenarios for {duration:.0f}s of load "
          f"({params.machine.name}, Azure VM sizes)...")
    result = run_testbed(params)

    print()
    print("VMs co-hosted on the SlackVM PM:",
          ", ".join(f"{k}: {v}" for k, v in result.slackvm_vm_counts.items()))
    print()
    print("Table IV — median of per-window p90 response times")
    print(render_table4(result.table4()))
    print()
    print("Figure 2 — p90 response-time distribution (quartiles)")
    quartiles = {
        "baseline": {k: v.quartiles_ms() for k, v in result.baseline.items()},
        "slackvm": {k: v.quartiles_ms() for k, v in result.slackvm.items()},
    }
    print(render_fig2(quartiles))


if __name__ == "__main__":
    main()
