#!/usr/bin/env python3
"""Control-plane demo: the online service view of a SlackVM cluster.

Drives the `CloudController` API the way an IaaS frontend would:
request VMs at different oversubscription levels, watch the pending
queue absorb a capacity crunch, delete VMs and see queued requests
drain, then inspect the per-host agent reports and the audit log.

Run: python examples/control_plane.py
"""

import numpy as np

from repro.controlplane import CloudController, VMState
from repro.core import DEFAULT_LEVELS, SlackVMConfig, VMSpec
from repro.hardware import MachineSpec
from repro.workload import AZURE


def main() -> None:
    rng = np.random.default_rng(3)
    controller = CloudController(
        [MachineSpec(f"pm-{i}", 32, 128.0) for i in range(3)],
        config=SlackVMConfig(),
    )
    print("Cluster: 3 PMs x 32 CPUs / 128 GB; levels 1:1, 2:1, 3:1\n")

    print("Phase 1 — tenants request 60 VMs (Azure-like flavors)...")
    tickets = []
    for i in range(60):
        spec = AZURE.sample(rng)
        level = DEFAULT_LEVELS[int(rng.integers(3))]
        ticket = controller.request(spec, level, tenant=f"tenant-{i % 5}")
        tickets.append(ticket)
    state = controller.state()
    print(f"  active: {state.active_vms}, pending: {state.pending_vms}, "
          f"CPU allocated: {state.cpu_allocation_share:.0%}, "
          f"memory allocated: {state.mem_allocation_share:.0%}\n")

    print("Phase 2 — a burst of large premium requests hits the queue...")
    burst = [controller.request(VMSpec(16, 64.0), DEFAULT_LEVELS[0],
                                tenant="big-corp") for _ in range(4)]
    for t in burst:
        print(f"  {t.vm_id}: {t.state.value}" +
              (f" on pm-{t.host}" if t.host is not None else ""))
    print()

    print("Phase 3 — early tenants shut down; the queue drains...")
    active = [t for t in tickets if t.state is VMState.ACTIVE]
    for t in active[:20]:
        controller.delete(t.vm_id)
    for t in burst:
        t = controller.ticket(t.vm_id)
        print(f"  {t.vm_id}: {t.state.value}" +
              (f" on pm-{t.host}" if t.host is not None else ""))
    print()

    print("Per-host agent reports (vNodes as the local scheduler sees them):")
    for i in range(3):
        snap = controller.describe_host(i)
        nodes = ", ".join(
            f"{n['level']}: {len(n['cpus'])} CPUs / {n['vcpus']} vCPUs"
            for n in snap["vnodes"]
        ) or "(idle)"
        print(f"  pm-{i}: {snap['num_vms']} VMs | {nodes}")
    print()

    queued = sum(1 for a, _, _ in controller.audit_log if a == "queue")
    pooled = sum(1 for t in controller.list_vms() if t.pooled)
    print(f"Audit log: {len(controller.audit_log)} events "
          f"({queued} queueings); {pooled} placements used §V-B pooling.")


if __name__ == "__main__":
    main()
