#!/usr/bin/env python3
"""Utilization study: how oversubscription converts reservations into work.

The paper's motivation is the gap between what providers *allocate* and
what tenants *use*.  This example places the same population of VMs at
increasing oversubscription levels and measures, over a simulated week:

* the physical CPU share reserved by vNodes (allocated);
* the CPU share tenants actually demand (used);
* the exposed vCPU share (how far the cluster is overcommitted);
* the overcommit efficiency (used / allocated).

Run: python examples/utilization_study.py
"""

from repro.analysis import cluster_utilization
from repro.core import OversubscriptionLevel, SlackVMConfig
from repro.hardware import MachineSpec
from repro.simulator import VectorSimulation
from repro.workload import AZURE, WorkloadParams, generate_workload, remap_levels

NUM_HOSTS = 12
MACHINE = MachineSpec("pm", 32, 128.0)


def main() -> None:
    base = generate_workload(
        WorkloadParams(catalog=AZURE, level_mix=(0, 100, 0),
                       target_population=150, seed=5)
    )
    print(f"Placing the same {len(base)} VM lifecycles at different "
          f"oversubscription levels on {NUM_HOSTS} PMs "
          f"({MACHINE.cpus}c/{MACHINE.mem_gb:.0f}GB):\n")
    print(f"{'level':>6} {'allocated':>10} {'used':>7} {'exposed vCPU':>13} "
          f"{'efficiency':>11} {'placed':>7}")
    for ratio in (1.0, 2.0, 3.0, 4.0):
        level = OversubscriptionLevel(ratio)
        workload = [vm.with_level(level) for vm in base]
        cfg = SlackVMConfig(levels=(level,))
        machines = [MachineSpec(f"pm-{i}", MACHINE.cpus, MACHINE.mem_gb)
                    for i in range(NUM_HOSTS)]
        result = VectorSimulation(machines, config=cfg, policy="first_fit").run(workload)
        report = cluster_utilization(workload, result)
        placed = len(result.placements)
        print(f"{level.name:>6} {report.allocated_cpu_share:>9.1%} "
              f"{report.used_cpu_share:>6.1%} {report.exposed_vcpu_share:>12.1%} "
              f"{report.overcommit_efficiency:>10.1%} {placed:>7}")
    print()
    print("Reading: higher levels reserve fewer physical CPUs for the same "
          "exposed vCPUs, so a larger share of the reservation does real "
          "work — the utilization motive behind oversubscription (§I).")


if __name__ == "__main__":
    main()
