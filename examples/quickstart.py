#!/usr/bin/env python3
"""Quickstart: how many PMs does SlackVM save on a mixed workload?

Generates a one-week OVHcloud-like trace where half the VMs are premium
(1:1) and half are oversubscribed at 3:1 — the paper's distribution F —
then compares:

* the *baseline*: one dedicated First-Fit cluster per oversubscription
  level (how providers operate today);
* *SlackVM*: one shared cluster where every PM co-hosts all levels in
  vNodes and placements maximize the M/C progress score (Algorithm 2).

Run: python examples/quickstart.py
"""

from repro import SlackVM
from repro.workload import OVHCLOUD

def main() -> None:
    slackvm = SlackVM()  # paper defaults: 32-core/128 GB PMs, levels 1/2/3:1
    outcome = slackvm.evaluate_mix(OVHCLOUD, mix="F", target_population=500, seed=42)

    print("SlackVM quickstart — OVHcloud catalog, distribution F (50% 1:1, 50% 3:1)")
    print("-" * 72)
    for ratio, pms in sorted(outcome.baseline_pms_per_level.items()):
        print(f"  dedicated {ratio:>3.0f}:1 cluster : {pms:3d} PMs (First-Fit)")
    print(f"  baseline total        : {outcome.baseline_pms:3d} PMs")
    print(f"  SlackVM shared cluster: {outcome.slackvm_pms:3d} PMs (progress score)")
    print(f"  => {outcome.savings_percent:.1f}% of the fleet saved")
    print()
    b, s = outcome.baseline_unallocated, outcome.slackvm_unallocated
    print("  stranded resources at peak (share of cluster capacity):")
    print(f"    baseline: {b.cpu:6.1%} CPU, {b.mem:6.1%} memory")
    print(f"    slackvm : {s.cpu:6.1%} CPU, {s.mem:6.1%} memory")
    print()
    print(f"  placements upgraded via §V-B pooling: {outcome.pooled_placements}")


if __name__ == "__main__":
    main()
