#!/usr/bin/env python3
"""Resilience study: what happens when PMs die under tight packing?

SlackVM minimizes the cluster, but a minimal cluster has no headroom
for failures.  This example sizes a shared cluster, then replays the
same workload while killing PMs mid-week, for several amounts of spare
capacity, and reports recovered vs lost VMs.

Run: python examples/resilience_study.py
"""

from repro.core import SlackVMConfig
from repro.hardware import MachineSpec, SIM_WORKER
from repro.simulator import FaultySimulation, HostFailure, minimal_cluster
from repro.workload import OVHCLOUD, WorkloadParams, generate_workload

DAY = 86_400.0


def main() -> None:
    workload = generate_workload(
        WorkloadParams(catalog=OVHCLOUD, level_mix="E",
                       target_population=300, seed=11)
    )
    sized = minimal_cluster(workload, SIM_WORKER, policy="progress")
    print(f"Workload: {len(workload)} VM lifecycles; minimal cluster "
          f"= {sized.pms} PMs of {SIM_WORKER.cpus}c/{SIM_WORKER.mem_gb:.0f}GB")
    print()
    failures = [HostFailure(time=3 * DAY, host=0),
                HostFailure(time=4 * DAY, host=1)]
    print(f"Injecting {len(failures)} PM failures (day 3 and day 4)...\n")
    print(f"{'spare PMs':>10} {'cluster':>8} {'recovered':>10} {'lost':>5} "
          f"{'rejected arrivals':>18}")
    for spare in (0, 1, 2, 4):
        n = sized.pms + spare
        machines = [MachineSpec(f"pm-{i}", SIM_WORKER.cpus, SIM_WORKER.mem_gb)
                    for i in range(n)]
        sim = FaultySimulation(machines, failures,
                               config=SlackVMConfig(), policy="progress")
        result = sim.run(workload)
        print(f"{spare:>10} {n:>8} {sim.report.recovered_vms:>10} "
              f"{len(sim.report.lost_vms):>5} {len(result.rejections):>18}")
    print()
    print("Reading: with zero spare PMs, victims of a failure may be lost "
          "or later arrivals rejected; a small spare pool absorbs both.")


if __name__ == "__main__":
    main()
