#!/usr/bin/env python3
"""Bring your own provider: calibrate a catalog and evaluate SlackVM.

Shows the workflow a provider follows to apply this library to their
own fleet statistics:

1. fit a VM-flavor catalog to the fleet's published/measured means
   (mean vCPUs, mean vRAM, oversubscribable-subset memory ratio) with
   the same minimum-KL solver that produced the paper catalogs;
2. classify which resource each oversubscription level exhausts on the
   fleet's hardware;
3. run the dedicated-vs-SlackVM comparison on a generated workload.

Run: python examples/custom_provider.py
"""

from repro.analysis import classify_levels, evaluate_distribution
from repro.core import VMSpec
from repro.hardware import MachineSpec
from repro.workload import CalibrationTarget, calibrate_catalog

# A fictional European provider: slightly beefier VMs than Azure,
# leaner than OVHcloud.
FLAVORS = [
    VMSpec(1, 1.0), VMSpec(1, 2.0), VMSpec(1, 4.0),
    VMSpec(2, 2.0), VMSpec(2, 4.0), VMSpec(2, 8.0),
    VMSpec(4, 4.0), VMSpec(4, 8.0), VMSpec(4, 16.0),
    VMSpec(8, 16.0), VMSpec(8, 32.0), VMSpec(16, 64.0),
]
TARGET = CalibrationTarget(
    mean_vcpus=2.8,
    mean_mem_gb=7.0,
    restricted_mem_per_vcpu=1.7,  # GB per vCPU among <=8 GB flavors
)
MACHINE = MachineSpec("fleet-pm", 48, 192.0)  # target ratio 4 GB/core


def main() -> None:
    print("Calibrating a catalog to the fleet statistics "
          f"(mean {TARGET.mean_vcpus} vCPU / {TARGET.mean_mem_gb} GB, "
          f"restricted ratio {TARGET.restricted_mem_per_vcpu} GB/vCPU)...")
    catalog = calibrate_catalog("example-cloud", FLAVORS, TARGET)
    print(f"  fitted {len(catalog.entries)} flavors; "
          f"verification: mean vCPU {catalog.mean_vcpus:.2f}, "
          f"mean vRAM {catalog.mean_mem_gb:.2f} GB")
    print(f"  M/C by level: "
          + ", ".join(f"{int(r)}:1 -> {catalog.mc_ratio(r):.1f}"
                      for r in (1.0, 2.0, 3.0)))
    print()

    print(f"Limiting factor on {MACHINE.name} "
          f"({MACHINE.cpus} cores / {MACHINE.mem_gb:.0f} GB, "
          f"target ratio {MACHINE.target_ratio:g}):")
    for ratio, factor in classify_levels(catalog, MACHINE.target_ratio).items():
        print(f"  {int(ratio)}:1 -> {factor.value}")
    print()

    print("Dedicated clusters vs SlackVM (mix F, 300 target VMs):")
    outcome = evaluate_distribution(catalog, "F", machine=MACHINE,
                                    target_population=300, seed=42)
    for ratio, pms in sorted(outcome.baseline_pms_per_level.items()):
        print(f"  dedicated {ratio:g}:1 : {pms} PMs")
    print(f"  baseline total   : {outcome.baseline_pms} PMs")
    print(f"  SlackVM shared   : {outcome.slackvm_pms} PMs")
    print(f"  savings          : {outcome.savings_percent:.1f}%")


if __name__ == "__main__":
    main()
