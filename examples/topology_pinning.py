#!/usr/bin/env python3
"""Inside the local scheduler: topology-aware vNode pinning.

Deploys a stream of mixed-level VMs on one 2×EPYC-7662 worker and shows
how the local scheduler carves the 256 hardware threads into per-level
vNodes: sibling threads integrate first, growth spills into untouched
CCXs, and no last-level cache is shared between vNodes.  The same
stream with topology-awareness disabled shows the contrast.

Run: python examples/topology_pinning.py
"""

from repro.core import DEFAULT_LEVELS, SlackVMConfig, VMRequest, VMSpec
from repro.hardware import EPYC_7662_DUAL, epyc_7662_dual
from repro.localsched import LocalScheduler, shared_llc_violations, virtual_topology


def deploy_stream(agent, count=30):
    for i in range(count):
        level = DEFAULT_LEVELS[i % 3]
        vm = VMRequest(vm_id=f"vm-{i:02d}", spec=VMSpec(2, 4.0), level=level)
        agent.deploy(vm)


def describe(agent, title):
    topo = agent.topology
    print(title)
    for node in agent.vnodes:
        vt = virtual_topology(node, topo)
        cpus = node.cpu_ids
        print(f"  vNode {node.level.name}: {vt.num_cpus:3d} threads on "
              f"{vt.num_physical_cores:3d} physical cores, "
              f"{vt.num_llc_groups} LLC group(s), "
              f"{vt.smt_pairs} SMT pairs, "
              f"{len(node.vm_ids)} VMs")
        print(f"    first CPUs: {list(cpus)[:12]}{'...' if len(cpus) > 12 else ''}")
    print(f"  LLC groups shared between vNodes: {shared_llc_violations(agent)}")
    print()


def main() -> None:
    print(f"Machine: {EPYC_7662_DUAL.name} — "
          f"{EPYC_7662_DUAL.cpus} threads, {EPYC_7662_DUAL.mem_gb:.0f} GB\n")

    aware = LocalScheduler(EPYC_7662_DUAL, SlackVMConfig(topology_aware=True),
                           topology=epyc_7662_dual())
    deploy_stream(aware)
    describe(aware, "Topology-aware allocation (Algorithm 1 distances):")

    naive = LocalScheduler(EPYC_7662_DUAL, SlackVMConfig(topology_aware=False),
                           topology=epyc_7662_dual())
    deploy_stream(naive)
    describe(naive, "Naive (index-order) allocation — the ablation baseline:")

    print("Removing every other VM from the aware agent (vNodes shrink):")
    for i in range(0, 30, 2):
        aware.remove(f"vm-{i:02d}")
    describe(aware, "After departures:")


if __name__ == "__main__":
    main()
