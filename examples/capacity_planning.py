#!/usr/bin/env python3
"""Capacity planning: size a cluster for a workload trace.

Shows the trace-file workflow a provider would use: generate (or load)
a JSONL trace, compute the theoretical lower bound, then size minimal
clusters under several scheduling policies and compare.

Run: python examples/capacity_planning.py [trace.jsonl]
     (without an argument a demo trace is generated and saved to
     /tmp/slackvm_demo_trace.jsonl)
"""

import sys
from pathlib import Path

from repro.hardware import SIM_WORKER
from repro.simulator import demand_lower_bound, minimal_cluster
from repro.workload import (
    OVHCLOUD,
    WorkloadParams,
    generate_workload,
    load_trace,
    peak_population,
    save_trace,
)


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
        workload = load_trace(path)
        print(f"Loaded {len(workload)} VM lifecycles from {path}")
    else:
        path = Path("/tmp/slackvm_demo_trace.jsonl")
        workload = generate_workload(
            WorkloadParams(catalog=OVHCLOUD, level_mix="E",
                           target_population=300, seed=7)
        )
        save_trace(workload, path)
        print(f"Generated a demo trace ({len(workload)} VM lifecycles) -> {path}")

    print(f"Peak concurrent population: {peak_population(workload)} VMs")
    lb = demand_lower_bound(workload, SIM_WORKER)
    print(f"Theoretical lower bound on {SIM_WORKER.name} "
          f"({SIM_WORKER.cpus} CPUs / {SIM_WORKER.mem_gb:.0f} GB): {lb} PMs")
    print()

    print(f"{'policy':<20} {'PMs':>4} {'vs bound':>9} {'probes':>7}")
    for policy in ("first_fit", "best_fit", "worst_fit", "progress"):
        sized = minimal_cluster(workload, SIM_WORKER, policy=policy)
        over = 100.0 * (sized.pms - lb) / lb
        print(f"{policy:<20} {sized.pms:>4} {over:>+8.1f}% {len(sized.probes):>7}")
    print()
    print("('progress' is SlackVM's Algorithm 2 score; probes = sizing "
          "simulations run by the search)")


if __name__ == "__main__":
    main()
