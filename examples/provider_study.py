#!/usr/bin/env python3
"""Provider study: sweep oversubscription-level mixes for a provider.

Reproduces a small-scale version of the paper's Figures 3 and 4 for a
chosen provider: for every mix of (1:1, 2:1, 3:1) shares in 25% steps,
report the stranded CPU/memory of dedicated clusters vs the SlackVM
shared cluster, and the PM savings.

Run: python examples/provider_study.py [azure|ovhcloud] [population]
"""

import sys

from repro.analysis import fig3_series, render_fig3, render_fig4
from repro.workload import PROVIDERS


def main() -> None:
    provider = sys.argv[1] if len(sys.argv) > 1 else "ovhcloud"
    population = int(sys.argv[2]) if len(sys.argv) > 2 else 250
    catalog = PROVIDERS[provider]

    print(f"Sweeping 15 level mixes for {provider} "
          f"(target {population} concurrent VMs, one-week trace)...")
    outcomes = fig3_series(catalog, target_population=population, seed=42)

    print()
    print("Figure 3 — unallocated resources at peak, baseline vs SlackVM")
    print(render_fig3(outcomes))
    print()
    print("Figure 4 — PMs saved by the shared cluster (%)")
    print(render_fig4({k: o.savings_percent for k, o in outcomes.items()}))
    print()
    best = max(outcomes.items(), key=lambda kv: kv[1].savings_percent)
    label, o = best
    s1, s2, s3 = o.mix
    print(f"Best mix: {label} ({s1:.0f}% 1:1, {s2:.0f}% 2:1, {s3:.0f}% 3:1) "
          f"-> {o.savings_percent:.1f}% PMs saved "
          f"({o.baseline_pms} dedicated vs {o.slackvm_pms} shared)")


if __name__ == "__main__":
    main()
