"""SlackVM reproduction — packing VMs across CPU-oversubscription levels.

Reproduces *SLACKVM: Packing Virtual Machines in Oversubscribed Cloud
Infrastructures* (Jacquet, Ledoux, Rouvoy — IEEE CLUSTER 2024) as a
self-contained Python library:

* :mod:`repro.core` — data model, configuration, high-level facade;
* :mod:`repro.hardware` — CPU topologies and the Algorithm 1 core
  distance metric;
* :mod:`repro.localsched` — the per-PM agent partitioning resources
  into dynamically-sized vNodes;
* :mod:`repro.scheduling` — the Algorithm 2 progress score inside a
  standard filter/weigher global scheduler, plus packing baselines;
* :mod:`repro.simulator` — a discrete-event cloud simulator with a
  vectorized fast path and minimal-cluster sizing;
* :mod:`repro.workload` — CloudFactory-style generator with Azure /
  OVHcloud catalogs matching the paper's Tables I & II;
* :mod:`repro.perfmodel` — the physical-testbed substitute (SMT-aware
  contention + latency model) behind Table IV / Fig. 2;
* :mod:`repro.analysis` — experiment drivers and report rendering for
  Figures 3 & 4;
* :mod:`repro.migration` — the paper's future-work live-migration
  rebalancer;
* :mod:`repro.api` — the unified :class:`~repro.api.RunSpec` /
  :func:`~repro.api.run` entry point every front end constructs
  through;
* :mod:`repro.sharding` — the two-level dispatcher fanning one
  datacenter out over N vector-engine shards.
"""

from repro.api import RunSpec, run
from repro.core.config import SlackVMConfig
from repro.core.facade import SlackVM
from repro.core.types import (
    DEFAULT_LEVELS,
    LEVEL_1_1,
    LEVEL_2_1,
    LEVEL_3_1,
    OversubscriptionLevel,
    ResourceVector,
    VMRequest,
    VMSpec,
)

__version__ = "1.0.0"

__all__ = [
    "RunSpec",
    "run",
    "SlackVM",
    "SlackVMConfig",
    "ResourceVector",
    "OversubscriptionLevel",
    "VMSpec",
    "VMRequest",
    "LEVEL_1_1",
    "LEVEL_2_1",
    "LEVEL_3_1",
    "DEFAULT_LEVELS",
    "__version__",
]
