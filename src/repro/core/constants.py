"""Scoring and admission constants shared across every engine layer.

Both :mod:`repro.scheduling.baselines` (object path) and
:mod:`repro.simulator.vectorpool` (vector path) blend the same score
terms, and both engines apply the same admission slop; the equivalence
and golden-trace suites assert the two engines place identically, so
each value must come from one definition — duplicating them was a
silent-drift hazard.

This module lives in :mod:`repro.core` (import-dependency-free) so
low-level modules like :mod:`repro.localsched.agent` can use the shared
values without pulling in the scheduling package;
:mod:`repro.scheduling.constants` re-exports everything for the
historical import path.
"""

from __future__ import annotations

__all__ = [
    "TIEBREAK_WEIGHT",
    "BESTFIT_BLEND",
    "CAPACITY_EPSILON",
    "FIRST_FIT_CHUNK",
    "floats_equal",
    "floats_differ",
]

#: Weight of the first-fit tiebreak relative to the primary metric.  The
#: primary scores are O(1); host ranks are O(cluster size), so the
#: tiebreak must be scaled far below any meaningful score difference.
TIEBREAK_WEIGHT = 1e-9

#: Weight of the best-fit packing term in the combined policy (§VII-B2):
#: large enough to participate in packing, small enough that strong
#: progress differences still dominate.
BESTFIT_BLEND = 0.2

#: Absolute slop applied to memory-capacity comparisons in *both*
#: engines (``m / mem_ratio <= free_mem + CAPACITY_EPSILON``).  Must be
#: a single shared value: the engines' admission verdicts are compared
#: bit-for-bit by the golden-trace conformance suite, so a drifted
#: epsilon would silently split their decisions.
CAPACITY_EPSILON = 1e-9

#: Hosts examined per block when the vector engine short-circuits a
#: first-fit scan (it stops at the first block containing a feasible
#: host).  Purely a performance knob: block evaluation is elementwise
#: per host, so any chunk size yields identical placements.
FIRST_FIT_CHUNK = 1024


def floats_equal(a: float, b: float, eps: float = CAPACITY_EPSILON) -> bool:
    """Tolerant float equality: ``|a - b| <= eps`` (absolute).

    The shared replacement for ``==`` on float-typed scoring/capacity
    expressions in the decision paths (lint rule R005).  Uses the same
    :data:`CAPACITY_EPSILON` slop as the engines' admission
    comparisons, so "equal" means "the engines could not tell them
    apart".  Also works elementwise on numpy arrays (returns a bool
    array in that case).
    """
    return abs(a - b) <= eps


def floats_differ(a: float, b: float, eps: float = CAPACITY_EPSILON) -> bool:
    """Tolerant float inequality — scalar negation of :func:`floats_equal`."""
    return not floats_equal(a, b, eps)
