"""High-level SlackVM facade — the "two imports and go" API.

Wraps the full pipeline (workload → dedicated-baseline sizing →
shared-cluster sizing → savings report) behind one object, so the
quickstart example is a handful of lines:

>>> from repro import SlackVM
>>> from repro.workload import OVHCLOUD
>>> report = SlackVM().evaluate_mix(OVHCLOUD, "F", seed=42)
>>> report.savings_percent  # doctest: +SKIP
9.6
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.experiments import DistributionOutcome, _evaluate_catalog
from repro.core.config import SlackVMConfig
from repro.core.types import VMRequest
from repro.hardware.machine import SIM_WORKER, MachineSpec
from repro.simulator.engine import SimulationResult
from repro.simulator.sizing import SizingResult, minimal_cluster
from repro.simulator.vectorpool import VectorSimulation
from repro.workload.catalog import Catalog
from repro.workload.distributions import LevelMix

__all__ = ["SlackVM"]


class SlackVM:
    """Entry point tying the local/global schedulers and the simulator.

    Parameters
    ----------
    machine:
        The homogeneous worker spec (default: the paper's simulated
        32-core / 128 GB PM).
    config:
        SlackVM knobs (levels, pooling, Algorithm 2's negative factor,
        topology awareness).
    policy:
        Global scheduling policy for the shared cluster (default: the
        Algorithm 2 progress score).
    """

    def __init__(
        self,
        machine: MachineSpec = SIM_WORKER,
        config: SlackVMConfig | None = None,
        policy: str = "progress",
    ):
        self.machine = machine
        self.config = config or SlackVMConfig()
        self.policy = policy

    def place(self, workload: Sequence[VMRequest], num_hosts: int) -> SimulationResult:
        """Run a workload on a fixed-size shared cluster."""
        machines = [
            MachineSpec(f"{self.machine.name}-{i}", self.machine.cpus, self.machine.mem_gb)
            for i in range(num_hosts)
        ]
        sim = VectorSimulation(machines, config=self.config, policy=self.policy)
        return sim.run(list(workload))

    def size_cluster(self, workload: Sequence[VMRequest]) -> SizingResult:
        """Minimal shared cluster hosting ``workload`` without rejection."""
        return minimal_cluster(
            workload, self.machine, policy=self.policy, config=self.config
        )

    def evaluate(
        self, catalog: Catalog, workload: Sequence[VMRequest], **kwargs
    ) -> DistributionOutcome:
        """Compare dedicated clusters vs the SlackVM shared cluster on a
        pre-generated workload trace."""
        return _evaluate_catalog(
            catalog,
            mix=(100.0, 0.0, 0.0),  # overridden by the trace's own levels
            machine=self.machine,
            policy=self.policy,
            pooling=self.config.pooling,
            workload=workload,
            **kwargs,
        )

    def evaluate_mix(
        self,
        catalog: Catalog,
        mix: LevelMix | str,
        target_population: int = 500,
        seed: int = 0,
    ) -> DistributionOutcome:
        """Generate a trace for ``mix`` and run the full §VII-B protocol."""
        return _evaluate_catalog(
            catalog,
            mix,
            machine=self.machine,
            target_population=target_population,
            seed=seed,
            policy=self.policy,
            pooling=self.config.pooling,
        )
