"""Core data model: resource vectors, levels, VM specs, configuration."""

from repro.core.config import SlackVMConfig
from repro.core.errors import (
    CapacityError,
    ConfigError,
    PlacementError,
    ReproError,
    ServingError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
from repro.core.types import (
    DEFAULT_LEVELS,
    LEVEL_1_1,
    LEVEL_2_1,
    LEVEL_3_1,
    OversubscriptionLevel,
    ResourceVector,
    VMRequest,
    VMSpec,
)

__all__ = [
    "SlackVMConfig",
    "ReproError",
    "ConfigError",
    "TopologyError",
    "CapacityError",
    "PlacementError",
    "WorkloadError",
    "SimulationError",
    "ServingError",
    "ResourceVector",
    "OversubscriptionLevel",
    "LEVEL_1_1",
    "LEVEL_2_1",
    "LEVEL_3_1",
    "DEFAULT_LEVELS",
    "VMSpec",
    "VMRequest",
]
