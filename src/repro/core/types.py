"""Foundational value types shared by every repro subpackage.

The data model mirrors the paper's vocabulary:

* :class:`ResourceVector` — a (cpu, memory) pair; CPU is expressed in
  physical cores (possibly fractional, because an oversubscribed vNode
  consumes ``vcpus / level`` physical cores) and memory in GB.
* :class:`OversubscriptionLevel` — an ``n:1`` CPU oversubscription
  ratio, e.g. 2:1 exposes two vCPUs per physical core.
* :class:`VMSpec` — a VM flavor (vCPUs + memory).
* :class:`VMRequest` — a VM deployment request in a workload trace:
  flavor + oversubscription level + arrival/departure times + usage
  profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.errors import ConfigError

__all__ = [
    "ResourceVector",
    "OversubscriptionLevel",
    "LEVEL_1_1",
    "LEVEL_2_1",
    "LEVEL_3_1",
    "DEFAULT_LEVELS",
    "VMSpec",
    "VMRequest",
]


@dataclass(frozen=True, slots=True)
class ResourceVector:
    """A two-dimensional resource quantity: CPU cores and memory (GB).

    Supports elementwise arithmetic and dominance comparison; used for
    machine capacities, allocations and free-capacity bookkeeping.
    """

    cpu: float
    mem: float

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.cpu + other.cpu, self.mem + other.mem)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.cpu - other.cpu, self.mem - other.mem)

    def __mul__(self, k: float) -> "ResourceVector":
        return ResourceVector(self.cpu * k, self.mem * k)

    __rmul__ = __mul__

    def fits_within(self, capacity: "ResourceVector", eps: float = 1e-9) -> bool:
        """Whether this vector is dominated by ``capacity`` in both dimensions."""
        return self.cpu <= capacity.cpu + eps and self.mem <= capacity.mem + eps

    def clamp_nonnegative(self) -> "ResourceVector":
        return ResourceVector(max(self.cpu, 0.0), max(self.mem, 0.0))

    @property
    def mc_ratio(self) -> float:
        """Memory-per-Core ratio (GB per physical core); inf when cpu == 0."""
        if self.cpu == 0:
            return math.inf
        return self.mem / self.cpu

    @staticmethod
    def zero() -> "ResourceVector":
        return ResourceVector(0.0, 0.0)


@dataclass(frozen=True, slots=True, order=True)
class OversubscriptionLevel:
    """An ``n:1`` CPU oversubscription ratio, with optional memory
    oversubscription.

    ``ratio`` vCPUs may contend for each physical core.  The paper's
    evaluation never oversubscribes memory (§III-A hypothesis), which is
    the default ``mem_ratio`` of 1; its §VIII future work (and footnote
    2's OpenStack defaults of 16:1 CPU / 1.5:1 DRAM) motivate the
    optional ``mem_ratio``: a VM's physical memory reservation is
    ``mem_gb / mem_ratio``.  Levels are ordered by CPU ratio then memory
    ratio; a *lower* ratio is a stricter (more premium) guarantee.
    """

    ratio: float
    mem_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.ratio < 1:
            raise ConfigError(f"oversubscription ratio must be >= 1, got {self.ratio}")
        if self.mem_ratio < 1:
            raise ConfigError(
                f"memory oversubscription ratio must be >= 1, got {self.mem_ratio}"
            )

    @property
    def name(self) -> str:
        def fmt(r: float) -> str:
            return f"{int(r)}:1" if float(r).is_integer() else f"{r:g}:1"

        if self.mem_ratio == 1.0:
            return fmt(self.ratio)
        return f"{fmt(self.ratio)}(mem {fmt(self.mem_ratio)})"

    @property
    def is_premium(self) -> bool:
        """1:1 levels guarantee dedicated physical resources."""
        return self.ratio == 1 and self.mem_ratio == 1

    def physical_cores_for(self, vcpus: float) -> float:
        """Physical-core consumption of ``vcpus`` virtual CPUs at this level."""
        return vcpus / self.ratio

    def physical_mem_for(self, mem_gb: float) -> float:
        """Physical-memory reservation of ``mem_gb`` virtual GB."""
        return mem_gb / self.mem_ratio

    def satisfies(self, other: "OversubscriptionLevel") -> bool:
        """Whether hosting at *this* level honours a guarantee sold at
        ``other``'s level.

        Per §V-B: "no more than 2 vCPUs per physical core" satisfies
        "no more than 3 vCPUs per physical core" — a stricter (smaller)
        ratio satisfies a looser one, on both resource dimensions.
        """
        return self.ratio <= other.ratio and self.mem_ratio <= other.mem_ratio

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


LEVEL_1_1 = OversubscriptionLevel(1.0)
LEVEL_2_1 = OversubscriptionLevel(2.0)
LEVEL_3_1 = OversubscriptionLevel(3.0)

#: The three levels used throughout the paper's evaluation (§VII).
DEFAULT_LEVELS: tuple[OversubscriptionLevel, ...] = (LEVEL_1_1, LEVEL_2_1, LEVEL_3_1)


@dataclass(frozen=True, slots=True)
class VMSpec:
    """A VM flavor: virtual CPU count and memory size in GB."""

    vcpus: int
    mem_gb: float

    def __post_init__(self) -> None:
        if self.vcpus <= 0:
            raise ConfigError(f"vcpus must be positive, got {self.vcpus}")
        if self.mem_gb <= 0:
            raise ConfigError(f"mem_gb must be positive, got {self.mem_gb}")

    @property
    def mc_ratio(self) -> float:
        """Requested memory-per-vCPU ratio (GB per vCPU)."""
        return self.mem_gb / self.vcpus

    def allocation(self, level: OversubscriptionLevel) -> ResourceVector:
        """Physical resources consumed when hosted at ``level``.

        CPU is scaled down by the CPU oversubscription ratio and memory
        by the (default 1:1) memory oversubscription ratio.
        """
        return ResourceVector(
            level.physical_cores_for(self.vcpus),
            level.physical_mem_for(self.mem_gb),
        )


@dataclass(frozen=True, slots=True)
class VMRequest:
    """One VM lifecycle entry in a workload trace.

    ``arrival``/``departure`` are simulation timestamps in seconds;
    ``departure`` may be ``None`` for VMs that outlive the trace.
    ``usage_kind`` tags the CPU behaviour used by the performance model
    (one of ``"idle"``, ``"stress"``, ``"interactive"``) and
    ``usage_param`` its intensity (utilisation for stress, requests/s
    for interactive workloads).
    """

    vm_id: str
    spec: VMSpec
    level: OversubscriptionLevel
    arrival: float = 0.0
    departure: Optional[float] = None
    usage_kind: str = "stress"
    usage_param: float = 0.5
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ConfigError(f"arrival must be >= 0, got {self.arrival}")
        if self.departure is not None and self.departure <= self.arrival:
            raise ConfigError(
                f"departure ({self.departure}) must be after arrival ({self.arrival})"
            )

    @property
    def lifetime(self) -> float:
        if self.departure is None:
            return math.inf
        return self.departure - self.arrival

    def allocation(self) -> ResourceVector:
        """Physical resources consumed by this request at its own level."""
        return self.spec.allocation(self.level)

    def with_level(self, level: OversubscriptionLevel) -> "VMRequest":
        return replace(self, level=level)
