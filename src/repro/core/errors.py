"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch one base type at API boundaries.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "TopologyError",
    "CapacityError",
    "PlacementError",
    "WorkloadError",
    "SimulationError",
    "RunnerError",
    "ShardingError",
    "ServingError",
]


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class TopologyError(ReproError):
    """A CPU-topology description is inconsistent or an operation on it
    is impossible (e.g. requesting more cores than exist)."""


class CapacityError(ReproError):
    """A resource reservation exceeds the capacity of its container
    (vNode, physical machine, or datacenter)."""


class PlacementError(ReproError):
    """No host can satisfy a VM deployment request."""


class WorkloadError(ReproError):
    """A workload trace or generator parameterization is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class RunnerError(ReproError):
    """A sweep specification or checkpoint is invalid, or a sweep
    finished with failed cells the caller required to succeed."""


class ShardingError(ReproError):
    """A sharded run failed: a shard worker raised, a merge invariant
    broke, or a shard checkpoint does not match its plan."""


class ServingError(ReproError):
    """The online placement service reached an inconsistent state — a
    virtual-time deadlock (every coroutine blocked with no sleeper to
    wake) or a lifecycle command referencing an unknown request."""
