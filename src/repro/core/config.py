"""Top-level configuration of a SlackVM deployment.

A :class:`SlackVMConfig` gathers every knob the paper discusses:

* which oversubscription levels the provider offers (§VII uses 1:1,
  2:1 and 3:1, but the local scheduler "does not impose a limit on the
  considered oversubscription levels");
* whether oversubscribed vNodes may *pool* their slack (§V-B);
* whether the negative-progress load factor of Algorithm 2
  (lines 12–15) is applied;
* whether core selection is topology-aware (Algorithm 1) or naive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.core.types import DEFAULT_LEVELS, OversubscriptionLevel

__all__ = ["SlackVMConfig"]


@dataclass(frozen=True, slots=True)
class SlackVMConfig:
    """Configuration knobs for local and global SlackVM scheduling."""

    #: Oversubscription levels offered by the provider, strictest first.
    levels: tuple[OversubscriptionLevel, ...] = DEFAULT_LEVELS

    #: §V-B — allow a VM of a looser level to land in a stricter
    #: oversubscribed vNode (an "upgrade") when its own vNode cannot grow.
    pooling: bool = True

    #: Algorithm 2 lines 12–15 — scale negative progress by the host's
    #: current CPU load so lightly-loaded PMs absorb unbalancing VMs.
    negative_progress_factor: bool = True

    #: Use the cache-distance metric (Algorithm 1) when picking cores;
    #: when False, cores are picked in index order (ablation baseline).
    topology_aware: bool = True

    #: Pin VMs to SMT siblings of already-used cores before spilling to
    #: new physical cores (mirrors Linux behaviour under constrained sets).
    prefer_physical_cores: bool = True

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigError("at least one oversubscription level is required")
        ratios = [lv.ratio for lv in self.levels]
        if sorted(ratios) != ratios:
            raise ConfigError("levels must be sorted strictest (1:1) first")
        if len(set(ratios)) != len(ratios):
            raise ConfigError("duplicate oversubscription levels")

    def level_by_ratio(self, ratio: float) -> OversubscriptionLevel:
        for lv in self.levels:
            if lv.ratio == ratio:
                return lv
        raise ConfigError(f"no configured level with ratio {ratio}")

    @property
    def max_ratio(self) -> float:
        return self.levels[-1].ratio

    def with_levels(self, *ratios: float) -> "SlackVMConfig":
        """Convenience constructor replacing the level set."""
        levels = tuple(OversubscriptionLevel(r) for r in sorted(ratios))
        return SlackVMConfig(
            levels=levels,
            pooling=self.pooling,
            negative_progress_factor=self.negative_progress_factor,
            topology_aware=self.topology_aware,
            prefer_physical_cores=self.prefer_physical_cores,
        )
