"""Live-migration extension (paper future work §VIII)."""

from repro.migration.rebalancer import (
    MigratingSimulation,
    Migration,
    RebalanceReport,
    Rebalancer,
)

__all__ = ["Migration", "RebalanceReport", "Rebalancer", "MigratingSimulation"]
