"""Live-migration consolidation (paper §VIII, future work).

"Considering live migration to further balance the packing of our
vNodes is left as a future work."  This module implements that
extension: a :class:`Rebalancer` that periodically tries to *evacuate*
the lightest-loaded hosts by re-placing their VMs on the rest of the
cluster (scored by the same policy as initial placement), freeing whole
PMs that arrivals/departures have left underutilized.

The ablation bench compares minimal cluster sizes with and without a
migration pass enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.config import SlackVMConfig
from repro.core.errors import CapacityError
from repro.core.types import VMRequest
from repro.hardware.machine import MachineSpec
from repro.simulator.engine import PlacementRecord, SimulationResult, Timeline
from repro.simulator.events import EventKind, workload_events
from repro.simulator.vectorpool import POLICIES, VectorCluster

__all__ = ["Migration", "RebalanceReport", "Rebalancer", "MigratingSimulation"]


@dataclass(frozen=True, slots=True)
class Migration:
    vm_id: str
    source: int
    target: int


@dataclass
class RebalanceReport:
    migrations: list[Migration] = field(default_factory=list)
    hosts_emptied: int = 0

    @property
    def num_migrations(self) -> int:
        return len(self.migrations)


class Rebalancer:
    """Evacuate lightly-loaded hosts onto the rest of the cluster."""

    def __init__(self, policy: str = "progress", max_migrations: int = 10_000):
        if policy not in POLICIES:
            raise CapacityError(f"unknown policy {policy!r}")
        self.policy = policy
        self.max_migrations = max_migrations

    def _try_evacuate(self, cluster: VectorCluster, source: int) -> list[Migration] | None:
        """Move every VM off ``source``; None (and rollback) if impossible."""
        vm_ids = cluster.vms_on(source)
        done: list[tuple[VMRequest, int]] = []
        moves: list[Migration] = []
        for vm_id in vm_ids:
            vm = cluster.request_of(vm_id)
            cluster.remove(vm_id)
            feasible, _g, _o = cluster.feasibility(vm)
            # Masking the scratch view is fine: the next feasibility()
            # call overwrites it entirely.
            feasible[source] = False
            if not feasible.any():
                # Rollback: restore this VM and all prior moves.
                cluster.deploy(vm, source)
                for moved_vm, origin in reversed(done):
                    cluster.remove(moved_vm.vm_id)
                    cluster.deploy(moved_vm, origin)
                return None
            target = cluster.select_best(feasible, vm, self.policy)
            cluster.deploy(vm, target)
            done.append((vm, source))
            moves.append(Migration(vm_id=vm_id, source=source, target=target))
        return moves

    def consolidate(self, cluster: VectorCluster) -> RebalanceReport:
        """Repeatedly evacuate the lightest non-empty host while possible."""
        report = RebalanceReport()
        blocked: set[int] = set()
        while report.num_migrations < self.max_migrations:
            weights = [
                (cluster.host_weight(h), h)
                for h in range(cluster.num_hosts)
                if h not in blocked and cluster.vms_on(h)
            ]
            if len(weights) <= 1:
                break
            _, source = min(weights)
            moves = self._try_evacuate(cluster, source)
            if moves is None:
                blocked.add(source)
                continue
            report.migrations.extend(moves)
            report.hosts_emptied += 1
            blocked.add(source)  # don't immediately refill what we emptied
        return report


class MigratingSimulation:
    """A :class:`~repro.simulator.vectorpool.VectorSimulation` variant
    that runs a consolidation pass at a fixed simulated interval.

    Matches the vector engine's semantics between passes; suitable for
    :func:`repro.simulator.sizing.minimal_cluster` via its
    ``simulation_factory`` hook.
    """

    def __init__(
        self,
        machines: Sequence[MachineSpec],
        config: SlackVMConfig | None = None,
        policy: str = "progress",
        fail_fast: bool = False,
        rebalance_interval: float = 86_400.0,
    ):
        self.machines = list(machines)
        self.config = config or SlackVMConfig()
        self.policy = policy
        self.fail_fast = fail_fast
        self.rebalance_interval = rebalance_interval
        self.last_report: RebalanceReport | None = None
        self.total_migrations = 0

    def run(self, workload: list[VMRequest]) -> SimulationResult:
        cluster = VectorCluster(self.machines, self.config)
        rebalancer = Rebalancer(policy=self.policy)
        queue = workload_events(list(workload))
        placements: dict[str, PlacementRecord] = {}
        rejections: list[str] = []
        timeline = Timeline()
        pooled = 0
        alive: set[str] = set()
        next_rebalance = self.rebalance_interval
        self.total_migrations = 0
        for event in queue.drain():
            while event.time >= next_rebalance:
                report = rebalancer.consolidate(cluster)
                self.last_report = report
                self.total_migrations += report.num_migrations
                for mig in report.migrations:
                    rec = placements[mig.vm_id]
                    placements[mig.vm_id] = PlacementRecord(
                        rec.vm_id, mig.target, rec.hosted_ratio, rec.pooled
                    )
                next_rebalance += self.rebalance_interval
            vm = event.vm
            if event.kind is EventKind.ARRIVAL:
                feasible, _g, _o = cluster.feasibility(vm)
                if not feasible.any():
                    rejections.append(vm.vm_id)
                    if self.fail_fast:
                        break
                else:
                    host = cluster.select_best(feasible, vm, self.policy)
                    record = cluster.deploy(vm, host)
                    pooled += record.pooled
                    placements[vm.vm_id] = record
                    alive.add(vm.vm_id)
            else:
                if vm.vm_id in alive:
                    cluster.remove(vm.vm_id)
                    alive.discard(vm.vm_id)
            timeline.record(
                event.time,
                float(cluster.alloc_cpu.sum()),
                float(cluster.alloc_mem.sum()),
            )
        return SimulationResult(
            num_hosts=cluster.num_hosts,
            capacity_cpu=float(cluster.cap_cpu.sum()),
            capacity_mem=float(cluster.cap_mem.sum()),
            placements=placements,
            rejections=rejections,
            timeline=timeline,
            pooled_placements=pooled,
        )
