"""Canonical scheduler configurations used across the evaluation.

* :func:`first_fit_scheduler` — the paper's packing baseline (§VII-B):
  fill existing servers before opening new ones.
* :func:`slackvm_scheduler` — the progress-score scheduler of §VI,
  with a first-fit tiebreak for determinism.
* :func:`best_fit_scheduler` / :func:`worst_fit_scheduler` — classic
  vector-bin-packing heuristics, for context in the ablations.
"""

from __future__ import annotations

from repro.core.errors import ConfigError
from repro.scheduling.constants import BESTFIT_BLEND, TIEBREAK_WEIGHT
from repro.scheduling.global_scheduler import ScoreBasedScheduler
from repro.scheduling.weighers import (
    BestFitWeigher,
    FirstFitWeigher,
    ProgressWeigher,
    WorstFitWeigher,
)

__all__ = [
    "first_fit_scheduler",
    "best_fit_scheduler",
    "worst_fit_scheduler",
    "slackvm_scheduler",
    "slackvm_combined_scheduler",
    "scheduler_for_policy",
]

# Shared with the vector engine via repro.scheduling.constants.
_TIEBREAK = TIEBREAK_WEIGHT


def first_fit_scheduler() -> ScoreBasedScheduler:
    """First-Fit: the first (lowest-rank) host that fits wins."""
    return ScoreBasedScheduler(
        weighers=((FirstFitWeigher(), 1.0),), name="first-fit"
    )


def best_fit_scheduler() -> ScoreBasedScheduler:
    """Best-Fit on normalized free capacity, first-fit tiebreak."""
    return ScoreBasedScheduler(
        weighers=((BestFitWeigher(), 1.0), (FirstFitWeigher(), _TIEBREAK)),
        name="best-fit",
    )


def worst_fit_scheduler() -> ScoreBasedScheduler:
    """Worst-Fit (spreading), first-fit tiebreak."""
    return ScoreBasedScheduler(
        weighers=((WorstFitWeigher(), 1.0), (FirstFitWeigher(), _TIEBREAK)),
        name="worst-fit",
    )


def slackvm_scheduler(negative_factor: bool = True) -> ScoreBasedScheduler:
    """SlackVM: Algorithm 2 progress score, first-fit tiebreak."""
    return ScoreBasedScheduler(
        weighers=(
            (ProgressWeigher(negative_factor=negative_factor), 1.0),
            (FirstFitWeigher(), _TIEBREAK),
        ),
        name="slackvm-progress",
    )


_BESTFIT_BLEND = BESTFIT_BLEND


def slackvm_combined_scheduler() -> ScoreBasedScheduler:
    """The paper's suggested production composition (§VII-B2): the M/C
    progress score complemented with an existing packing rule
    (best-fit), plus the deterministic first-fit tiebreak."""
    return ScoreBasedScheduler(
        weighers=(
            (ProgressWeigher(), 1.0),
            (BestFitWeigher(), _BESTFIT_BLEND),
            (FirstFitWeigher(), _TIEBREAK),
        ),
        name="slackvm-progress+bestfit",
    )


#: Policy-name → scheduler factory, mirroring the string policies the
#: vector engine accepts (repro.simulator.vectorpool.POLICIES).
_POLICY_FACTORIES = {
    "first_fit": first_fit_scheduler,
    "best_fit": best_fit_scheduler,
    "worst_fit": worst_fit_scheduler,
    "progress": slackvm_scheduler,
    "progress_no_factor": lambda: slackvm_scheduler(negative_factor=False),
    "progress_bestfit": slackvm_combined_scheduler,
}


def scheduler_for_policy(policy: str) -> ScoreBasedScheduler:
    """Object-path scheduler equivalent to a vector-engine policy name.

    The differential audit (and the equivalence tests) rely on this
    mapping to run the *same* policy through both engines.
    """
    try:
        factory = _POLICY_FACTORIES[policy]
    except KeyError:
        raise ConfigError(
            f"unknown policy {policy!r}; expected one of {sorted(_POLICY_FACTORIES)}"
        ) from None
    return factory()
