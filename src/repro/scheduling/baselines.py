"""Canonical scheduler configurations used across the evaluation.

* :func:`first_fit_scheduler` — the paper's packing baseline (§VII-B):
  fill existing servers before opening new ones.
* :func:`slackvm_scheduler` — the progress-score scheduler of §VI,
  with a first-fit tiebreak for determinism.
* :func:`best_fit_scheduler` / :func:`worst_fit_scheduler` — classic
  vector-bin-packing heuristics, for context in the ablations.
"""

from __future__ import annotations

from repro.scheduling.global_scheduler import ScoreBasedScheduler
from repro.scheduling.weighers import (
    BestFitWeigher,
    FirstFitWeigher,
    ProgressWeigher,
    WorstFitWeigher,
)

__all__ = [
    "first_fit_scheduler",
    "best_fit_scheduler",
    "worst_fit_scheduler",
    "slackvm_scheduler",
    "slackvm_combined_scheduler",
]

#: Weight of the first-fit tiebreak relative to the primary metric.  The
#: primary scores are O(1); host ranks are O(cluster size), so the
#: tiebreak must be scaled far below any meaningful score difference.
_TIEBREAK = 1e-9


def first_fit_scheduler() -> ScoreBasedScheduler:
    """First-Fit: the first (lowest-rank) host that fits wins."""
    return ScoreBasedScheduler(
        weighers=((FirstFitWeigher(), 1.0),), name="first-fit"
    )


def best_fit_scheduler() -> ScoreBasedScheduler:
    """Best-Fit on normalized free capacity, first-fit tiebreak."""
    return ScoreBasedScheduler(
        weighers=((BestFitWeigher(), 1.0), (FirstFitWeigher(), _TIEBREAK)),
        name="best-fit",
    )


def worst_fit_scheduler() -> ScoreBasedScheduler:
    """Worst-Fit (spreading), first-fit tiebreak."""
    return ScoreBasedScheduler(
        weighers=((WorstFitWeigher(), 1.0), (FirstFitWeigher(), _TIEBREAK)),
        name="worst-fit",
    )


def slackvm_scheduler(negative_factor: bool = True) -> ScoreBasedScheduler:
    """SlackVM: Algorithm 2 progress score, first-fit tiebreak."""
    return ScoreBasedScheduler(
        weighers=(
            (ProgressWeigher(negative_factor=negative_factor), 1.0),
            (FirstFitWeigher(), _TIEBREAK),
        ),
        name="slackvm-progress",
    )


#: Weight of the best-fit term in the combined scheduler — must match
#: repro.simulator.vectorpool._BESTFIT_BLEND.
_BESTFIT_BLEND = 0.2


def slackvm_combined_scheduler() -> ScoreBasedScheduler:
    """The paper's suggested production composition (§VII-B2): the M/C
    progress score complemented with an existing packing rule
    (best-fit), plus the deterministic first-fit tiebreak."""
    return ScoreBasedScheduler(
        weighers=(
            (ProgressWeigher(), 1.0),
            (BestFitWeigher(), _BESTFIT_BLEND),
            (FirstFitWeigher(), _TIEBREAK),
        ),
        name="slackvm-progress+bestfit",
    )
