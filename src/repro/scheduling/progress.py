"""Algorithm 2 — progress towards the PM's target M/C ratio.

The score answers: *would deploying this VM move the PM's allocated
Memory-per-Core ratio closer to its hardware ratio?*  Positive scores
mean the deployment re-balances the PM; negative scores mean it skews
it further.  Lines 12–15 of the algorithm additionally scale negative
scores by ``1 + allocated_cpu/configured_cpu`` so that, when every PM
would be skewed (e.g. a large unbalanced VM), lightly-loaded PMs are
preferred — they retain the best odds of counterbalancing later.

An idle PM is regarded as *already at* its target ratio (line 6), which
biases selection toward consolidating non-empty PMs before waking idle
ones.
"""

from __future__ import annotations

from repro.core.types import ResourceVector

__all__ = ["progress_score"]


def progress_score(
    config_pm: ResourceVector,
    alloc_pm: ResourceVector,
    vm: ResourceVector,
    negative_factor: bool = True,
) -> float:
    """Compute Algorithm 2's progress indicator.

    Parameters
    ----------
    config_pm:
        The PM hardware configuration (CPUs, memory GB).
    alloc_pm:
        The PM's current *physical* allocation — oversubscribed vNodes
        count through their physical reservation, which keeps the score
        level-agnostic (§VI).
    vm:
        The candidate VM's physical allocation at its own level
        (``vcpus / ratio`` CPUs, memory at face value).
    negative_factor:
        Apply lines 12–15 (ablation knob).
    """
    target_ratio = config_pm.mem / config_pm.cpu
    if alloc_pm.cpu > 0:
        current_ratio = alloc_pm.mem / alloc_pm.cpu
        next_ratio = (alloc_pm.mem + vm.mem) / (alloc_pm.cpu + vm.cpu)
    else:
        current_ratio = target_ratio
        next_ratio = vm.mem / vm.cpu
    current_delta = abs(current_ratio - target_ratio)
    next_delta = abs(next_ratio - target_ratio)
    progress = current_delta - next_delta
    if progress < 0 and negative_factor:
        progress *= 1.0 + alloc_pm.cpu / config_pm.cpu
    return progress
