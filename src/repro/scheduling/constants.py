"""Scoring constants shared by the object and vectorized engines.

The canonical definitions live in :mod:`repro.core.constants` (so that
modules below the scheduling layer can import them without a package
cycle); this module keeps the historical import path alive.  The
tolerance helpers :func:`floats_equal` / :func:`floats_differ` are the
required replacement for ``==`` / ``!=`` on float-typed scoring
expressions (lint rule R005).
"""

from __future__ import annotations

from repro.core.constants import (
    BESTFIT_BLEND,
    CAPACITY_EPSILON,
    FIRST_FIT_CHUNK,
    TIEBREAK_WEIGHT,
    floats_differ,
    floats_equal,
)

__all__ = [
    "TIEBREAK_WEIGHT",
    "BESTFIT_BLEND",
    "CAPACITY_EPSILON",
    "FIRST_FIT_CHUNK",
    "floats_equal",
    "floats_differ",
]
