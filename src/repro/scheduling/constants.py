"""Scoring constants shared by the object and vectorized engines.

Both :mod:`repro.scheduling.baselines` (object path) and
:mod:`repro.simulator.vectorpool` (vector path) blend the same score
terms; the equivalence tests assert the two engines place identically,
so the blend weights must come from one definition — duplicating them
was a silent-drift hazard.
"""

from __future__ import annotations

__all__ = ["TIEBREAK_WEIGHT", "BESTFIT_BLEND"]

#: Weight of the first-fit tiebreak relative to the primary metric.  The
#: primary scores are O(1); host ranks are O(cluster size), so the
#: tiebreak must be scaled far below any meaningful score difference.
TIEBREAK_WEIGHT = 1e-9

#: Weight of the best-fit packing term in the combined policy (§VII-B2):
#: large enough to participate in packing, small enough that strong
#: progress differences still dominate.
BESTFIT_BLEND = 0.2
