"""Scoring constants shared by the object and vectorized engines.

The canonical definitions live in :mod:`repro.core.constants` (so that
modules below the scheduling layer can import them without a package
cycle); this module keeps the historical import path alive.
"""

from __future__ import annotations

from repro.core.constants import (
    BESTFIT_BLEND,
    CAPACITY_EPSILON,
    FIRST_FIT_CHUNK,
    TIEBREAK_WEIGHT,
)

__all__ = ["TIEBREAK_WEIGHT", "BESTFIT_BLEND", "CAPACITY_EPSILON", "FIRST_FIT_CHUNK"]
