"""Hard-constraint filters of the score-based scheduler pipeline.

Mirrors the filter stage of OpenStack Nova / Borg / Protean (§II-B):
each filter eliminates hosts that *cannot* take the deployment; the
surviving candidates are then scored by the weighers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.types import VMRequest
from repro.localsched.agent import LocalScheduler

__all__ = [
    "HostFilter",
    "LevelSupportFilter",
    "CapacityFilter",
    "MaxVMsFilter",
    "AntiAffinityFilter",
]


class HostFilter(ABC):
    """One hard constraint: keep a host iff :meth:`passes`."""

    @abstractmethod
    def passes(self, host: LocalScheduler, vm: VMRequest) -> bool:
        """Whether ``host`` may receive ``vm``."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return type(self).__name__


class LevelSupportFilter(HostFilter):
    """Host must offer the VM's oversubscription level.

    This is what separates dedicated clusters (each PM configured with
    one level) from SlackVM's shared cluster (all levels everywhere).
    """

    def passes(self, host: LocalScheduler, vm: VMRequest) -> bool:
        return host.supports(vm.level)


class CapacityFilter(HostFilter):
    """Host must actually fit the VM (vNode growth/pooling feasibility)."""

    def passes(self, host: LocalScheduler, vm: VMRequest) -> bool:
        return host.can_deploy(vm)


class MaxVMsFilter(HostFilter):
    """Cap the VM count per host (an operational limit some providers use)."""

    def __init__(self, max_vms: int):
        self.max_vms = max_vms

    def passes(self, host: LocalScheduler, vm: VMRequest) -> bool:
        return host.num_vms < self.max_vms


class AntiAffinityFilter(HostFilter):
    """Spread VMs of the same anti-affinity group across PMs.

    A production rule of the kind §VII-B says schedulers compose by the
    hundreds: a VM carrying ``metadata["anti_affinity"] = <group>`` must
    not land on a host already running a VM of the same group (replica
    spreading for fault tolerance).  VMs without the tag pass freely.
    """

    GROUP_KEY = "anti_affinity"

    def __init__(self):
        # vm_id -> group, maintained from the placements we observe.
        self._groups: dict[str, str] = {}

    def passes(self, host: LocalScheduler, vm: VMRequest) -> bool:
        group = vm.metadata.get(self.GROUP_KEY)
        if group is None:
            return True
        self._groups[vm.vm_id] = group
        for hosted_id in host.hosted_vm_ids():
            if self._groups.get(hosted_id) == group:
                return False
        return True
