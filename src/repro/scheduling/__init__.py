"""Global scheduling: Algorithm 2 progress score, filters, weighers,
score-based selection, packing baselines and vClusters."""

from repro.scheduling.baselines import (
    best_fit_scheduler,
    first_fit_scheduler,
    scheduler_for_policy,
    slackvm_combined_scheduler,
    slackvm_scheduler,
    worst_fit_scheduler,
)
from repro.scheduling.constants import BESTFIT_BLEND, TIEBREAK_WEIGHT
from repro.scheduling.filters import (
    AntiAffinityFilter,
    CapacityFilter,
    HostFilter,
    LevelSupportFilter,
    MaxVMsFilter,
)
from repro.scheduling.global_scheduler import ScoreBasedScheduler, SelectionTrace
from repro.scheduling.policy import (
    FILTER_REGISTRY,
    WEIGHER_REGISTRY,
    load_policy,
    register_filter,
    register_weigher,
    scheduler_from_spec,
)
from repro.scheduling.progress import progress_score
from repro.scheduling.vcluster import VCluster, VClusterStats
from repro.scheduling.weighers import (
    BestFitWeigher,
    ConsolidationWeigher,
    FirstFitWeigher,
    HostWeigher,
    ProgressWeigher,
    WorstFitWeigher,
)

__all__ = [
    "progress_score",
    "ScoreBasedScheduler",
    "SelectionTrace",
    "scheduler_from_spec",
    "load_policy",
    "register_filter",
    "register_weigher",
    "FILTER_REGISTRY",
    "WEIGHER_REGISTRY",
    "HostFilter",
    "LevelSupportFilter",
    "CapacityFilter",
    "MaxVMsFilter",
    "AntiAffinityFilter",
    "HostWeigher",
    "ProgressWeigher",
    "FirstFitWeigher",
    "BestFitWeigher",
    "WorstFitWeigher",
    "ConsolidationWeigher",
    "first_fit_scheduler",
    "best_fit_scheduler",
    "worst_fit_scheduler",
    "slackvm_scheduler",
    "slackvm_combined_scheduler",
    "scheduler_for_policy",
    "TIEBREAK_WEIGHT",
    "BESTFIT_BLEND",
    "VCluster",
    "VClusterStats",
]
