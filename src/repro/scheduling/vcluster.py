"""vClusters: per-level views over a shared cluster (paper §IV/§VI).

A vCluster abstracts "the set of vNodes of one oversubscription level"
across the whole cluster.  It behaves like a traditional cluster —
receive a request, interrogate its candidate hosts, pick one — except
its hosts are dynamic vNodes.  In this implementation a vCluster is a
read/query view over the hosts' local schedulers, used for per-level
reporting and by the level-aware examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.types import OversubscriptionLevel, ResourceVector
from repro.localsched.agent import LocalScheduler
from repro.localsched.vnode import VNode

__all__ = ["VClusterStats", "VCluster"]


@dataclass(frozen=True, slots=True)
class VClusterStats:
    """Aggregate state of one level across the cluster."""

    level_name: str
    num_vnodes: int
    num_vms: int
    allocated_vcpus: int
    capacity_vcpus: float
    allocated_cpus: int
    allocated_mem_gb: float

    @property
    def vcpu_utilization(self) -> float:
        if self.capacity_vcpus == 0:
            return 0.0
        return self.allocated_vcpus / self.capacity_vcpus


class VCluster:
    """All vNodes of one oversubscription level across ``hosts``."""

    def __init__(self, level: OversubscriptionLevel, hosts: Sequence[LocalScheduler]):
        self.level = level
        self._hosts = list(hosts)

    def vnodes(self) -> list[tuple[LocalScheduler, VNode]]:
        out = []
        for host in self._hosts:
            node = host.vnode_for(self.level)
            if node is not None:
                out.append((host, node))
        return out

    def stats(self) -> VClusterStats:
        nodes = [n for _, n in self.vnodes()]
        return VClusterStats(
            level_name=self.level.name,
            num_vnodes=len(nodes),
            num_vms=sum(len(n.vm_ids) for n in nodes),
            allocated_vcpus=sum(n.allocated_vcpus for n in nodes),
            capacity_vcpus=sum(n.capacity_vcpus for n in nodes),
            allocated_cpus=sum(n.num_cpus for n in nodes),
            allocated_mem_gb=sum(n.allocated_mem for n in nodes),
        )

    def allocation(self) -> ResourceVector:
        nodes = [n for _, n in self.vnodes()]
        return ResourceVector(
            float(sum(n.num_cpus for n in nodes)),
            sum(n.allocated_mem for n in nodes),
        )
