"""The score-based global scheduler (paper §II-B and §VI).

:class:`ScoreBasedScheduler` reproduces the standard control-plane
selection loop: filter candidates on hard constraints, score survivors
with a weighted sum of weighers, pick the best (lowest host rank breaks
ties, which makes every policy deterministic).

SlackVM is *not* a new scheduler — it is this pipeline with the
:class:`~repro.scheduling.weighers.ProgressWeigher` plugged in, exactly
as the paper advocates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.types import VMRequest
from repro.localsched.agent import LocalScheduler
from repro.obs.records import HostDecision
from repro.scheduling.filters import CapacityFilter, HostFilter, LevelSupportFilter
from repro.scheduling.weighers import (
    FirstFitWeigher,
    HostWeigher,
    ProgressWeigher,
)

__all__ = ["ScoreBasedScheduler", "SelectionTrace"]


@dataclass(frozen=True, slots=True)
class SelectionTrace:
    """Diagnostic record of one selection round (for tests/analysis)."""

    vm_id: str
    candidates: tuple[int, ...]
    scores: tuple[float, ...]
    selected: Optional[int]


class ScoreBasedScheduler:
    """Filter + weigh host selection.

    Parameters
    ----------
    filters:
        Hard constraints; defaults to level support + capacity.
    weighers:
        ``(weigher, weight)`` pairs combined as a weighted sum.
    """

    def __init__(
        self,
        filters: Sequence[HostFilter] | None = None,
        weighers: Sequence[tuple[HostWeigher, float]] | None = None,
        name: str = "score-based",
    ):
        self.filters: tuple[HostFilter, ...] = (
            tuple(filters) if filters is not None else (LevelSupportFilter(), CapacityFilter())
        )
        self.weighers: tuple[tuple[HostWeigher, float], ...] = (
            tuple(weighers) if weighers is not None else ((ProgressWeigher(), 1.0),)
        )
        self.name = name

    def select(
        self, hosts: Sequence[LocalScheduler], vm: VMRequest
    ) -> Optional[int]:
        """Index of the chosen host, or None when no host passes the filters."""
        best_idx: Optional[int] = None
        best_score = float("-inf")
        for idx, host in enumerate(hosts):
            if not all(f.passes(host, vm) for f in self.filters):
                continue
            score = sum(w * weigher.weigh(host, vm, idx) for weigher, w in self.weighers)
            if score > best_score:  # strict: ties keep the lowest index
                best_score = score
                best_idx = idx
        return best_idx

    def select_traced(
        self, hosts: Sequence[LocalScheduler], vm: VMRequest
    ) -> SelectionTrace:
        """Like :meth:`select` but returns the full candidate/score table."""
        cands: list[int] = []
        scores: list[float] = []
        for idx, host in enumerate(hosts):
            if not all(f.passes(host, vm) for f in self.filters):
                continue
            cands.append(idx)
            scores.append(
                sum(w * weigher.weigh(host, vm, idx) for weigher, w in self.weighers)
            )
        selected = None
        if cands:
            best = max(range(len(cands)), key=lambda i: (scores[i], -cands[i]))
            selected = cands[best]
        return SelectionTrace(vm.vm_id, tuple(cands), tuple(scores), selected)

    def _weigher_names(self) -> tuple[str, ...]:
        """Stable display names for the weighers (deduplicated by rank)."""
        names: list[str] = []
        for weigher, _ in self.weighers:
            base = type(weigher).__name__
            name = base
            k = 2
            while name in names:
                name = f"{base}#{k}"
                k += 1
            names.append(name)
        return tuple(names)

    def decide(
        self, hosts: Sequence[LocalScheduler], vm: VMRequest
    ) -> tuple[Optional[int], tuple[HostDecision, ...]]:
        """Like :meth:`select`, but returns the full per-host audit trail.

        Every filter is evaluated on every host (no short-circuiting) so
        the verdict table is complete; candidates additionally carry
        their per-weigher weighted score contributions.  The selected
        index is guaranteed to match :meth:`select` — this is the
        instrumented path the observability layer records from.
        """
        wnames = self._weigher_names()
        decisions: list[HostDecision] = []
        selected: Optional[int] = None
        best_score = float("-inf")
        for idx, host in enumerate(hosts):
            verdicts = {repr(f): f.passes(host, vm) for f in self.filters}
            eligible = all(verdicts.values())
            if not eligible:
                decisions.append(HostDecision(idx, False, verdicts))
                continue
            contributions = {
                name: w * weigher.weigh(host, vm, idx)
                for name, (weigher, w) in zip(wnames, self.weighers)
            }
            score = sum(contributions.values())
            decisions.append(HostDecision(idx, True, verdicts, contributions, score))
            if score > best_score:  # strict: ties keep the lowest index
                best_score = score
                selected = idx
        return selected, tuple(decisions)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ScoreBasedScheduler({self.name})"
