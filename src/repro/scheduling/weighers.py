"""Soft-constraint weighers of the score-based scheduler pipeline.

Each weigher scores every surviving host (higher is better); the global
scheduler combines them with configurable weights, exactly like the
weigher stage of OpenStack Nova (§II-B).  SlackVM's contribution is
:class:`ProgressWeigher`, which plugs Algorithm 2 into this stage.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.types import VMRequest
from repro.localsched.agent import LocalScheduler
from repro.scheduling.progress import progress_score

__all__ = [
    "HostWeigher",
    "ProgressWeigher",
    "FirstFitWeigher",
    "BestFitWeigher",
    "WorstFitWeigher",
    "ConsolidationWeigher",
]


class HostWeigher(ABC):
    """One scoring rule applied to every filtered candidate host."""

    @abstractmethod
    def weigh(self, host: LocalScheduler, vm: VMRequest, index: int) -> float:
        """Score ``host`` for ``vm``; ``index`` is the host's stable rank
        in the cluster (used by order-dependent policies)."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return type(self).__name__


class ProgressWeigher(HostWeigher):
    """SlackVM's M/C progress metric (Algorithm 2)."""

    def __init__(self, negative_factor: bool = True):
        self.negative_factor = negative_factor

    def weigh(self, host: LocalScheduler, vm: VMRequest, index: int) -> float:
        return progress_score(
            host.machine.capacity,
            host.allocation(),
            vm.allocation(),
            negative_factor=self.negative_factor,
        )


class FirstFitWeigher(HostWeigher):
    """Prefer the lowest-ranked host that fits (the packing baseline)."""

    def weigh(self, host: LocalScheduler, vm: VMRequest, index: int) -> float:
        return float(-index)


class BestFitWeigher(HostWeigher):
    """Prefer the host left with the least normalized free capacity."""

    def weigh(self, host: LocalScheduler, vm: VMRequest, index: int) -> float:
        cap = host.machine.capacity
        after = host.allocation() + vm.allocation()
        free = (cap.cpu - after.cpu) / cap.cpu + (cap.mem - after.mem) / cap.mem
        return -free


class WorstFitWeigher(HostWeigher):
    """Prefer the emptiest host (load spreading, anti-packing)."""

    def weigh(self, host: LocalScheduler, vm: VMRequest, index: int) -> float:
        cap = host.machine.capacity
        after = host.allocation() + vm.allocation()
        return (cap.cpu - after.cpu) / cap.cpu + (cap.mem - after.mem) / cap.mem


class ConsolidationWeigher(HostWeigher):
    """Prefer already-busy hosts over idle ones (keeps idle PMs dark)."""

    def weigh(self, host: LocalScheduler, vm: VMRequest, index: int) -> float:
        return 0.0 if host.is_empty else 1.0
