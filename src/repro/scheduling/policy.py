"""Declarative scheduler policies (OpenStack-style configuration).

Production control planes configure their filter/weigher pipelines as
data, not code.  This module builds a
:class:`~repro.scheduling.global_scheduler.ScoreBasedScheduler` from a
JSON-compatible spec:

```json
{
  "name": "prod",
  "filters": ["level_support", "capacity", {"name": "max_vms", "max_vms": 80}],
  "weighers": [
    {"name": "progress", "weight": 1.0},
    {"name": "best_fit", "weight": 0.2},
    {"name": "first_fit", "weight": 1e-9}
  ]
}
```

Filters and weighers register by name; libraries embedding repro can
extend the registries with their own rules.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Mapping

from repro.core.errors import ConfigError
from repro.scheduling.filters import (
    AntiAffinityFilter,
    CapacityFilter,
    HostFilter,
    LevelSupportFilter,
    MaxVMsFilter,
)
from repro.scheduling.global_scheduler import ScoreBasedScheduler
from repro.scheduling.weighers import (
    BestFitWeigher,
    ConsolidationWeigher,
    FirstFitWeigher,
    HostWeigher,
    ProgressWeigher,
    WorstFitWeigher,
)

__all__ = [
    "FILTER_REGISTRY",
    "WEIGHER_REGISTRY",
    "register_filter",
    "register_weigher",
    "scheduler_from_spec",
    "load_policy",
]

FILTER_REGISTRY: dict[str, Callable[..., HostFilter]] = {
    "level_support": LevelSupportFilter,
    "capacity": CapacityFilter,
    "max_vms": MaxVMsFilter,
    "anti_affinity": AntiAffinityFilter,
}

WEIGHER_REGISTRY: dict[str, Callable[..., HostWeigher]] = {
    "progress": ProgressWeigher,
    "first_fit": FirstFitWeigher,
    "best_fit": BestFitWeigher,
    "worst_fit": WorstFitWeigher,
    "consolidation": ConsolidationWeigher,
}


def register_filter(name: str, factory: Callable[..., HostFilter]) -> None:
    """Add a custom filter to the registry (embedding extension point)."""
    if name in FILTER_REGISTRY:
        raise ConfigError(f"filter {name!r} is already registered")
    FILTER_REGISTRY[name] = factory


def register_weigher(name: str, factory: Callable[..., HostWeigher]) -> None:
    if name in WEIGHER_REGISTRY:
        raise ConfigError(f"weigher {name!r} is already registered")
    WEIGHER_REGISTRY[name] = factory


def _build(entry, registry: Mapping[str, Callable], kind: str):
    if isinstance(entry, str):
        name, kwargs = entry, {}
    elif isinstance(entry, Mapping):
        kwargs = dict(entry)
        try:
            name = kwargs.pop("name")
        except KeyError:
            raise ConfigError(f"{kind} entry {entry!r} is missing 'name'") from None
    else:
        raise ConfigError(f"{kind} entry must be a string or mapping, got {entry!r}")
    try:
        factory = registry[name]
    except KeyError:
        raise ConfigError(
            f"unknown {kind} {name!r}; registered: {sorted(registry)}"
        ) from None
    return name, kwargs, factory


def scheduler_from_spec(spec: Mapping) -> ScoreBasedScheduler:
    """Build a scheduler from a JSON-compatible spec (see module docs)."""
    if not isinstance(spec, Mapping):
        raise ConfigError("policy spec must be a mapping")
    filters = []
    for entry in spec.get("filters", ["level_support", "capacity"]):
        name, kwargs, factory = _build(entry, FILTER_REGISTRY, "filter")
        try:
            filters.append(factory(**kwargs))
        except TypeError as exc:
            raise ConfigError(f"filter {name!r}: {exc}") from exc
    weighers = []
    for entry in spec.get("weighers", [{"name": "progress", "weight": 1.0}]):
        if isinstance(entry, str):
            entry = {"name": entry}
        if not isinstance(entry, Mapping):
            raise ConfigError(f"weigher entry must be a mapping, got {entry!r}")
        kwargs = dict(entry)
        weight = float(kwargs.pop("weight", 1.0))
        name, kwargs, factory = _build(kwargs, WEIGHER_REGISTRY, "weigher")
        try:
            weighers.append((factory(**kwargs), weight))
        except TypeError as exc:
            raise ConfigError(f"weigher {name!r}: {exc}") from exc
    if not weighers:
        raise ConfigError("a policy needs at least one weigher")
    return ScoreBasedScheduler(
        filters=tuple(filters),
        weighers=tuple(weighers),
        name=str(spec.get("name", "custom-policy")),
    )


def load_policy(path: str | Path) -> ScoreBasedScheduler:
    """Load a policy spec from a JSON file."""
    path = Path(path)
    try:
        spec = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: invalid JSON: {exc}") from exc
    return scheduler_from_spec(spec)
