"""CPU-topology model: sockets, NUMA nodes, cache hierarchy, SMT.

The SlackVM local scheduler reasons about *core proximity* through the
cache hierarchy (paper §V-A).  This module provides a synthetic but
faithful topology description, able to model both AMD EPYC-style
segmented last-level caches (small CCX groups sharing an L3) and
Intel-style monolithic LLCs, with or without SMT.

A :class:`Topology` exposes, for every *logical* CPU (thread):

* its physical core id (SMT siblings share one),
* its socket and NUMA node,
* the id of the cache it belongs to at each level (L1..Ln).

Cache-zone ids are globally unique so two cores share a cache level iff
their ids at that level are equal — exactly the information Linux
exposes through sysfs and that Algorithm 1 consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.errors import TopologyError

__all__ = ["CpuInfo", "Topology", "build_topology", "epyc_7662_dual", "xeon_8280_dual", "small_smp"]


@dataclass(frozen=True, slots=True)
class CpuInfo:
    """Description of one logical CPU (hardware thread)."""

    cpu_id: int
    physical_core: int
    socket: int
    numa_node: int
    #: cache-zone id per level, index 0 = L1 ... index n-1 = LLC.
    cache_ids: tuple[int, ...]


class Topology:
    """An immutable machine CPU topology.

    Parameters
    ----------
    cpus:
        Per-logical-CPU descriptions.  Must be contiguous ids from 0.
    numa_distances:
        Square matrix of Linux-style NUMA distances (10 = local).
    """

    def __init__(self, cpus: Sequence[CpuInfo], numa_distances: np.ndarray):
        cpus = list(cpus)
        if not cpus:
            raise TopologyError("a topology needs at least one CPU")
        if [c.cpu_id for c in cpus] != list(range(len(cpus))):
            raise TopologyError("cpu ids must be contiguous from 0")
        heights = {len(c.cache_ids) for c in cpus}
        if len(heights) != 1:
            raise TopologyError("all CPUs must report the same cache height")
        nodes = {c.numa_node for c in cpus}
        dist = np.asarray(numa_distances, dtype=float)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise TopologyError("numa_distances must be square")
        if max(nodes) >= dist.shape[0]:
            raise TopologyError("numa_distances smaller than the node count")
        self._cpus: tuple[CpuInfo, ...] = tuple(cpus)
        self._numa = dist
        self._height = heights.pop()
        self._distance_matrix: np.ndarray | None = None
        self._siblings: dict[int, tuple[int, ...]] = {}
        by_phys: dict[int, list[int]] = {}
        for c in cpus:
            by_phys.setdefault(c.physical_core, []).append(c.cpu_id)
        for ids in by_phys.values():
            t = tuple(sorted(ids))
            for i in t:
                self._siblings[i] = t

    # -- basic accessors -------------------------------------------------

    def __len__(self) -> int:
        return len(self._cpus)

    @property
    def num_cpus(self) -> int:
        """Number of logical CPUs (threads)."""
        return len(self._cpus)

    @property
    def num_physical_cores(self) -> int:
        return len({c.physical_core for c in self._cpus})

    @property
    def smt_factor(self) -> int:
        """Threads per physical core (1 when SMT is off)."""
        return self.num_cpus // self.num_physical_cores

    @property
    def cache_height(self) -> int:
        """Number of cache levels described (e.g. 3 for L1/L2/L3)."""
        return self._height

    @property
    def num_sockets(self) -> int:
        return len({c.socket for c in self._cpus})

    @property
    def num_numa_nodes(self) -> int:
        return len({c.numa_node for c in self._cpus})

    def cpu(self, cpu_id: int) -> CpuInfo:
        return self._cpus[cpu_id]

    def cpus(self) -> tuple[CpuInfo, ...]:
        return self._cpus

    def cache_id(self, level: int, cpu_id: int) -> int:
        """Cache-zone id of ``cpu_id`` at 1-based cache ``level``."""
        if not 1 <= level <= self._height:
            raise TopologyError(f"cache level {level} out of range 1..{self._height}")
        return self._cpus[cpu_id].cache_ids[level - 1]

    def siblings_of(self, cpu_id: int) -> tuple[int, ...]:
        """All logical CPUs sharing ``cpu_id``'s physical core (incl. itself)."""
        return self._siblings[cpu_id]

    def physical_core_of(self, cpu_id: int) -> int:
        return self._cpus[cpu_id].physical_core

    def physical_cores_spanned(self, cpu_ids: Iterable[int]) -> int:
        """Number of distinct physical cores covered by ``cpu_ids``."""
        return len({self._cpus[c].physical_core for c in cpu_ids})

    def numa_distance(self, cpu0: int, cpu1: int) -> float:
        return float(self._numa[self._cpus[cpu0].numa_node, self._cpus[cpu1].numa_node])

    # -- Algorithm 1 -----------------------------------------------------

    def core_distance(self, cpu0: int, cpu1: int) -> float:
        """Distance between two logical CPUs (paper Algorithm 1).

        Walk the cache hierarchy from the closest level up; every level
        at which the two CPUs do *not* share a cache adds 10 (the same
        order of magnitude as Linux NUMA distances, per the paper).  If
        no cache is shared at any level, the NUMA distance is added on
        top.  Level 0 is the physical core itself, so SMT siblings are
        at distance 0.
        """
        a, b = self._cpus[cpu0], self._cpus[cpu1]
        if a.physical_core == b.physical_core:
            return 0.0
        distance = 10.0  # level 0 (the core) differs
        for level in range(self._height):
            if a.cache_ids[level] == b.cache_ids[level]:
                return distance
            distance += 10.0
        return distance + float(self._numa[a.numa_node, b.numa_node])

    def distance_matrix(self) -> np.ndarray:
        """Full pairwise distance matrix (cached; vectorized build)."""
        if self._distance_matrix is None:
            n = self.num_cpus
            phys = np.array([c.physical_core for c in self._cpus])
            nodes = np.array([c.numa_node for c in self._cpus])
            # Start assuming nothing shared: 10 * (height + 1) + NUMA.
            dist = np.full((n, n), 10.0 * (self._height + 1)) + self._numa[
                np.ix_(nodes, nodes)
            ]
            # Shared cache at level l (1-based) => distance 10 * l, take
            # the innermost (smallest) level that matches.
            for level in range(self._height - 1, -1, -1):
                ids = np.array([c.cache_ids[level] for c in self._cpus])
                shared = ids[:, None] == ids[None, :]
                dist[shared] = 10.0 * (level + 1)
            dist[phys[:, None] == phys[None, :]] = 0.0
            self._distance_matrix = dist
        return self._distance_matrix


def build_topology(
    *,
    sockets: int = 1,
    cores_per_socket: int = 8,
    smt: int = 1,
    llc_group: int | None = None,
    l2_group: int = 1,
    numa_per_socket: int = 1,
    remote_numa_distance: float = 32.0,
    local_numa_distance: float = 10.0,
) -> Topology:
    """Construct a synthetic topology.

    Parameters
    ----------
    llc_group:
        Physical cores sharing one last-level cache.  ``None`` means the
        whole socket shares the LLC (monolithic, Intel-style); a small
        value (e.g. 4) models AMD CCX-style segmented L3.
    l2_group:
        Physical cores sharing one L2 (1 = private L2).
    smt:
        Hardware threads per physical core.
    """
    if sockets < 1 or cores_per_socket < 1 or smt < 1:
        raise TopologyError("sockets, cores_per_socket and smt must be >= 1")
    if numa_per_socket < 1 or cores_per_socket % numa_per_socket:
        raise TopologyError("numa_per_socket must divide cores_per_socket")
    if llc_group is None:
        llc_group = cores_per_socket
    if llc_group < 1 or l2_group < 1:
        raise TopologyError("cache group sizes must be >= 1")

    cpus: list[CpuInfo] = []
    cores_per_node = cores_per_socket // numa_per_socket
    total_nodes = sockets * numa_per_socket
    cpu_id = 0
    # Cache ids are allocated from disjoint ranges per level to keep them
    # globally unique (a core's L1 id can never collide with an L3 id).
    for sock in range(sockets):
        for core in range(cores_per_socket):
            phys = sock * cores_per_socket + core
            node = sock * numa_per_socket + core // cores_per_node
            l1 = phys  # private L1 per physical core
            l2 = 1_000_000 + sock * cores_per_socket + core // l2_group
            l3 = 2_000_000 + sock * cores_per_socket + core // llc_group
            for _thread in range(smt):
                cpus.append(
                    CpuInfo(
                        cpu_id=cpu_id,
                        physical_core=phys,
                        socket=sock,
                        numa_node=node,
                        cache_ids=(l1, l2, l3),
                    )
                )
                cpu_id += 1
    numa = np.full((total_nodes, total_nodes), remote_numa_distance)
    np.fill_diagonal(numa, local_numa_distance)
    # Nodes within one socket are closer than cross-socket.
    for sock in range(sockets):
        lo, hi = sock * numa_per_socket, (sock + 1) * numa_per_socket
        numa[lo:hi, lo:hi] = (local_numa_distance + remote_numa_distance) / 2
        np.fill_diagonal(numa[lo:hi, lo:hi], local_numa_distance)
    return Topology(cpus, numa)


def epyc_7662_dual() -> Topology:
    """The paper's testbed CPU (Table III): 2× AMD EPYC 7662.

    64 physical cores per socket, SMT 2 (256 threads total), L3 shared
    by CCX groups of 4 cores, one NUMA node per socket (NPS1).
    """
    return build_topology(
        sockets=2,
        cores_per_socket=64,
        smt=2,
        llc_group=4,
        l2_group=1,
        numa_per_socket=1,
    )


def xeon_8280_dual() -> Topology:
    """A monolithic-LLC contrast machine: 2×28 cores, SMT 2."""
    return build_topology(sockets=2, cores_per_socket=28, smt=2, llc_group=28)


def small_smp(cores: int = 8, smt: int = 1) -> Topology:
    """A small single-socket machine, handy for tests and examples."""
    return build_topology(sockets=1, cores_per_socket=cores, smt=smt, llc_group=4)
