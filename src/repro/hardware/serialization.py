"""Topology (de)serialization.

Real deployments describe their machines once and reuse the
description; this module round-trips :class:`~repro.hardware.topology.Topology`
objects through plain dicts / JSON files so custom hardware can be
declared as data (one entry per logical CPU, mirroring what Linux
exposes under ``/sys/devices/system/cpu``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.errors import TopologyError
from repro.hardware.topology import CpuInfo, Topology

__all__ = ["topology_to_dict", "topology_from_dict", "save_topology", "load_topology"]

_FORMAT_VERSION = 1


def topology_to_dict(topology: Topology) -> dict:
    """A JSON-compatible description of a topology."""
    return {
        "version": _FORMAT_VERSION,
        "cpus": [
            {
                "cpu_id": c.cpu_id,
                "physical_core": c.physical_core,
                "socket": c.socket,
                "numa_node": c.numa_node,
                "cache_ids": list(c.cache_ids),
            }
            for c in topology.cpus()
        ],
        "numa_distances": [
            [
                float(topology.numa_distance(_first_cpu(topology, a),
                                             _first_cpu(topology, b)))
                for b in range(topology.num_numa_nodes)
            ]
            for a in range(topology.num_numa_nodes)
        ],
    }


def _first_cpu(topology: Topology, node: int) -> int:
    for c in topology.cpus():
        if c.numa_node == node:
            return c.cpu_id
    raise TopologyError(f"no CPU on NUMA node {node}")


def topology_from_dict(data: dict) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    if not isinstance(data, dict) or "cpus" not in data:
        raise TopologyError("invalid topology description: missing 'cpus'")
    version = data.get("version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise TopologyError(f"unsupported topology format version {version}")
    try:
        cpus = [
            CpuInfo(
                cpu_id=int(row["cpu_id"]),
                physical_core=int(row["physical_core"]),
                socket=int(row["socket"]),
                numa_node=int(row["numa_node"]),
                cache_ids=tuple(int(x) for x in row["cache_ids"]),
            )
            for row in data["cpus"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise TopologyError(f"invalid CPU row in topology description: {exc}") from exc
    if "numa_distances" not in data:
        raise TopologyError("invalid topology description: missing 'numa_distances'")
    distances = np.asarray(data["numa_distances"], dtype=float)
    cpus.sort(key=lambda c: c.cpu_id)
    return Topology(cpus, distances)


def save_topology(topology: Topology, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(topology_to_dict(topology), indent=2), encoding="utf-8"
    )


def load_topology(path: str | Path) -> Topology:
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise TopologyError(f"{path}: invalid JSON: {exc}") from exc
    return topology_from_dict(data)
