"""Physical-machine specifications.

A :class:`MachineSpec` couples schedulable CPU capacity (logical CPUs,
i.e. hardware threads — the unit both the paper's testbed M/C ratio and
its simulation use) with memory capacity, and optionally carries a full
:class:`~repro.hardware.topology.Topology` for topology-aware pinning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.errors import ConfigError
from repro.core.types import ResourceVector
from repro.hardware.topology import Topology, build_topology, epyc_7662_dual

__all__ = ["MachineSpec", "EPYC_7662_DUAL", "SIM_WORKER", "machine_from_topology"]


@dataclass(frozen=True)
class MachineSpec:
    """Hardware configuration of one PM.

    ``cpus`` counts *schedulable* CPUs: the paper's testbed reports
    256 threads and 1 TB, giving the M/C "target ratio" of
    1000/256 ≈ 4 GB per CPU; its simulated workers expose 32 cores and
    128 GB (also 4 GB per core).
    """

    name: str
    cpus: int
    mem_gb: float
    topology_factory: Optional[Callable[[], Topology]] = None

    def __post_init__(self) -> None:
        if self.cpus <= 0:
            raise ConfigError(f"cpus must be positive, got {self.cpus}")
        if self.mem_gb <= 0:
            raise ConfigError(f"mem_gb must be positive, got {self.mem_gb}")

    @property
    def capacity(self) -> ResourceVector:
        return ResourceVector(float(self.cpus), float(self.mem_gb))

    @property
    def target_ratio(self) -> float:
        """Hardware M/C ratio (GB per schedulable CPU) — §III-B."""
        return self.mem_gb / self.cpus

    def build_topology(self) -> Topology:
        """Materialize this machine's CPU topology.

        Falls back to a generic single-socket topology matching the CPU
        count when no explicit factory is configured.
        """
        if self.topology_factory is not None:
            topo = self.topology_factory()
        else:
            topo = build_topology(sockets=1, cores_per_socket=self.cpus, llc_group=8)
        if topo.num_cpus != self.cpus:
            raise ConfigError(
                f"topology exposes {topo.num_cpus} CPUs but spec says {self.cpus}"
            )
        return topo


def machine_from_topology(name: str, topology: Topology, mem_gb: float) -> MachineSpec:
    """Build a spec whose CPU count is derived from an explicit topology."""
    return MachineSpec(
        name=name,
        cpus=topology.num_cpus,
        mem_gb=mem_gb,
        topology_factory=lambda: topology,
    )


#: The paper's physical testbed (Table III): 2× EPYC 7662, 256 threads, 1 TB.
EPYC_7662_DUAL = MachineSpec(
    name="2xEPYC-7662",
    cpus=256,
    mem_gb=1000.0,
    topology_factory=epyc_7662_dual,
)

#: The paper's simulated worker (§VII-B1): 32 cores, 128 GB (M/C = 4).
SIM_WORKER = MachineSpec(name="sim-worker", cpus=32, mem_gb=128.0)
