"""Hardware substrate: CPU topologies, cache distances, machine specs."""

from repro.hardware.machine import EPYC_7662_DUAL, SIM_WORKER, MachineSpec, machine_from_topology
from repro.hardware.serialization import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.hardware.topology import (
    CpuInfo,
    Topology,
    build_topology,
    epyc_7662_dual,
    small_smp,
    xeon_8280_dual,
)

__all__ = [
    "MachineSpec",
    "machine_from_topology",
    "EPYC_7662_DUAL",
    "SIM_WORKER",
    "CpuInfo",
    "Topology",
    "build_topology",
    "epyc_7662_dual",
    "xeon_8280_dual",
    "small_smp",
    "topology_to_dict",
    "topology_from_dict",
    "save_topology",
    "load_topology",
]
