"""The unified public API: one frozen spec, one entry point.

>>> from repro.api import RunSpec, run
>>> result = run(RunSpec(provider="azure", mix="F", shards=4))

:class:`RunSpec` declares a run (workload recipe, topology, policy,
kernel, oversub strategy, shard geometry, seed); :func:`run`
materializes and executes it.  :func:`evaluate` runs the paper's
§VII-B baseline-vs-SlackVM protocol for the same spec.  CLI handlers,
the sweep runner's cells and the bench harness all construct through
this module — it is the only supported construction path; the older
keyword sprawl survives behind deprecation shims for one release.
"""

from repro.api.run import (
    AUTO_SIZE_HEADROOM,
    build_config,
    build_machines,
    build_simulation,
    build_workload,
    evaluate,
    run,
)
from repro.api.spec import ENGINES, SPEC_VERSION, RunSpec

__all__ = [
    "AUTO_SIZE_HEADROOM",
    "ENGINES",
    "RunSpec",
    "SPEC_VERSION",
    "build_config",
    "build_machines",
    "build_simulation",
    "build_workload",
    "evaluate",
    "run",
]
