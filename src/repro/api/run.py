"""Materialize a :class:`~repro.api.spec.RunSpec` and run it.

The construction pipeline is factored so front ends can reuse any
stage: ``build_workload`` (trace), ``build_machines`` (fleet, with
demand-derived auto-sizing), ``build_config`` (levels present in the
trace + pooling), ``build_simulation`` (engine selection), and the two
drivers — :func:`run` for one simulation and :func:`evaluate` for the
paper's full §VII-B baseline-vs-SlackVM protocol.

Every stage is a pure function of the spec (plus the trace it
generated), so ``run(spec)`` is deterministic and seed-reproducible by
construction.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

from repro.api.spec import RunSpec
from repro.core.config import SlackVMConfig
from repro.core.errors import ConfigError
from repro.core.types import OversubscriptionLevel, VMRequest
from repro.hardware.machine import MachineSpec
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.records import NULL_RECORDER, DecisionRecorder
from repro.oversub.controller import OversubParams
from repro.oversub.estimators import make_estimator
from repro.sharding.dispatcher import ShardedSimulation
from repro.simulator.engine import Simulation, SimulationResult, build_hosts
from repro.simulator.sizing import demand_lower_bound
from repro.workload.catalog import PROVIDERS
from repro.workload.generator import WorkloadParams, generate_workload

__all__ = [
    "AUTO_SIZE_HEADROOM",
    "build_config",
    "build_machines",
    "build_simulation",
    "build_workload",
    "evaluate",
    "run",
]

#: Auto-sizing headroom over the demand lower bound (``num_hosts=0``):
#: enough slack that well-behaved policies place everything, without
#: paying the full minimal-cluster binary search on every run.
AUTO_SIZE_HEADROOM = 1.15


def build_workload(spec: RunSpec) -> list[VMRequest]:
    """The spec's one-week trace — a pure function of ``(spec, seed)``."""
    params = WorkloadParams(
        catalog=PROVIDERS[spec.provider],
        level_mix=spec.mix_tuple,
        target_population=spec.target_population,
        seed=spec.seed,
    )
    return generate_workload(params)


def build_machines(
    spec: RunSpec, workload: Optional[Sequence[VMRequest]] = None
) -> list[MachineSpec]:
    """The spec's host fleet.

    ``num_hosts=0`` auto-sizes: the demand lower bound of the workload
    (generated from the spec when not supplied) times
    :data:`AUTO_SIZE_HEADROOM`, floored at the shard count so every
    shard owns at least one host.
    """
    count = spec.num_hosts
    if count == 0:
        if workload is None:
            workload = build_workload(spec)
        envelope = MachineSpec(
            name="host", cpus=spec.host_cpus, mem_gb=spec.host_mem_gb
        )
        count = math.ceil(demand_lower_bound(workload, envelope) * AUTO_SIZE_HEADROOM)
        count = max(count, spec.shards)
    return [
        MachineSpec(name=f"host-{i}", cpus=spec.host_cpus, mem_gb=spec.host_mem_gb)
        for i in range(count)
    ]


def build_config(
    spec: RunSpec, workload: Optional[Sequence[VMRequest]] = None
) -> SlackVMConfig:
    """Oversubscription levels present in the trace + the pooling knob."""
    if workload is None:
        workload = build_workload(spec)
    present = sorted({vm.level.ratio for vm in workload})
    if not present:
        return SlackVMConfig(pooling=spec.pooling)
    return SlackVMConfig(
        levels=tuple(OversubscriptionLevel(r) for r in present),
        pooling=spec.pooling,
    )


def _oversub_params(spec: RunSpec) -> Optional[OversubParams]:
    if spec.oversub is None:
        return None
    return OversubParams(
        estimator=make_estimator(spec.oversub),
        update_every=spec.oversub_update_every,
    )


def build_simulation(
    spec: RunSpec,
    machines: Sequence[MachineSpec],
    config: Optional[SlackVMConfig] = None,
    recorder: DecisionRecorder = NULL_RECORDER,
    metrics: MetricsRegistry = NULL_METRICS,
) -> Union[ShardedSimulation, Simulation]:
    """The spec's engine over an explicit fleet.

    The vector engine always goes through
    :class:`~repro.sharding.ShardedSimulation` — ``shards=1`` delegates
    to a single in-process :class:`VectorSimulation`, byte-identical to
    constructing one directly, so there is exactly one construction
    path whatever the shard count.  ``engine="object"`` builds the
    reference object-graph engine (no kernel seam, no sharding).
    """
    cfg = config if config is not None else SlackVMConfig(pooling=spec.pooling)
    if spec.engine == "object":
        from repro.scheduling.baselines import scheduler_for_policy

        if len({(m.cpus, m.mem_gb) for m in machines}) > 1:
            raise ConfigError(
                "the object engine builds homogeneous clusters; "
                "got heterogeneous machine specs"
            )
        hosts = build_hosts(machines[0], len(machines), cfg)
        return Simulation(
            hosts,
            scheduler_for_policy(spec.policy),
            fail_fast=spec.fail_fast,
            recorder=recorder,
            metrics=metrics,
            oversub=_oversub_params(spec),
        )
    return ShardedSimulation(
        machines,
        cfg,
        policy=spec.policy,
        kernel=spec.kernel,
        shards=spec.shards,
        router=spec.router,
        workers=spec.workers,
        seed=spec.seed,
        fail_fast=spec.fail_fast,
        recorder=recorder,
        metrics=metrics,
        oversub=_oversub_params(spec),
    )


def run(
    spec: RunSpec,
    workload: Optional[Sequence[VMRequest]] = None,
    recorder: DecisionRecorder = NULL_RECORDER,
    metrics: MetricsRegistry = NULL_METRICS,
) -> SimulationResult:
    """The single entry point: one spec in, one result out.

    ``workload`` overrides the generated trace (e.g. a replayed
    production trace); topology auto-sizing then sizes against it.
    """
    wl = list(workload) if workload is not None else build_workload(spec)
    machines = build_machines(spec, wl)
    config = build_config(spec, wl)
    sim = build_simulation(
        spec, machines, config=config, recorder=recorder, metrics=metrics
    )
    return sim.run(wl)


def evaluate(
    spec: RunSpec,
    baseline_policy: str = "first_fit",
    workload: Optional[Sequence[VMRequest]] = None,
) -> "DistributionOutcome":  # noqa: F821 — deferred import below
    """The §VII-B protocol (dedicated baselines vs shared SlackVM).

    Wraps :func:`repro.analysis.experiments._evaluate_catalog` — the
    minimal-cluster search per level plus the shared cluster, run on
    the spec's kernel and shard geometry.
    """
    from repro.analysis.experiments import _evaluate_catalog

    machine = MachineSpec(
        name="host", cpus=spec.host_cpus, mem_gb=spec.host_mem_gb
    )
    return _evaluate_catalog(
        PROVIDERS[spec.provider],
        spec.mix_tuple,
        machine=machine,
        target_population=spec.target_population,
        seed=spec.seed,
        policy=spec.policy,
        pooling=spec.pooling,
        baseline_policy=baseline_policy,
        workload=workload,
        kernel=spec.kernel,
        shards=spec.shards,
        router=spec.router,
        workers=spec.workers,
    )
