"""The unified run specification — one frozen value names one run.

Every front end (CLI handlers, the sweep runner's cells, the engine
bench harness) used to hand-thread its own subset of a dozen
positional knobs into :class:`VectorSimulation`, ``evaluate_distribution``
and friends.  :class:`RunSpec` is the single description they all parse
into now: cluster topology, workload recipe, scheduling policy, kernel,
oversubscription strategy, shard geometry and seed, with validation at
construction so a bad knob fails before any work starts.

The spec is *declarative* — building workloads, machines and engines
from it lives in :mod:`repro.api.run`.  ``to_dict``/``from_dict``
round-trip through JSON primitives and :meth:`fingerprint` hashes the
canonical form, the same discipline as
:class:`repro.runner.spec.SweepSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from hashlib import sha256
from json import dumps
from typing import Optional, Union

from repro.core.errors import ConfigError
from repro.oversub.estimators import STRATEGIES
from repro.sharding.router import ROUTERS
from repro.simulator.vectorpool import KERNELS, POLICIES
from repro.workload.catalog import PROVIDERS
from repro.workload.distributions import DISTRIBUTIONS, LevelMix

__all__ = ["ENGINES", "RunSpec", "SPEC_VERSION"]

#: Simulation engines selectable by :attr:`RunSpec.engine`.
ENGINES = ("vector", "object")

#: Bump when the field set changes incompatibly (fingerprints shift).
SPEC_VERSION = 1


@dataclass(frozen=True)
class RunSpec:
    """One simulated run, fully described.

    ``num_hosts=0`` means *auto-size*: build the smallest demand-derived
    cluster with 15% headroom (see :func:`repro.api.run.build_machines`).
    ``mix`` is a paper distribution letter (``"F"``) or a
    ``(1:1, 2:1, 3:1)`` percent triple.  ``oversub=None`` keeps static
    levels; a strategy name from :data:`repro.oversub.STRATEGIES`
    activates the dynamic controller.  ``shards=1`` is the plain
    single-process engine; higher counts fan out through
    :class:`repro.sharding.ShardedSimulation` (``workers=0`` → one
    process per shard).
    """

    # -- workload ------------------------------------------------------------
    provider: str = "azure"
    mix: Union[str, LevelMix] = (100.0, 0.0, 0.0)
    target_population: int = 500
    seed: int = 0

    # -- topology ------------------------------------------------------------
    num_hosts: int = 0
    host_cpus: int = 32
    host_mem_gb: float = 128.0

    # -- scheduling ----------------------------------------------------------
    policy: str = "progress"
    kernel: str = "incremental"
    engine: str = "vector"
    pooling: bool = True
    fail_fast: bool = False

    # -- dynamic oversubscription -------------------------------------------
    oversub: Optional[str] = None
    oversub_update_every: float = 3600.0

    # -- sharding ------------------------------------------------------------
    shards: int = 1
    router: str = "hash"
    workers: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.mix, str):
            if self.mix.upper() not in DISTRIBUTIONS:
                raise ConfigError(
                    f"unknown mix {self.mix!r}; expected a letter "
                    f"{'/'.join(DISTRIBUTIONS)} or a percent triple"
                )
            object.__setattr__(self, "mix", self.mix.upper())
        else:
            mix = tuple(float(s) for s in self.mix)
            if len(mix) != 3:
                raise ConfigError(
                    f"mix triple must have 3 shares, got {len(mix)}"
                )
            object.__setattr__(self, "mix", mix)
        if self.provider not in PROVIDERS:
            raise ConfigError(
                f"unknown provider {self.provider!r}; "
                f"expected one of {sorted(PROVIDERS)}"
            )
        if self.target_population <= 0:
            raise ConfigError("target_population must be positive")
        if self.num_hosts < 0:
            raise ConfigError("num_hosts must be >= 0 (0 = auto-size)")
        if self.host_cpus <= 0 or self.host_mem_gb <= 0:
            raise ConfigError("host_cpus and host_mem_gb must be positive")
        if self.policy not in POLICIES:
            raise ConfigError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES}"
            )
        if self.kernel not in KERNELS:
            raise ConfigError(
                f"unknown kernel {self.kernel!r}; expected one of {KERNELS}"
            )
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.oversub is not None and self.oversub not in STRATEGIES:
            raise ConfigError(
                f"unknown oversub strategy {self.oversub!r}; "
                f"expected one of {sorted(STRATEGIES)}"
            )
        if self.oversub_update_every <= 0:
            raise ConfigError("oversub_update_every must be positive")
        if self.shards < 1:
            raise ConfigError(f"need at least one shard, got {self.shards}")
        if self.router not in ROUTERS:
            raise ConfigError(
                f"unknown router {self.router!r}; expected one of {ROUTERS}"
            )
        if self.workers < 0:
            raise ConfigError("workers must be >= 0 (0 = one per shard)")
        if self.num_hosts and self.shards > self.num_hosts:
            raise ConfigError(
                f"cannot split {self.num_hosts} hosts into {self.shards} shards"
            )
        if self.engine == "object" and self.shards > 1:
            raise ConfigError("the object engine does not support sharding")
        if self.shards > 1 and self.fail_fast:
            raise ConfigError("fail_fast requires shards=1")
        if self.shards > 1 and self.oversub is not None:
            raise ConfigError("dynamic oversubscription requires shards=1")

    # -- derived views -------------------------------------------------------

    @property
    def mix_tuple(self) -> LevelMix:
        """The mix resolved to its percent triple."""
        if isinstance(self.mix, str):
            return DISTRIBUTIONS[self.mix]
        return self.mix

    @property
    def mix_label(self) -> str:
        """The mix's display label (letter, or the triple itself)."""
        if isinstance(self.mix, str):
            return self.mix
        return ",".join(f"{s:g}" for s in self.mix)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        out: dict = {"version": SPEC_VERSION}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ConfigError(
                f"RunSpec version {version} is not supported "
                f"(this build speaks {SPEC_VERSION})"
            )
        names = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - names - {"version"})
        if unknown:
            raise ConfigError(f"unknown RunSpec fields: {unknown}")
        kwargs = {k: v for k, v in data.items() if k in names}
        return cls(**kwargs)

    def fingerprint(self) -> str:
        canon = dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return sha256(canon.encode("utf-8")).hexdigest()[:16]

    def replace(self, **changes) -> "RunSpec":
        """A copy with ``changes`` applied (re-validated)."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)

