"""Application latency models (the DeathStarBench/wrk2 substitute).

The paper probes co-hosting quality with an interactive micro-service
application driven open-loop and reports per-window 90th-percentile
response times.  We reproduce the measurement with a two-part model per
interactive VM:

* **within-capacity queueing** — while the VM's offered load fits its
  effective capacity (vCPUs × achieved speed), response times follow an
  M/M/1-style sojourn whose p90 grows as ``1 / (1 - rho)``;
* **overload backlog** — when contention pushes effective capacity
  below the offered load, unfinished work accumulates in a Lindley
  queue and response times grow by the backlog drain time.

The *effective speed* of a VM's vCPUs is the product of its fair-share
slowdown (time-slice contention in its CPU set), an SMT co-residency
penalty (a thread sharing a busy physical core runs slower), and a
PM-level interference term (memory bandwidth / uncore pressure from
neighbouring vNodes).  Response-time samples are aggregated into fixed
windows; the p90 of each window is the unit the paper plots (Fig. 2)
and summarizes (Table IV).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigError

__all__ = ["LatencyParams", "LatencyTracker", "percentile_windows"]

#: p90 of an exponential sojourn is ln(10) mean sojourns.
_LN10 = math.log(10.0)


@dataclass(frozen=True)
class LatencyParams:
    """Calibration constants of the latency model."""

    #: Base CPU service demand per request, in seconds (≈0.4 ms for the
    #: social-network app's lightweight endpoints).
    service_time: float = 4.2e-4
    #: Speed loss of a thread running on a co-loaded SMT pair: the pair
    #: delivers ``smt_speedup`` total, so each sibling runs at roughly
    #: ``smt_speedup / 2`` of a full core.
    smt_latency_penalty: float = 0.35
    #: PM-wide interference coefficient (shared memory/uncore paths).
    interference: float = 0.15
    #: Window length (seconds) over which p90s are computed (wrk2-style).
    window: float = 30.0
    #: Utilisation clamp for the M/M/1 term (keeps samples finite; the
    #: Lindley backlog handles true overload).
    rho_max: float = 0.95
    #: Pool-size exponent of the shared-queue term: a pool of ``c``
    #: cores at utilisation ``rho`` delays requests like a single server
    #: at ``rho ** (c ** pool_exponent)`` — large machines absorb load
    #: that saturates a small pinned vNode (square-root-staffing-style
    #: economy of scale).
    pool_exponent: float = 0.25

    def __post_init__(self) -> None:
        if self.service_time <= 0:
            raise ConfigError("service_time must be positive")
        if self.window <= 0:
            raise ConfigError("window must be positive")
        if self.smt_latency_penalty < 0 or self.interference < 0:
            raise ConfigError("penalty coefficients must be >= 0")
        if not 0 < self.rho_max < 1:
            raise ConfigError("rho_max must be in (0,1)")


@dataclass
class LatencyTracker:
    """Per-VM response-time tracker (one interactive VM)."""

    params: LatencyParams
    vm_id: str
    vcpus: int
    rng: np.random.Generator
    backlog: float = 0.0  # outstanding CPU work, in core-seconds
    samples: list[float] = field(default_factory=list)
    sample_times: list[float] = field(default_factory=list)

    def observe(
        self,
        t: float,
        dt: float,
        demand: float,
        slowdown: float,
        smt_pressure: float,
        pm_utilization: float,
        pool_utilization: float = 0.0,
        pool_size: int = 1,
    ) -> None:
        """Advance one tick and record a response-time sample.

        ``demand`` is the VM's offered load in core-seconds per second;
        ``slowdown`` its fair-share grant ratio in its contention group;
        ``pool_utilization``/``pool_size`` describe the group's CPU set
        (utilisation against max deliverable throughput, physical core
        count).
        """
        p = self.params
        speed = (
            max(slowdown, 1e-6)
            / (1.0 + p.smt_latency_penalty * smt_pressure)
            / (1.0 + p.interference * pm_utilization)
        )
        capacity = self.vcpus * speed  # core-seconds/s the VM can consume
        lam = demand * dt / p.service_time
        arrivals = self.rng.poisson(lam) if lam > 0 else 0
        work_in = arrivals * p.service_time
        queue_before = self.backlog
        self.backlog = max(0.0, self.backlog + work_in - capacity * dt)
        if arrivals == 0:
            return
        wait = queue_before / capacity
        rho_vm = demand / capacity
        # Shared-queue contribution of the (possibly saturated) CPU set:
        # economy of scale makes big pools forgiving, small vNodes harsh.
        rho_pool = min(pool_utilization, p.rho_max) ** (
            max(pool_size, 1) ** p.pool_exponent
        )
        rho = min(max(rho_vm, rho_pool), p.rho_max)
        sojourn_p90 = (p.service_time / speed) * _LN10 / (1.0 - rho)
        self.samples.append(wait + sojourn_p90)
        self.sample_times.append(t)

    def window_p90s(self) -> np.ndarray:
        """p90 of response times per window (the paper's plotted unit)."""
        return percentile_windows(
            np.asarray(self.sample_times),
            np.asarray(self.samples),
            self.params.window,
            90.0,
        )


def percentile_windows(
    times: np.ndarray, values: np.ndarray, window: float, q: float
) -> np.ndarray:
    """Per-window percentile of a timestamped series.

    Vectorized grouped percentile (linear interpolation, matching
    ``np.percentile``'s default method): one sort instead of one
    ``np.percentile`` call per window — this is a profiled hot spot of
    the testbed harness.
    """
    if len(times) == 0:
        return np.array([])
    if len(times) != len(values):
        raise ConfigError("times and values must have the same length")
    idx = np.floor(np.asarray(times) / window).astype(int)
    values = np.asarray(values, dtype=float)
    # Sort by (window, value): each window becomes a sorted slice.
    order = np.lexsort((values, idx))
    idx_sorted = idx[order]
    val_sorted = values[order]
    # Slice boundaries per window.
    boundaries = np.flatnonzero(np.diff(idx_sorted)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(val_sorted)]))
    counts = ends - starts
    # Linear-interpolated rank within each slice.
    virtual = (q / 100.0) * (counts - 1)
    lower = virtual.astype(int)
    frac = virtual - lower
    lo = val_sorted[starts + lower]
    hi = val_sorted[starts + np.minimum(lower + 1, counts - 1)]
    return lo + frac * (hi - lo)
