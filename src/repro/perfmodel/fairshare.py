"""EEVDF-like fair CPU sharing (water-filling).

The Linux scheduler (EEVDF, §V-B) "equitably shares CPU time-slices
among processes".  At the granularity of our tick model this is the
classic progressive-filling allocation: every runnable vCPU receives
capacity up to a common water level θ chosen so the pool capacity is
exactly consumed; VMs demanding less than θ per unit weight keep their
full demand.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigError

__all__ = ["water_fill", "weighted_water_fill"]


def water_fill(demands: np.ndarray, capacity: float) -> np.ndarray:
    """Equal-weight progressive filling.

    Solves ``sum(min(d_i, theta)) = capacity`` and returns
    ``min(d_i, theta)``; when total demand fits, everyone gets their
    demand.
    """
    demands = np.asarray(demands, dtype=float)
    return weighted_water_fill(demands, np.ones_like(demands), capacity)


def weighted_water_fill(
    demands: np.ndarray, weights: np.ndarray, capacity: float
) -> np.ndarray:
    """Progressive filling with per-consumer weights.

    Weight ``w_i`` is the consumer's share entitlement (we use its vCPU
    count: EEVDF schedules per-thread, so a VM with more runnable vCPU
    threads draws a proportionally larger share).  Solves
    ``sum(min(d_i, theta * w_i)) = capacity``.
    """
    demands = np.asarray(demands, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if demands.shape != weights.shape:
        raise ConfigError("demands and weights must have the same shape")
    if np.any(demands < 0) or np.any(weights <= 0):
        raise ConfigError("demands must be >= 0 and weights > 0")
    if capacity < 0:
        raise ConfigError(f"capacity must be >= 0, got {capacity}")
    total = demands.sum()
    if total <= capacity or demands.size == 0:
        return demands.copy()
    if capacity == 0:
        return np.zeros_like(demands)
    # Sort by saturation level d_i / w_i: consumers saturate in this order.
    ratio = demands / weights
    order = np.argsort(ratio, kind="stable")
    d = demands[order]
    w = weights[order]
    r = ratio[order]
    # After consumer k saturates, remaining capacity splits by weight.
    cum_d = np.cumsum(d)
    cum_w = np.cumsum(w)
    total_w = cum_w[-1]
    # theta candidates: used = cum_d[k] + (total_w - cum_w[k]) * r[k]
    used_at = cum_d + (total_w - cum_w) * r
    k = int(np.searchsorted(used_at, capacity))
    if k == 0:
        theta = capacity / total_w
    else:
        theta = r[k - 1] + (capacity - used_at[k - 1]) / (total_w - cum_w[k - 1])
    alloc = np.minimum(demands, theta * weights)
    # Normalize float drift so the pool is exactly consumed.
    s = alloc.sum()
    if s > 0:
        alloc *= capacity / s
        alloc = np.minimum(alloc, demands)
    return alloc
