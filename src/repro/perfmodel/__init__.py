"""Performance model: CPU fair-sharing, SMT capacity, latency, testbed."""

from repro.perfmodel.apps import LatencyParams, LatencyTracker, percentile_windows
from repro.perfmodel.churn import ChurnParams, ChurnResult, run_churn_testbed
from repro.perfmodel.contention import ContentionGroup, GroupMember, GroupTick
from repro.perfmodel.fairshare import water_fill, weighted_water_fill
from repro.perfmodel.smt import CpuSetCapacity, cpu_set_capacity
from repro.perfmodel.testbed import (
    LevelPerf,
    TestbedParams,
    TestbedResult,
    build_vm_population,
    run_testbed,
)

__all__ = [
    "water_fill",
    "weighted_water_fill",
    "CpuSetCapacity",
    "cpu_set_capacity",
    "ContentionGroup",
    "GroupMember",
    "GroupTick",
    "LatencyParams",
    "LatencyTracker",
    "percentile_windows",
    "TestbedParams",
    "TestbedResult",
    "LevelPerf",
    "run_testbed",
    "ChurnParams",
    "ChurnResult",
    "run_churn_testbed",
    "build_vm_population",
]
