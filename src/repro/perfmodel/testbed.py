"""The physical-experiment harness (paper §VII-A, Table IV & Fig. 2).

Reproduces the testbed study in simulation: one 2×EPYC-7662 worker
(Table III) is filled with Azure-sized VMs — 10 % idle, 60 % CPU
benchmark, 30 % interactive applications whose p90 response times are
the measurement — under two scenarios:

* **baseline** — three dedicated PMs, one per oversubscription level,
  each packed to capacity with that level only, no pinning (every VM
  may run anywhere on the machine);
* **slackvm** — a single PM hosting all three levels concurrently
  (≈ one third each), each level pinned to its topology-allocated
  vNode.

The response-time gap between the scenarios emerges from the model's
mechanics: constrained vNode CPU sets activate SMT sibling pairs
earlier than a whole free machine, and co-hosted neighbours add
PM-level interference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.config import SlackVMConfig
from repro.core.errors import SimulationError
from repro.core.types import (
    DEFAULT_LEVELS,
    OversubscriptionLevel,
    VMRequest,
)
from repro.hardware.machine import EPYC_7662_DUAL, MachineSpec
from repro.localsched.agent import LocalScheduler
from repro.perfmodel.apps import LatencyParams, LatencyTracker
from repro.perfmodel.contention import ContentionGroup, GroupMember
from repro.perfmodel.smt import CpuSetCapacity
from repro.workload.catalog import AZURE, Catalog
from repro.workload.usage import DEFAULT_BEHAVIOUR_SHARES

__all__ = ["TestbedParams", "LevelPerf", "TestbedResult", "run_testbed", "build_vm_population"]


@dataclass(frozen=True)
class TestbedParams:
    """Knobs of the testbed reproduction."""

    __test__ = False  # not a pytest class, despite the Test* name

    machine: MachineSpec = EPYC_7662_DUAL
    catalog: Catalog = AZURE
    levels: tuple[OversubscriptionLevel, ...] = DEFAULT_LEVELS
    duration: float = 1800.0
    dt: float = 1.0
    smt_speedup: float = 1.3
    latency: LatencyParams = field(default_factory=LatencyParams)
    behaviour_shares: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_BEHAVIOUR_SHARES)
    )
    #: Beta parameters of per-VM utilisation draws (Azure-like: most VMs
    #: use a small fraction of their vCPUs).
    stress_util_beta: tuple[float, float] = (2.0, 7.0)
    interactive_base_beta: tuple[float, float] = (2.0, 8.0)
    #: Per-VM lognormal AR(1) demand burstiness (spreads Fig. 2's boxes).
    demand_noise_sigma: float = 0.2
    seed: int = 2024


@dataclass
class LevelPerf:
    """Measured p90 distribution of one level in one scenario."""

    scenario: str
    level: OversubscriptionLevel
    num_vms: int
    num_interactive: int
    p90s: np.ndarray

    @property
    def median_p90_ms(self) -> float:
        if len(self.p90s) == 0:
            raise SimulationError(
                f"no latency samples for {self.scenario}/{self.level.name}"
            )
        return float(np.median(self.p90s)) * 1e3

    def quartiles_ms(self) -> tuple[float, float, float]:
        q1, q2, q3 = np.percentile(self.p90s, [25, 50, 75]) * 1e3
        return float(q1), float(q2), float(q3)


@dataclass
class TestbedResult:
    __test__ = False  # not a pytest class, despite the Test* name

    baseline: dict[str, LevelPerf]
    slackvm: dict[str, LevelPerf]
    slackvm_vm_counts: dict[str, int]

    def table4(self) -> dict[str, tuple[float, float, float]]:
        """{level: (baseline ms, slackvm ms, overhead ratio)} — Table IV."""
        out = {}
        for name, base in self.baseline.items():
            slack = self.slackvm[name]
            b, s = base.median_p90_ms, slack.median_p90_ms
            out[name] = (b, s, s / b)
        return out


def _draw_vm(
    catalog: Catalog,
    restricted: Catalog,
    level: OversubscriptionLevel,
    params: TestbedParams,
    rng: np.random.Generator,
    index: int,
) -> VMRequest:
    cat = catalog if level.is_premium else restricted
    spec = cat.sample(rng)
    kinds = sorted(params.behaviour_shares)
    probs = np.array([params.behaviour_shares[k] for k in kinds])
    kind = kinds[int(rng.choice(len(kinds), p=probs))]
    if kind == "idle":
        param = 0.0
    elif kind == "stress":
        a, b = params.stress_util_beta
        param = float(np.clip(rng.beta(a, b), 0.02, 1.0))
    else:
        a, b = params.interactive_base_beta
        param = float(np.clip(rng.beta(a, b), 0.05, 0.9))
    return VMRequest(
        vm_id=f"{level.name}-vm-{index:04d}",
        spec=spec,
        level=level,
        usage_kind=kind,
        usage_param=param,
    )


def build_vm_population(
    level: OversubscriptionLevel,
    params: TestbedParams,
    rng: np.random.Generator,
    agent: LocalScheduler,
) -> list[VMRequest]:
    """Fill ``agent`` with VMs of one level until the PM refuses one."""
    restricted = params.catalog.restricted()
    vms: list[VMRequest] = []
    for i in range(100_000):
        vm = _draw_vm(params.catalog, restricted, level, params, rng, i)
        if not agent.can_deploy(vm):
            break
        agent.deploy(vm)
        vms.append(vm)
    return vms


def _members(vms: Sequence[VMRequest], rng: np.random.Generator) -> list[GroupMember]:
    # Per-VM diurnal phase: tenants live in different timezones.
    return [GroupMember.from_request(vm, phase=float(rng.uniform())) for vm in vms]


def _run_groups(
    groups: list[tuple[OversubscriptionLevel, ContentionGroup]],
    pm_capacity: CpuSetCapacity,
    params: TestbedParams,
    rng: np.random.Generator,
) -> dict[str, list[LatencyTracker]]:
    """Tick the PM's groups jointly, tracking interactive latencies."""
    trackers: dict[str, list[LatencyTracker]] = {}
    per_group_trackers: list[list[LatencyTracker | None]] = []
    for level, group in groups:
        row: list[LatencyTracker | None] = []
        for m in group.members:
            if m.vm.usage_kind == "interactive":
                tr = LatencyTracker(
                    params=params.latency,
                    vm_id=m.vm.vm_id,
                    vcpus=m.vm.spec.vcpus,
                    rng=rng,
                )
                trackers.setdefault(level.name, []).append(tr)
                row.append(tr)
            else:
                row.append(None)
        per_group_trackers.append(row)
    times = np.arange(0.0, params.duration, params.dt)
    for t in times:
        ticks = [group.step(float(t)) for _, group in groups]
        delivered = sum(tk.total_allocation for tk in ticks)
        pm_util = min(1.0, delivered / pm_capacity.max_throughput)
        for (level, group), tick, row in zip(groups, ticks, per_group_trackers):
            slowdowns = tick.slowdowns
            for j, tr in enumerate(row):
                if tr is None:
                    continue
                tr.observe(
                    float(t),
                    params.dt,
                    float(tick.demands[j]),
                    float(slowdowns[j]),
                    tick.smt_pressure,
                    pm_util,
                    pool_utilization=tick.utilization,
                    pool_size=group.capacity.physical,
                )
    return trackers


def _collect(
    scenario: str,
    level: OversubscriptionLevel,
    vms: Sequence[VMRequest],
    trackers: list[LatencyTracker],
) -> LevelPerf:
    p90s = (
        np.concatenate([tr.window_p90s() for tr in trackers])
        if trackers
        else np.array([])
    )
    return LevelPerf(
        scenario=scenario,
        level=level,
        num_vms=len(vms),
        num_interactive=len(trackers),
        p90s=p90s,
    )


def run_testbed(params: TestbedParams | None = None) -> TestbedResult:
    """Run both scenarios and return Table IV / Fig. 2 data."""
    params = params or TestbedParams()
    rng = np.random.default_rng(params.seed)
    topology = params.machine.build_topology()
    pm_capacity = CpuSetCapacity(
        threads=topology.num_cpus,
        physical=topology.num_physical_cores,
        smt_speedup=params.smt_speedup,
    )

    baseline: dict[str, LevelPerf] = {}
    for level in params.levels:
        agent = LocalScheduler(
            params.machine, SlackVMConfig(levels=(level,))
        )
        vms = build_vm_population(level, params, rng, agent)
        group = ContentionGroup(
            pm_capacity,
            _members(vms, rng),
            rng=rng,
            noise_sigma=params.demand_noise_sigma,
        )
        trackers = _run_groups([(level, group)], pm_capacity, params, rng)
        baseline[level.name] = _collect(
            "baseline", level, vms, trackers.get(level.name, [])
        )

    # SlackVM: all levels co-hosted on one topology-aware PM, ~1/3 each.
    config = SlackVMConfig(levels=params.levels, pooling=False)
    agent = LocalScheduler(params.machine, config, topology=topology)
    restricted = params.catalog.restricted()
    per_level: dict[str, list[VMRequest]] = {lv.name: [] for lv in params.levels}
    i = 0
    exhausted = False
    while not exhausted:
        for level in params.levels:
            vm = _draw_vm(params.catalog, restricted, level, params, rng, i)
            i += 1
            if not agent.can_deploy(vm):
                exhausted = True
                break
            agent.deploy(vm)
            per_level[level.name].append(vm)
    groups: list[tuple[OversubscriptionLevel, ContentionGroup]] = []
    for level in params.levels:
        node = agent.vnode_for(level)
        if node is None or not per_level[level.name]:
            continue
        cpu_ids = node.cpu_ids
        cap = CpuSetCapacity(
            threads=len(cpu_ids),
            physical=topology.physical_cores_spanned(cpu_ids),
            smt_speedup=params.smt_speedup,
        )
        groups.append(
            (
                level,
                ContentionGroup(
                    cap,
                    _members(per_level[level.name], rng),
                    rng=rng,
                    noise_sigma=params.demand_noise_sigma,
                ),
            )
        )
    trackers = _run_groups(groups, pm_capacity, params, rng)
    slackvm = {
        level.name: _collect(
            "slackvm", level, per_level[level.name], trackers.get(level.name, [])
        )
        for level, _ in groups
    }
    return TestbedResult(
        baseline=baseline,
        slackvm=slackvm,
        slackvm_vm_counts={name: len(v) for name, v in per_level.items()},
    )
