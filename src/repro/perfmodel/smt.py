"""SMT-aware capacity of a pinned CPU set.

In a classic setting the Linux scheduler "does not exploit SMT
capabilities until cache-level groups are fully loaded" (§VII-A2):
demand spreads over idle physical cores first, and only once every
physical core in the set is busy do sibling threads start to run
concurrently — each busy pair then delivers less than two cores' worth
of throughput.

For a pinned set of ``threads`` logical CPUs spanning ``physical``
distinct cores, the deliverable throughput as a function of demand is
therefore piecewise: 1:1 up to ``physical`` core-seconds, then a
reduced marginal rate on the sibling region, capping at
``physical + (smt_speedup - 1) * paired`` where ``paired`` counts
physical cores contributing both their threads to the set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError

__all__ = ["CpuSetCapacity", "cpu_set_capacity"]

#: Throughput of a physical core running both SMT siblings, relative to
#: one thread alone (literature reports 1.2–1.4 for mixed workloads).
DEFAULT_SMT_SPEEDUP = 1.3


@dataclass(frozen=True, slots=True)
class CpuSetCapacity:
    """Throughput profile of a pinned CPU set."""

    threads: int
    physical: int
    smt_speedup: float = DEFAULT_SMT_SPEEDUP

    def __post_init__(self) -> None:
        if self.physical <= 0 or self.threads < self.physical:
            raise ConfigError(
                f"invalid CPU set: {self.threads} threads over {self.physical} cores"
            )
        if self.threads > 2 * self.physical:
            raise ConfigError("at most 2 threads per physical core are modelled")
        if self.smt_speedup < 1.0:
            raise ConfigError("smt_speedup must be >= 1")

    @property
    def paired_cores(self) -> int:
        """Physical cores contributing both their threads to the set."""
        return self.threads - self.physical

    @property
    def max_throughput(self) -> float:
        """Core-seconds per second the set can deliver when saturated."""
        return self.physical + (self.smt_speedup - 1.0) * self.paired_cores

    def deliverable(self, demand: float) -> float:
        """Throughput actually delivered for a given aggregate demand.

        Up to ``physical``, demand is served 1:1 (idle cores first).
        Beyond that, sibling threads activate: each extra demanded
        core-second yields only ``smt_speedup - 1`` of additional
        throughput, until the set saturates.
        """
        if demand <= self.physical:
            return demand
        overflow = demand - self.physical
        gained = (self.smt_speedup - 1.0) * min(overflow, float(self.paired_cores))
        return min(self.physical + gained, self.max_throughput)

    def smt_pressure(self, demand: float) -> float:
        """Fraction of served demand running on co-loaded sibling pairs.

        Zero while the physical cores absorb everything; grows toward 1
        as the sibling region fills.  Used to inflate per-request
        service times (a thread sharing its core runs slower even when
        aggregate throughput is sufficient).
        """
        if demand <= self.physical or self.paired_cores == 0:
            return 0.0
        overflow = min(demand - self.physical, float(self.paired_cores))
        # Both siblings of each co-loaded pair are slowed.
        return min(1.0, 2.0 * overflow / max(demand, 1e-12))


def cpu_set_capacity(
    threads: int, physical: int, smt_speedup: float = DEFAULT_SMT_SPEEDUP
) -> CpuSetCapacity:
    """Convenience constructor."""
    return CpuSetCapacity(threads=threads, physical=physical, smt_speedup=smt_speedup)
