"""Tick-based CPU contention model for a pinned CPU set.

A :class:`ContentionGroup` couples one CPU set (a vNode's pinned
threads, or a whole PM in the dedicated baseline) with the VMs running
inside it.  Each tick it evaluates every VM's demand, the SMT-aware
deliverable throughput of the set, and the EEVDF fair-share allocation,
yielding per-VM slowdowns and the group's SMT pressure — the raw
signals the latency model consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import ConfigError
from repro.core.types import VMRequest
from repro.perfmodel.fairshare import weighted_water_fill
from repro.perfmodel.smt import CpuSetCapacity
from repro.workload.usage import IdleProfile, StressProfile, UsageProfile, profile_for

__all__ = ["GroupMember", "GroupTick", "ContentionGroup"]


@dataclass(frozen=True)
class GroupMember:
    """One VM inside a contention group."""

    vm: VMRequest
    profile: UsageProfile

    @classmethod
    def from_request(cls, vm: VMRequest, phase: float = 0.0) -> "GroupMember":
        return cls(vm=vm, profile=profile_for(vm.usage_kind, vm.usage_param, phase))


@dataclass(frozen=True)
class GroupTick:
    """Outcome of one tick for a group."""

    demands: np.ndarray  # core-seconds/s demanded per VM
    allocations: np.ndarray  # core-seconds/s granted per VM
    smt_pressure: float  # fraction of work on co-loaded sibling pairs
    utilization: float  # delivered / max deliverable throughput

    @property
    def slowdowns(self) -> np.ndarray:
        """Granted/demanded per VM (1 when undemanding)."""
        out = np.ones_like(self.demands)
        busy = self.demands > 0
        out[busy] = self.allocations[busy] / self.demands[busy]
        return out

    @property
    def total_demand(self) -> float:
        return float(self.demands.sum())

    @property
    def total_allocation(self) -> float:
        return float(self.allocations.sum())


class ContentionGroup:
    """VMs sharing one pinned CPU set.

    With ``noise_sigma > 0`` each member's demand is modulated by a
    mean-one lognormal AR(1) process (burstiness around the profile's
    deterministic signal), which is what spreads the per-window p90
    distributions of Fig. 2.
    """

    def __init__(
        self,
        capacity: CpuSetCapacity,
        members: Sequence[GroupMember],
        rng: np.random.Generator | None = None,
        noise_sigma: float = 0.0,
        noise_rho: float = 0.9,
    ):
        if not members:
            raise ConfigError("a contention group needs at least one member")
        if noise_sigma < 0 or not 0.0 <= noise_rho < 1.0:
            raise ConfigError("noise_sigma must be >= 0 and noise_rho in [0,1)")
        if noise_sigma > 0 and rng is None:
            raise ConfigError("demand noise requires an rng")
        self.capacity = capacity
        self.members = list(members)
        self._vcpus = np.array([m.vm.spec.vcpus for m in self.members], dtype=float)
        self._rng = rng
        self._sigma = noise_sigma
        self._rho = noise_rho
        self._noise_state = np.zeros(len(self.members))
        # Fast path: profiles with time-constant demand (idle/stress are
        # the majority of a Cloud mix) are evaluated once.
        self._constant = np.zeros(len(self.members))
        self._varying: list[int] = []
        for i, m in enumerate(self.members):
            if isinstance(m.profile, (IdleProfile, StressProfile)):
                self._constant[i] = m.profile.demand(0.0) * m.vm.spec.vcpus
            else:
                self._varying.append(i)

    @property
    def total_vcpus(self) -> int:
        return int(self._vcpus.sum())

    def demands_at(self, t: float) -> np.ndarray:
        out = self._constant.copy()
        for i in self._varying:
            m = self.members[i]
            out[i] = m.profile.demand(t) * m.vm.spec.vcpus
        return out

    def _noise_multipliers(self) -> np.ndarray:
        if self._sigma == 0.0:
            return np.ones(len(self.members))
        innovation = self._rng.normal(size=len(self.members))
        self._noise_state = (
            self._rho * self._noise_state
            + math.sqrt(1.0 - self._rho**2) * self._sigma * innovation
        )
        # exp(x - sigma^2/2) has mean 1 for x ~ N(0, sigma^2).
        return np.exp(self._noise_state - self._sigma**2 / 2.0)

    def step(self, t: float) -> GroupTick:
        """Evaluate contention at time ``t``."""
        demands = self.demands_at(t) * self._noise_multipliers()
        np.minimum(demands, self._vcpus, out=demands)
        total = float(demands.sum())
        deliverable = self.capacity.deliverable(total)
        if total <= deliverable:
            alloc = demands.copy()
        else:
            # EEVDF: per-thread fairness => weight by vCPU count.
            alloc = weighted_water_fill(demands, self._vcpus, deliverable)
        return GroupTick(
            demands=demands,
            allocations=alloc,
            smt_pressure=self.capacity.smt_pressure(total),
            utilization=min(1.0, total / self.capacity.max_throughput),
        )
