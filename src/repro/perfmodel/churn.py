"""Churn testbed: performance isolation *while* vNodes resize.

The static testbed (:mod:`repro.perfmodel.testbed`) fills the PM once
and measures; this harness drives VM arrivals and departures through a
topology-mode local scheduler during the measurement, exercising the
paper's dynamic claims end-to-end:

* vNodes grow and shrink with the workload, and re-pinning happens
  *only* on deploy/destroy events (§V-A: "these changes occur only when
  a VM is being deployed or destroyed");
* LLC isolation between vNodes holds throughout the churn;
* interactive response times per level stay in their static-testbed
  bands even as the CPU sets move underneath the VMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SlackVMConfig
from repro.core.errors import SimulationError
from repro.core.types import OversubscriptionLevel, VMRequest
from repro.localsched.agent import LocalScheduler
from repro.localsched.pinning import shared_llc_violations
from repro.perfmodel.apps import LatencyTracker
from repro.perfmodel.contention import ContentionGroup, GroupMember
from repro.perfmodel.smt import CpuSetCapacity
from repro.perfmodel.testbed import TestbedParams, _draw_vm

__all__ = ["ChurnParams", "ChurnResult", "run_churn_testbed"]


@dataclass(frozen=True)
class ChurnParams:
    """Knobs of the churn experiment."""

    __test__ = False  # not a pytest class

    base: TestbedParams = field(default_factory=TestbedParams)
    #: Target PM fill level before churn starts (fraction of the fill
    #: the static testbed would reach).
    warm_fill: float = 0.7
    #: Mean seconds between churn events (one arrival or departure).
    event_interval: float = 20.0

    def __post_init__(self) -> None:
        if not 0.1 <= self.warm_fill <= 1.0:
            raise SimulationError("warm_fill must be in [0.1, 1]")
        if self.event_interval <= 0:
            raise SimulationError("event_interval must be positive")


@dataclass
class ChurnResult:
    """Outcome of one churn run."""

    median_p90_ms: dict[str, float]
    deploys: int
    removals: int
    pin_changes: int
    max_llc_violations: int
    final_vms: int

    def isolation_held(self) -> bool:
        return self.max_llc_violations == 0


def run_churn_testbed(params: ChurnParams | None = None) -> ChurnResult:
    """Run the co-hosted PM under arrival/departure churn."""
    params = params or ChurnParams()
    base = params.base
    rng = np.random.default_rng(base.seed)
    topology = base.machine.build_topology()
    pm_capacity = CpuSetCapacity(
        threads=topology.num_cpus,
        physical=topology.num_physical_cores,
        smt_speedup=base.smt_speedup,
    )
    agent = LocalScheduler(
        base.machine, SlackVMConfig(levels=base.levels, pooling=False),
        topology=topology,
    )
    restricted = base.catalog.restricted()

    alive: dict[str, VMRequest] = {}
    members: dict[str, GroupMember] = {}
    trackers: dict[str, LatencyTracker] = {}
    counter = 0

    def try_deploy(level: OversubscriptionLevel) -> bool:
        nonlocal counter
        vm = _draw_vm(base.catalog, restricted, level, base, rng, counter)
        counter += 1
        if not agent.can_deploy(vm):
            return False
        agent.deploy(vm)
        alive[vm.vm_id] = vm
        members[vm.vm_id] = GroupMember.from_request(vm, phase=float(rng.uniform()))
        if vm.usage_kind == "interactive":
            trackers[vm.vm_id] = LatencyTracker(
                params=base.latency, vm_id=vm.vm_id, vcpus=vm.spec.vcpus, rng=rng
            )
        return True

    # Warm fill: round-robin levels until the requested fraction of the
    # machine's CPUs is reserved.
    target_cpus = params.warm_fill * base.machine.cpus
    while agent.allocated_cpus < target_cpus:
        level = base.levels[counter % len(base.levels)]
        if not try_deploy(level):
            break

    deploys = removals = 0
    max_violations = 0
    next_event = rng.exponential(params.event_interval)
    groups: dict[float, ContentionGroup] = {}
    dirty = True  # groups must be rebuilt after membership changes

    def rebuild_groups() -> None:
        groups.clear()
        for level in base.levels:
            node = agent.vnode_for(level)
            if node is None:
                continue
            cpu_ids = node.cpu_ids
            cap = CpuSetCapacity(
                threads=len(cpu_ids),
                physical=topology.physical_cores_spanned(cpu_ids),
                smt_speedup=base.smt_speedup,
            )
            groups[level.ratio] = ContentionGroup(
                cap,
                [members[vm_id] for vm_id in node.vm_ids],
                rng=rng,
                noise_sigma=base.demand_noise_sigma,
            )

    times = np.arange(0.0, base.duration, base.dt)
    for t in times:
        # Churn events between ticks.
        while next_event <= t:
            next_event += rng.exponential(params.event_interval)
            if alive and rng.uniform() < 0.5:
                victim = sorted(alive)[int(rng.integers(len(alive)))]
                agent.remove(victim)
                alive.pop(victim)
                members.pop(victim)
                trackers.pop(victim, None)
                removals += 1
                dirty = True
            else:
                level = base.levels[int(rng.integers(len(base.levels)))]
                if try_deploy(level):
                    deploys += 1
                    dirty = True
        if dirty:
            rebuild_groups()
            max_violations = max(max_violations, shared_llc_violations(agent))
            dirty = False
        ticks = {ratio: g.step(float(t)) for ratio, g in groups.items()}
        delivered = sum(tk.total_allocation for tk in ticks.values())
        pm_util = min(1.0, delivered / pm_capacity.max_throughput)
        for ratio, group in groups.items():
            tick = ticks[ratio]
            slowdowns = tick.slowdowns
            for j, member in enumerate(group.members):
                tracker = trackers.get(member.vm.vm_id)
                if tracker is None:
                    continue
                tracker.observe(
                    float(t), base.dt,
                    float(tick.demands[j]), float(slowdowns[j]),
                    tick.smt_pressure, pm_util,
                    pool_utilization=tick.utilization,
                    pool_size=group.capacity.physical,
                )

    medians: dict[str, float] = {}
    for level in base.levels:
        node = agent.vnode_for(level)
        vm_ids = set(node.vm_ids) if node is not None else set()
        p90s = [
            tr.window_p90s()
            for vm_id, tr in trackers.items()
            if vm_id in vm_ids and tr.samples
        ]
        if p90s:
            medians[level.name] = float(np.median(np.concatenate(p90s))) * 1e3
    return ChurnResult(
        median_p90_ms=medians,
        deploys=deploys,
        removals=removals,
        pin_changes=agent.pin_generation,
        max_llc_violations=max_violations,
        final_vms=agent.num_vms,
    )
