"""Virtual time for the asyncio serving layer.

The service's coroutines never touch the wall clock: they read
``clock.now()`` and wait with ``await clock.sleep(dt)`` against an
injectable :class:`VirtualClock`.  :func:`run_virtual` drives an
ordinary asyncio event loop to quiescence, then advances the clock to
the earliest pending deadline — so a 30-second-of-virtual-time service
run completes in milliseconds of real time, and the interleaving of
arrival, departure and timeout coroutines is a deterministic function
of the seed alone (single thread, FIFO ready queue, seq-numbered
sleeper heap).

This is what keeps reprolint R001 clean across :mod:`repro.serving`
and what makes every serving test replayable: simulated time only
moves when the harness says so.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Any, Coroutine, List, Tuple, TypeVar

from repro.core.errors import ServingError

__all__ = ["VirtualClock", "run_virtual"]

T = TypeVar("T")

#: Drain rounds used only when the running loop does not expose its
#: ready queue (non-CPython loop): each round lets one full callback
#: batch run, and service wake-chains are much shallower than this.
_FALLBACK_DRAIN_ROUNDS = 32


class VirtualClock:
    """A monotonically advancing simulated clock with async sleepers.

    ``sleep`` parks the calling coroutine on a future keyed by
    ``(deadline, seq)``; :meth:`advance` wakes exactly one sleeper —
    the earliest deadline, ties broken by creation order — and moves
    ``now`` to its deadline.  Cancelled sleepers (a torn-down departure
    watchdog) are skipped silently.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._seq = itertools.count()
        self._sleepers: List[Tuple[float, int, "asyncio.Future[None]"]] = []

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Live (not yet woken or cancelled) sleepers."""
        return sum(1 for _, _, fut in self._sleepers if not fut.done())

    async def sleep(self, delay: float) -> None:
        """Park until the clock is advanced past ``now + delay``."""
        if delay < 0:
            raise ServingError(f"cannot sleep a negative delay ({delay!r})")
        loop = asyncio.get_running_loop()
        fut: "asyncio.Future[None]" = loop.create_future()
        heapq.heappush(
            self._sleepers, (self._now + float(delay), next(self._seq), fut)
        )
        await fut

    def advance(self) -> bool:
        """Wake the earliest live sleeper; False when none remain."""
        while self._sleepers:
            deadline, _, fut = heapq.heappop(self._sleepers)
            if fut.done():  # cancelled while parked
                continue
            if deadline > self._now:
                self._now = deadline
            fut.set_result(None)
            return True
        return False


async def _drive(clock: VirtualClock, task: "asyncio.Task[T]") -> None:
    """Alternate between draining the ready queue and advancing time."""
    loop = asyncio.get_running_loop()
    while not task.done():
        await asyncio.sleep(0)
        if task.done():
            break
        # Quiescence check: right after our own turn, a non-empty ready
        # queue means some coroutine is still runnable without any time
        # passing — keep yielding until everyone is parked.  The ready
        # queue is a private attribute but stable across CPython
        # 3.10-3.13; other loops fall back to a bounded drain.
        ready = getattr(loop, "_ready", None)
        if ready is not None:
            if len(ready) > 0:
                continue
        else:  # pragma: no cover - non-CPython event loop
            for _ in range(_FALLBACK_DRAIN_ROUNDS):
                await asyncio.sleep(0)
            if task.done():
                break
        if not clock.advance():
            if task.done():
                break
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            raise ServingError(
                "virtual-time deadlock: every coroutine is blocked and "
                "no sleeper is pending"
            )


def run_virtual(coro: Coroutine[Any, Any, T], clock: VirtualClock) -> T:
    """Run ``coro`` to completion on ``clock``'s virtual timeline.

    Creates a fresh event loop (``asyncio.run``), so each call is an
    isolated, replayable universe.  Raises
    :class:`~repro.core.errors.ServingError` if the coroutine tree
    deadlocks with no virtual sleeper left to wake.
    """

    async def _main() -> T:
        task = asyncio.ensure_future(coro)
        try:
            await _drive(clock, task)
        except BaseException:
            if not task.done():
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            raise
        return task.result()

    return asyncio.run(_main())
