"""Validated traffic-distribution configs for the serving layer.

The AsyncFlow/FastSim idiom: one *self-consistent contract* links the
canonical distribution names (:data:`DIST_KINDS`), the random-variable
schema (:class:`RVConfig`) and the traffic-generator payload
(:class:`TrafficConfig`).  Every config is a frozen dataclass that
validates at construction and round-trips exactly through
``to_dict``/``from_dict``, so a typo'd kind or a negative rate raises
:class:`~repro.core.errors.ConfigError` before the service starts —
never mid-run.

All sampling draws from a caller-supplied seeded
:class:`numpy.random.Generator`; a config owns *no* randomness of its
own, which is what makes an arrival stream a pure function of
``(config, seed)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.core.errors import ConfigError

__all__ = ["DIST_KINDS", "RVConfig", "DiurnalConfig", "TrafficConfig", "DAY"]

#: Canonical distribution names supported by :class:`RVConfig`.  A
#: misspelling ("Poisson", "log-normal") is a ConfigError, never a
#: silent fallback.
DIST_KINDS = ("constant", "exponential", "lognormal", "poisson")

#: Seconds per day — the default diurnal modulation period.
DAY = 86_400.0


def _require_number(value: object, name: str) -> float:
    """Coerce ``value`` to float, rejecting bools, strings and NaN/inf."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"{name} must be a number, got {value!r}")
    out = float(value)
    if not math.isfinite(out):
        raise ConfigError(f"{name} must be finite, got {out!r}")
    return out


def _check_fields(data: Mapping[str, object], allowed: tuple[str, ...],
                  what: str) -> None:
    if not isinstance(data, Mapping):
        raise ConfigError(f"{what} payload must be a mapping, got {data!r}")
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ConfigError(f"unknown {what} fields: {unknown}")


@dataclass(frozen=True)
class RVConfig:
    """One non-negative random variable, named by distribution kind.

    ``mean`` is the arithmetic mean of the sampled values for every
    kind (for ``lognormal`` the underlying ``mu`` is solved from
    ``mean`` and the log-space ``sigma``, so the arithmetic mean stays
    ``mean`` whatever the skew).  ``sigma`` is only meaningful for
    ``lognormal`` — supplying it with any other kind is a ConfigError,
    mirroring the FastSim validators that reject inconsistent payloads
    instead of ignoring them.
    """

    kind: str
    mean: float
    sigma: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in DIST_KINDS:
            raise ConfigError(
                f"unknown distribution kind {self.kind!r}; "
                f"expected one of {DIST_KINDS}"
            )
        mean = _require_number(self.mean, "mean")
        if mean <= 0:
            raise ConfigError(f"mean must be positive, got {mean!r}")
        object.__setattr__(self, "mean", mean)
        if self.sigma is not None:
            sigma = _require_number(self.sigma, "sigma")
            if sigma <= 0:
                raise ConfigError(f"sigma must be positive, got {sigma!r}")
            if self.kind != "lognormal":
                raise ConfigError(
                    f"sigma only applies to lognormal, not {self.kind!r}"
                )
            object.__setattr__(self, "sigma", sigma)

    def sample(self, rng: np.random.Generator) -> float:
        """One non-negative finite draw from the configured distribution."""
        if self.kind == "constant":
            return self.mean
        if self.kind == "exponential":
            return float(rng.exponential(self.mean))
        if self.kind == "poisson":
            return float(rng.poisson(self.mean))
        # lognormal: solve mu so the arithmetic mean equals self.mean.
        sigma = self.sigma if self.sigma is not None else 1.0
        mu = math.log(self.mean) - 0.5 * sigma * sigma
        return float(rng.lognormal(mu, sigma))

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "mean": self.mean}
        if self.sigma is not None:
            out["sigma"] = self.sigma
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RVConfig":
        _check_fields(data, ("kind", "mean", "sigma"), "RVConfig")
        if "kind" not in data or "mean" not in data:
            raise ConfigError("RVConfig needs both 'kind' and 'mean'")
        kind = data["kind"]
        if not isinstance(kind, str):
            raise ConfigError(f"kind must be a string, got {kind!r}")
        return cls(kind=kind, mean=data["mean"],  # type: ignore[arg-type]
                   sigma=data.get("sigma"))  # type: ignore[arg-type]


@dataclass(frozen=True)
class DiurnalConfig:
    """Sinusoidal arrival-rate modulation (Coach-style diurnal load).

    The instantaneous rate multiplier at virtual time ``t`` is
    ``1 + amplitude * sin(2*pi*t / period)`` — at ``amplitude`` 0.25
    the peak rate is 25% above the mean and the trough 25% below.
    Amplitude must stay below 1 so the rate never reaches zero.
    """

    amplitude: float
    period: float = DAY

    def __post_init__(self) -> None:
        amplitude = _require_number(self.amplitude, "amplitude")
        if not 0.0 <= amplitude < 1.0:
            raise ConfigError(f"amplitude must be in [0, 1), got {amplitude!r}")
        object.__setattr__(self, "amplitude", amplitude)
        period = _require_number(self.period, "period")
        if period <= 0:
            raise ConfigError(f"period must be positive, got {period!r}")
        object.__setattr__(self, "period", period)

    def factor(self, t: float) -> float:
        """The rate multiplier at virtual time ``t`` (always > 0)."""
        return 1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)

    def to_dict(self) -> dict:
        return {"amplitude": self.amplitude, "period": self.period}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DiurnalConfig":
        _check_fields(data, ("amplitude", "period"), "DiurnalConfig")
        if "amplitude" not in data:
            raise ConfigError("DiurnalConfig needs 'amplitude'")
        return cls(amplitude=data["amplitude"],  # type: ignore[arg-type]
                   period=data.get("period", DAY))  # type: ignore[arg-type]


@dataclass(frozen=True)
class TrafficConfig:
    """The traffic-generator payload: inter-arrivals plus lifetimes.

    ``interarrival`` samples the gap to the next request (seconds);
    ``lifetime`` samples how long a placed VM stays; ``diurnal``, when
    set, divides each gap by the rate multiplier at the current virtual
    time — the open-loop analogue of the thinning pass in
    :func:`repro.workload.generator._arrival_times`.
    """

    interarrival: RVConfig
    lifetime: RVConfig
    diurnal: Optional[DiurnalConfig] = None

    def __post_init__(self) -> None:
        if not isinstance(self.interarrival, RVConfig):
            raise ConfigError("interarrival must be an RVConfig")
        if not isinstance(self.lifetime, RVConfig):
            raise ConfigError("lifetime must be an RVConfig")
        if self.diurnal is not None and not isinstance(self.diurnal, DiurnalConfig):
            raise ConfigError("diurnal must be a DiurnalConfig or None")

    @classmethod
    def open_loop(cls, rate: float, mean_lifetime: float,
                  diurnal_amplitude: float = 0.0) -> "TrafficConfig":
        """Poisson-process traffic at ``rate`` requests/second."""
        rate = _require_number(rate, "rate")
        if rate <= 0:
            raise ConfigError(f"rate must be positive, got {rate!r}")
        diurnal = (
            DiurnalConfig(diurnal_amplitude) if diurnal_amplitude else None
        )
        return cls(
            interarrival=RVConfig("exponential", 1.0 / rate),
            lifetime=RVConfig("exponential", mean_lifetime),
            diurnal=diurnal,
        )

    def next_gap(self, rng: np.random.Generator, now: float) -> float:
        """Seconds until the next arrival, diurnally modulated at ``now``."""
        gap = self.interarrival.sample(rng)
        if self.diurnal is not None:
            gap /= self.diurnal.factor(now)
        return gap

    def to_dict(self) -> dict:
        out: dict = {
            "interarrival": self.interarrival.to_dict(),
            "lifetime": self.lifetime.to_dict(),
        }
        if self.diurnal is not None:
            out["diurnal"] = self.diurnal.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TrafficConfig":
        _check_fields(data, ("interarrival", "lifetime", "diurnal"),
                      "TrafficConfig")
        if "interarrival" not in data or "lifetime" not in data:
            raise ConfigError(
                "TrafficConfig needs both 'interarrival' and 'lifetime'"
            )
        diurnal = data.get("diurnal")
        return cls(
            interarrival=RVConfig.from_dict(data["interarrival"]),  # type: ignore[arg-type]
            lifetime=RVConfig.from_dict(data["lifetime"]),  # type: ignore[arg-type]
            diurnal=(
                DiurnalConfig.from_dict(diurnal)  # type: ignore[arg-type]
                if diurnal is not None else None
            ),
        )
