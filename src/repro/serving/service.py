"""The asyncio online placement service.

Architecture (docs/ARCHITECTURE.md §15)::

    RequestSource ──► bounded admission queue ──► scheduler task ──► CloudController shard(s)
      (open loop)        (backpressure)         (single writer)        (filter/weigher pipeline)

Three coroutine families share one virtual clock:

* the **arrival loop** draws the open-loop request stream and admits
  each request to the bounded queue — or rejects it on the spot when
  the backlog sits at the bound (open-loop backpressure: the generator
  never slows down, the service sheds);
* the **scheduler task** is the *single writer* over the controllers:
  it drains admissions, spends a sampled service time per decision,
  then routes the request to its controller shard; departure and
  timeout coroutines never mutate cluster state themselves — they
  enqueue commands the scheduler executes in FIFO order;
* per-VM **departure** sleepers and pending-**timeout** watchdogs.

Everything observable is deterministic per seed — the decision log and
the controllers' audit logs replay byte-for-byte — except the wall
-clock placement-latency histogram, which is the point: it prices the
scheduler's compute (the placement kernel) in user-facing seconds.
"""

from __future__ import annotations

import asyncio
import itertools
import math
import time
from dataclasses import dataclass, fields
from hashlib import sha256
from json import dumps
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.api.run import build_machines
from repro.api.spec import RunSpec
from repro.controlplane.controller import CloudController, VMState, VMTicket
from repro.core.config import SlackVMConfig
from repro.core.errors import CapacityError, ConfigError
from repro.core.types import VMRequest
from repro.hardware.machine import MachineSpec
from repro.obs import names as metric_names
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.scheduling.baselines import scheduler_for_policy
from repro.serving.clock import VirtualClock, run_virtual
from repro.serving.config import DIST_KINDS, RVConfig, TrafficConfig
from repro.serving.generator import RequestSource, ServiceRequest
from repro.sharding.router import HashRouter
from repro.simulator.vectorpool import POLICIES
from repro.workload.catalog import OVERSUB_MEM_CAP_GB, PROVIDERS, Catalog
from repro.workload.distributions import DISTRIBUTIONS, LevelMix

__all__ = [
    "SERVICE_SPEC_VERSION",
    "ServiceSpec",
    "PlacementService",
    "ServiceReport",
    "serve",
]

#: Bump when the field set changes incompatibly (fingerprints shift).
SERVICE_SPEC_VERSION = 1

#: Headroom over the Little's-law demand estimate when auto-sizing.
AUTO_SIZE_HEADROOM = 1.25

#: Sentinel closing the scheduler task's command queue.
_STOP = None


@dataclass(frozen=True)
class ServiceSpec:
    """One service run, fully described (the serving twin of RunSpec).

    ``rate`` is the mean arrival rate in requests per *virtual* second
    and ``duration`` the admission window in virtual seconds; requests
    already queued when the window closes are still served.
    ``num_hosts=0`` auto-sizes the fleet from Little's law
    (``rate * mean_lifetime`` concurrent VMs at the catalog's mean
    footprint, with :data:`AUTO_SIZE_HEADROOM`).  ``shards`` splits the
    fleet into that many independent :class:`CloudController` shards
    behind a seeded consistent-hash router.
    """

    # -- traffic -------------------------------------------------------------
    provider: str = "azure"
    mix: Union[str, LevelMix] = "F"
    rate: float = 50.0
    duration: float = 30.0
    seed: int = 0
    mean_lifetime: float = 20.0
    interarrival_kind: str = "exponential"
    lifetime_kind: str = "exponential"
    diurnal_amplitude: float = 0.0

    # -- topology ------------------------------------------------------------
    num_hosts: int = 0
    host_cpus: int = 32
    host_mem_gb: float = 128.0
    shards: int = 1

    # -- scheduling ----------------------------------------------------------
    policy: str = "progress"
    queue_bound: int = 64
    timeout_s: float = 5.0
    max_pending: int = 1000
    service_kind: str = "exponential"
    service_mean: float = 0.005

    def __post_init__(self) -> None:
        if isinstance(self.mix, str):
            if self.mix.upper() not in DISTRIBUTIONS:
                raise ConfigError(
                    f"unknown mix {self.mix!r}; expected a letter "
                    f"{'/'.join(DISTRIBUTIONS)} or a percent triple"
                )
            object.__setattr__(self, "mix", self.mix.upper())
        else:
            mix = tuple(float(s) for s in self.mix)
            if len(mix) != 3:
                raise ConfigError(f"mix triple must have 3 shares, got {len(mix)}")
            object.__setattr__(self, "mix", mix)
        if self.provider not in PROVIDERS:
            raise ConfigError(
                f"unknown provider {self.provider!r}; "
                f"expected one of {sorted(PROVIDERS)}"
            )
        for name in ("rate", "duration", "mean_lifetime", "timeout_s",
                     "service_mean"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ConfigError(f"{name} must be a number, got {value!r}")
            if not math.isfinite(float(value)) or float(value) <= 0:
                raise ConfigError(f"{name} must be positive and finite, "
                                  f"got {value!r}")
            object.__setattr__(self, name, float(value))
        for kind_field in ("interarrival_kind", "lifetime_kind", "service_kind"):
            kind = getattr(self, kind_field)
            if kind not in DIST_KINDS:
                raise ConfigError(
                    f"unknown {kind_field} {kind!r}; expected one of {DIST_KINDS}"
                )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigError(
                f"diurnal_amplitude must be in [0, 1), "
                f"got {self.diurnal_amplitude!r}"
            )
        if self.num_hosts < 0:
            raise ConfigError("num_hosts must be >= 0 (0 = auto-size)")
        if self.host_cpus <= 0 or self.host_mem_gb <= 0:
            raise ConfigError("host_cpus and host_mem_gb must be positive")
        if self.shards < 1:
            raise ConfigError(f"need at least one shard, got {self.shards}")
        if self.num_hosts and self.shards > self.num_hosts:
            raise ConfigError(
                f"cannot split {self.num_hosts} hosts into {self.shards} shards"
            )
        if self.policy not in POLICIES:
            raise ConfigError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES}"
            )
        if self.queue_bound < 1:
            raise ConfigError("queue_bound must be >= 1")
        if self.max_pending < 0:
            raise ConfigError("max_pending must be >= 0")

    # -- derived views -------------------------------------------------------

    def traffic(self) -> TrafficConfig:
        """The validated traffic payload this spec describes."""
        return TrafficConfig(
            interarrival=RVConfig(self.interarrival_kind, 1.0 / self.rate),
            lifetime=RVConfig(self.lifetime_kind, self.mean_lifetime),
            diurnal=(
                TrafficConfig.open_loop(
                    self.rate, self.mean_lifetime, self.diurnal_amplitude
                ).diurnal
                if self.diurnal_amplitude > 0
                else None
            ),
        )

    def service_time(self) -> RVConfig:
        """Per-decision scheduler service time (virtual seconds)."""
        return RVConfig(self.service_kind, self.service_mean)

    # -- serialization (same discipline as RunSpec) --------------------------

    def to_dict(self) -> dict:
        out: dict = {"version": SERVICE_SPEC_VERSION}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceSpec":
        version = data.get("version", SERVICE_SPEC_VERSION)
        if version != SERVICE_SPEC_VERSION:
            raise ConfigError(
                f"ServiceSpec version {version} is not supported "
                f"(this build speaks {SERVICE_SPEC_VERSION})"
            )
        names = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - names - {"version"})
        if unknown:
            raise ConfigError(f"unknown ServiceSpec fields: {unknown}")
        kwargs = {k: v for k, v in data.items() if k in names}
        return cls(**kwargs)

    def fingerprint(self) -> str:
        canon = dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return sha256(canon.encode("utf-8")).hexdigest()[:16]

    def replace(self, **changes: Any) -> "ServiceSpec":
        """A copy with ``changes`` applied (re-validated)."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)


def _mean_footprint(catalog: Catalog, mix: Union[str, LevelMix]) -> Tuple[float, float]:
    """Expected physical (cpu, mem) per VM under the mix shares."""
    from repro.workload.distributions import mix_shares

    restricted = catalog.restricted(OVERSUB_MEM_CAP_GB)
    cpu = mem = 0.0
    for ratio, share in sorted(mix_shares(mix).items()):
        if share <= 0:
            continue
        cat = catalog if ratio <= 1.0 else restricted
        mean_vcpus = sum(p * s.vcpus for s, p in cat.entries)
        mean_mem = sum(p * s.mem_gb for s, p in cat.entries)
        cpu += share * mean_vcpus / ratio
        mem += share * mean_mem
    return cpu, mem


def auto_size(spec: ServiceSpec) -> int:
    """Little's-law fleet size: steady-state population × mean footprint."""
    population = spec.rate * spec.mean_lifetime
    cpu, mem = _mean_footprint(PROVIDERS[spec.provider], spec.mix)
    hosts = max(
        population * cpu / spec.host_cpus,
        population * mem / spec.host_mem_gb,
    )
    return max(spec.shards, 1, math.ceil(hosts * AUTO_SIZE_HEADROOM))


def build_fleet(spec: ServiceSpec) -> List[MachineSpec]:
    """The service's host fleet, constructed through the RunSpec seam."""
    count = spec.num_hosts if spec.num_hosts else auto_size(spec)
    run_spec = RunSpec(
        provider=spec.provider,
        mix=spec.mix,
        seed=spec.seed,
        num_hosts=count,
        host_cpus=spec.host_cpus,
        host_mem_gb=spec.host_mem_gb,
        policy=spec.policy,
        shards=spec.shards,
    )
    return build_machines(run_spec)


def _split_fleet(machines: List[MachineSpec], shards: int) -> List[List[MachineSpec]]:
    """Balanced contiguous host blocks, largest remainders first —
    the same geometry as :class:`repro.sharding.dispatcher.ShardPlan`."""
    base, extra = divmod(len(machines), shards)
    blocks: List[List[MachineSpec]] = []
    start = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        blocks.append(machines[start:start + size])
        start += size
    return blocks


@dataclass
class ServiceReport:
    """The SLO report of one completed service run."""

    spec: ServiceSpec
    counts: Dict[str, int]
    rates: Dict[str, float]
    latency: Dict[str, float]
    queue: Dict[str, float]
    cluster: Dict[str, float]
    decision_log: List[str]
    fingerprint: str  # sha256 over decision + audit logs (determinism key)

    def to_dict(self, include_log: bool = True) -> dict:
        out = {
            "spec": self.spec.to_dict(),
            "counts": self.counts,
            "rates": self.rates,
            "latency": self.latency,
            "queue": self.queue,
            "cluster": self.cluster,
            "fingerprint": self.fingerprint,
        }
        if include_log:
            out["decision_log"] = list(self.decision_log)
        return out

    def summary(self) -> str:
        c = self.counts
        lines = [
            f"served {c['arrivals']} arrivals over {self.spec.duration:g} "
            f"virtual s on {int(self.cluster['hosts'])} host(s), "
            f"{self.spec.shards} shard(s)",
            f"placed {c['placed']} ({c['pending']} capacity-pending), "
            f"rejected {c['rejected']}, timed out {c['timeouts']}, "
            f"departed {c['departures']}",
            f"placement latency p50 {self.latency['placement_p50_s'] * 1e3:.3f} ms"
            f" / p99 {self.latency['placement_p99_s'] * 1e3:.3f} ms (wall), "
            f"wait p99 {self.latency['wait_p99_s']:.3f} s (virtual)",
            f"queue depth max {int(self.queue['depth_max'])} "
            f"(bound {int(self.queue['bound'])}); "
            f"timeout rate {self.rates['timeout']:.2%}, "
            f"rejection rate {self.rates['reject']:.2%}",
            f"decision log {len(self.decision_log)} entries, "
            f"sha256 {self.fingerprint[:16]}",
        ]
        return "\n".join(lines)


def _hist_stats(hist: Histogram, prefix: str, unit: str = "s") -> Dict[str, float]:
    snap = hist.snapshot()
    count = int(snap.get("count", 0))
    stats = {f"{prefix}_count": float(count)}
    for key in ("mean", "p50", "p99", "max"):
        value = snap.get(key, 0.0)
        stats[f"{prefix}_{key}_{unit}" if key != "max" else f"{prefix}_max_{unit}"] = (
            float(value) if count else 0.0
        )
    return stats


class PlacementService:
    """The long-running control-plane service over controller shards.

    Construct, then drive :meth:`run` with
    :func:`~repro.serving.clock.run_virtual` (or call :func:`serve`).
    A service instance is single-use: one admission window, one report.
    """

    def __init__(
        self,
        spec: ServiceSpec,
        clock: Optional[VirtualClock] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.spec = spec
        self.clock = clock if clock is not None else VirtualClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        traffic_seed, service_seed = np.random.SeedSequence(spec.seed).spawn(2)
        self.source = RequestSource(
            PROVIDERS[spec.provider], spec.mix, spec.traffic(), traffic_seed
        )
        self._service_rng = np.random.default_rng(service_seed)
        self._service_time = spec.service_time()
        config = SlackVMConfig()
        self.controllers = [
            CloudController(
                block,
                config,
                scheduler_for_policy(spec.policy),
                max_pending=spec.max_pending,
            )
            for block in _split_fleet(build_fleet(spec), spec.shards)
        ]
        self._router = HashRouter(spec.shards, seed=spec.seed)
        self._queue: "asyncio.Queue[Optional[Tuple[str, Any]]]" = asyncio.Queue()
        self._backlog = 0
        self._placed: Dict[str, Tuple[int, str]] = {}
        self._side_tasks: List["asyncio.Task[None]"] = []
        #: Append-only, seed-deterministic ledger of every decision.
        self.decision_log: List[str] = []
        self.counts: Dict[str, int] = {
            "arrivals": 0,
            "placed": 0,
            "pending": 0,
            "rejected": 0,
            "timeouts": 0,
            "departures": 0,
        }
        self._lat_place = Histogram("lat_place")
        self._lat_wait = Histogram("lat_wait")
        self._depth = Histogram("depth")

    # -- lifecycle -----------------------------------------------------------

    async def run(self) -> ServiceReport:
        """One full service run: admit, serve, drain, report."""
        arrivals = asyncio.ensure_future(self._arrival_loop())
        scheduler = asyncio.ensure_future(self._scheduler_loop())
        try:
            await arrivals
            # The admission window is closed; everything already queued
            # is still served, later departure/expiry commands are not.
            self._queue.put_nowait(_STOP)
            await scheduler
        finally:
            for task in self._side_tasks:
                task.cancel()
        self._final_gauges()
        return self.report()

    # -- coroutines ----------------------------------------------------------

    async def _arrival_loop(self) -> None:
        spec = self.spec
        metrics = self.metrics
        closes = self.clock.now() + spec.duration  # admission window end
        while True:
            gap, request = self.source.next_request(self.clock.now())
            if request.arrival > closes:
                return
            await self.clock.sleep(gap)
            self.counts["arrivals"] += 1
            self._depth.observe(self._backlog)
            if metrics.enabled:
                metrics.counter(metric_names.SERVING_ARRIVALS).inc()
                metrics.histogram(metric_names.SERVING_QUEUE_DEPTH).observe(
                    self._backlog
                )
            if self._backlog >= spec.queue_bound:
                self.counts["rejected"] += 1
                if metrics.enabled:
                    metrics.counter(metric_names.SERVING_REJECTED).inc()
                self._log("reject", request.req_id, f"depth={self._backlog}")
                continue
            self._backlog += 1
            self._queue.put_nowait(("arrive", request))

    async def _scheduler_loop(self) -> None:  # reprolint: writer
        """The single writer: every controller mutation happens here."""
        while True:
            command = await self._queue.get()
            if command is _STOP:
                return
            kind, payload = command
            if kind == "arrive":
                self._backlog -= 1
                await self._handle_arrival(payload)
            elif kind == "depart":
                self._handle_departure(payload)
            else:  # "expire"
                self._handle_expiry(payload)

    async def _departure(self, request: ServiceRequest) -> None:
        """Sleep out the VM's lifetime, then ask the scheduler to free it."""
        await self.clock.sleep(request.lifetime)
        self._queue.put_nowait(("depart", request.req_id))

    async def _expiry(self, request: ServiceRequest) -> None:
        """Watchdog for capacity-pending requests: give up at the deadline."""
        deadline = request.arrival + self.spec.timeout_s
        await self.clock.sleep(max(0.0, deadline - self.clock.now()))
        self._queue.put_nowait(("expire", request.req_id))

    def _spawn(self, coro: "asyncio.coroutines.Coroutine[Any, Any, None]") -> None:
        self._side_tasks.append(asyncio.ensure_future(coro))

    # -- command handlers (scheduler task only) ------------------------------

    async def _handle_arrival(self, request: ServiceRequest) -> None:
        spec = self.spec
        metrics = self.metrics
        now = self.clock.now()
        if now - request.arrival > spec.timeout_s:
            self.counts["timeouts"] += 1
            if metrics.enabled:
                metrics.counter(metric_names.SERVING_TIMEOUTS).inc()
            self._log("timeout", request.req_id,
                      f"stage=queue waited={now - request.arrival:.6f}")
            return
        await self.clock.sleep(self._service_time.sample(self._service_rng))
        shard = self._route(request)
        controller = self.controllers[shard]
        started = time.perf_counter()
        try:
            ticket = controller.request(request.spec, request.level)
        except CapacityError:  # controller pending queue at max_pending
            self.counts["rejected"] += 1
            if metrics.enabled:
                metrics.counter(metric_names.SERVING_REJECTED).inc()
            self._log("reject", request.req_id, f"shard={shard} pending-full")
            return
        wall = time.perf_counter() - started
        wait = self.clock.now() - request.arrival
        self._lat_place.observe(wall)
        self._lat_wait.observe(wait)
        if metrics.enabled:
            metrics.histogram(metric_names.SERVING_LATENCY_PLACEMENT).observe(wall)
            metrics.histogram(metric_names.SERVING_LATENCY_WAIT).observe(wait)
        self._placed[request.req_id] = (shard, ticket.vm_id)
        if ticket.state is VMState.ACTIVE:
            self.counts["placed"] += 1
            if metrics.enabled:
                metrics.counter(metric_names.SERVING_PLACED).inc()
            self._log(
                "place", request.req_id,
                f"shard={shard} host={ticket.host} vm={ticket.vm_id} "
                f"pooled={int(ticket.pooled)} wait={wait:.6f}",
            )
        else:
            self.counts["pending"] += 1
            if metrics.enabled:
                metrics.counter(metric_names.SERVING_PENDING).inc()
            self._log("pend", request.req_id,
                      f"shard={shard} vm={ticket.vm_id} wait={wait:.6f}")
            self._spawn(self._expiry(request))
        self._spawn(self._departure(request))

    def _handle_departure(self, req_id: str) -> None:
        placed = self._placed.get(req_id)
        if placed is None:
            return  # never reached a controller (queue timeout)
        shard, vm_id = placed
        controller = self.controllers[shard]
        if controller.ticket(vm_id).state is VMState.DELETED:
            return  # expired out of the pending queue earlier
        controller.delete(vm_id)
        self.counts["departures"] += 1
        if self.metrics.enabled:
            self.metrics.counter(metric_names.SERVING_DEPARTURES).inc()
        self._log("depart", req_id, f"shard={shard} vm={vm_id}")

    def _handle_expiry(self, req_id: str) -> None:
        placed = self._placed.get(req_id)
        if placed is None:
            return
        shard, vm_id = placed
        controller = self.controllers[shard]
        if controller.ticket(vm_id).state is not VMState.PENDING:
            return  # promoted to ACTIVE (or already gone) before the deadline
        controller.delete(vm_id)
        self.counts["timeouts"] += 1
        if self.metrics.enabled:
            self.metrics.counter(metric_names.SERVING_TIMEOUTS).inc()
        self._log("timeout", req_id, f"shard={shard} stage=pending vm={vm_id}")

    # -- helpers -------------------------------------------------------------

    def _route(self, request: ServiceRequest) -> int:
        if self.spec.shards == 1:
            return 0
        probe = VMRequest(
            vm_id=request.req_id, spec=request.spec, level=request.level
        )
        return self._router.route(probe)

    def _log(self, event: str, req_id: str, detail: str = "") -> None:
        line = f"{self.clock.now():.6f} {event} {req_id}"
        if detail:
            line = f"{line} {detail}"
        self.decision_log.append(line)

    def _final_gauges(self) -> None:
        arrivals = self.counts["arrivals"]
        timeout_rate = self.counts["timeouts"] / arrivals if arrivals else 0.0
        reject_rate = self.counts["rejected"] / arrivals if arrivals else 0.0
        if self.metrics.enabled:
            self.metrics.gauge(metric_names.SERVING_TIMEOUT_RATE).set(timeout_rate)
            self.metrics.gauge(metric_names.SERVING_REJECT_RATE).set(reject_rate)

    def audit_fingerprint(self) -> str:
        """sha256 over the decision log and every shard's audit log."""
        digest = sha256()
        for line in self.decision_log:
            digest.update(line.encode("utf-8") + b"\n")
        for shard, controller in enumerate(self.controllers):
            for action, vm_id, detail in controller.audit_log:
                digest.update(f"{shard}|{action}|{vm_id}|{detail}\n".encode("utf-8"))
        return digest.hexdigest()

    def tickets(self) -> List[VMTicket]:
        """Every ticket across shards, in shard-then-creation order."""
        out: List[VMTicket] = []
        for controller in self.controllers:
            out.extend(controller.list_vms())
        return out

    def report(self) -> ServiceReport:
        arrivals = self.counts["arrivals"]
        active = pending = hosts = 0
        alloc_cpu = alloc_mem = cap_cpu = cap_mem = 0.0
        for controller in self.controllers:
            state = controller.state()
            hosts += state.num_hosts
            active += state.active_vms
            pending += state.pending_vms
            alloc_cpu += state.allocated.cpu
            alloc_mem += state.allocated.mem
            cap_cpu += state.capacity.cpu
            cap_mem += state.capacity.mem
        latency = {}
        latency.update(_hist_stats(self._lat_place, "placement"))
        latency.update(_hist_stats(self._lat_wait, "wait"))
        depth_snap = self._depth.snapshot()
        queue = {
            "bound": float(self.spec.queue_bound),
            "depth_max": float(depth_snap.get("max", 0.0) or 0.0),
            "depth_mean": float(depth_snap.get("mean", 0.0) or 0.0),
            "depth_p99": float(depth_snap.get("p99", 0.0) or 0.0),
        }
        return ServiceReport(
            spec=self.spec,
            counts=dict(self.counts),
            rates={
                "timeout": self.counts["timeouts"] / arrivals if arrivals else 0.0,
                "reject": self.counts["rejected"] / arrivals if arrivals else 0.0,
            },
            latency=latency,
            queue=queue,
            cluster={
                "hosts": float(hosts),
                "shards": float(self.spec.shards),
                "active_vms": float(active),
                "pending_vms": float(pending),
                "cpu_allocation_share": alloc_cpu / cap_cpu if cap_cpu else 0.0,
                "mem_allocation_share": alloc_mem / cap_mem if cap_mem else 0.0,
            },
            decision_log=list(self.decision_log),
            fingerprint=self.audit_fingerprint(),
        )


def serve(
    spec: ServiceSpec,
    metrics: Optional[MetricsRegistry] = None,
    clock: Optional[VirtualClock] = None,
) -> ServiceReport:
    """Run one service admission window on virtual time and report."""
    service = PlacementService(spec, clock=clock, metrics=metrics)
    return run_virtual(service.run(), service.clock)
