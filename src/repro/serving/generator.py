"""Open-loop request generation for the placement service.

An open-loop source emits requests on its own schedule — arrivals do
not wait for the scheduler to catch up, which is exactly what makes
backpressure observable (a closed-loop generator would self-throttle
and hide the queue).  Every draw (gap, level, flavor, lifetime) comes
from one seeded :class:`numpy.random.Generator` in a fixed order, so
the full request stream is a pure function of ``(catalog, mix,
traffic config, seed)`` and two runs at the same seed are
byte-identical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Tuple, Union

import numpy as np

from repro.core.types import OversubscriptionLevel, VMSpec
from repro.serving.config import TrafficConfig
from repro.workload.catalog import OVERSUB_MEM_CAP_GB, Catalog
from repro.workload.distributions import LevelMix, mix_shares

__all__ = ["ServiceRequest", "RequestSource", "arrival_times"]


@dataclass(frozen=True)
class ServiceRequest:
    """One VM request as seen by the service front door."""

    req_id: str
    spec: VMSpec
    level: OversubscriptionLevel
    arrival: float  # virtual seconds
    lifetime: float  # virtual seconds the VM stays once placed


class RequestSource:
    """Seeded factory for the service's arrival stream.

    Flavors are drawn from the provider catalog (restricted to
    oversubscription-eligible sizes for levels above 1:1, the paper's
    §III-A hypothesis), levels from the mix shares, gaps and lifetimes
    from the :class:`~repro.serving.config.TrafficConfig`.
    """

    def __init__(
        self,
        catalog: Catalog,
        mix: Union[str, LevelMix],
        traffic: TrafficConfig,
        seed: Union[int, np.random.SeedSequence] = 0,
        oversub_mem_cap: float = OVERSUB_MEM_CAP_GB,
    ):
        self.traffic = traffic
        self._catalog = catalog
        self._restricted = catalog.restricted(oversub_mem_cap)
        shares = {r: s for r, s in mix_shares(mix).items() if s > 0}
        self._ratios = np.array(sorted(shares))
        self._probs = np.array([shares[r] for r in self._ratios])
        self._rng = np.random.default_rng(seed)
        self._ids = itertools.count()

    def next_request(self, now: float) -> Tuple[float, ServiceRequest]:
        """The gap from ``now`` to the next arrival, and that request."""
        gap = self.traffic.next_gap(self._rng, now)
        ratio = float(
            self._ratios[self._rng.choice(len(self._ratios), p=self._probs)]
        )
        cat = self._catalog if ratio <= 1.0 else self._restricted
        spec = cat.sample(self._rng)
        lifetime = self.traffic.lifetime.sample(self._rng)
        request = ServiceRequest(
            req_id=f"req-{next(self._ids):06d}",
            spec=spec,
            level=OversubscriptionLevel(ratio),
            arrival=now + gap,
            lifetime=lifetime,
        )
        return gap, request

    def window(self, duration: float) -> Iterator[Tuple[float, ServiceRequest]]:
        """Requests arriving inside ``[0, duration]``, in arrival order.

        A synchronous view of the same stream the async arrival loop
        produces — used by tests and capacity planning, never by the
        service itself (which interleaves sleeps between draws).
        """
        now = 0.0
        while True:
            gap, request = self.next_request(now)
            if request.arrival > duration:
                return
            now = request.arrival
            yield gap, request


def arrival_times(
    traffic: TrafficConfig,
    duration: float,
    seed: Union[int, np.random.SeedSequence] = 0,
) -> List[float]:
    """The bare arrival timestamps of ``traffic`` over ``[0, duration]``.

    Pure function of ``(traffic, duration, seed)`` — the property the
    config suite pins byte-for-byte.  Draws only gaps, so it is *not*
    the same stream as :class:`RequestSource` (which interleaves level
    and flavor draws); use it to study arrival processes in isolation.
    """
    rng = np.random.default_rng(seed)
    times: List[float] = []
    now = 0.0
    while True:
        now += traffic.next_gap(rng, now)
        if now > duration:
            return times
        times.append(now)
