"""repro.serving — the asyncio online placement service.

Wraps :class:`~repro.controlplane.controller.CloudController` shards
behind a bounded admission queue driven by open-loop seeded traffic on
a virtual clock.  See docs/ARCHITECTURE.md §15.
"""

from repro.serving.clock import VirtualClock, run_virtual
from repro.serving.config import (
    DAY,
    DIST_KINDS,
    DiurnalConfig,
    RVConfig,
    TrafficConfig,
)
from repro.serving.generator import RequestSource, ServiceRequest, arrival_times
from repro.serving.service import (
    SERVICE_SPEC_VERSION,
    PlacementService,
    ServiceReport,
    ServiceSpec,
    serve,
)

__all__ = [
    "DAY",
    "DIST_KINDS",
    "DiurnalConfig",
    "RVConfig",
    "TrafficConfig",
    "VirtualClock",
    "run_virtual",
    "RequestSource",
    "ServiceRequest",
    "arrival_times",
    "SERVICE_SPEC_VERSION",
    "PlacementService",
    "ServiceReport",
    "ServiceSpec",
    "serve",
]
