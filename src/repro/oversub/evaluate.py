"""Strategy-sweep evaluation: packing gain vs. violation risk.

Answers the question the estimator layer exists for: *how many more
VMs does a dynamic strategy pack into a scarce cluster, and what
violation risk does it buy them for?*  For every (provider, mix, seed)
cell the cluster is deliberately sized *below* the workload's demand
lower bound (``scarcity < 1``), the same trace is run once per
strategy through the vector engine, and each dynamic strategy's placed
count is compared against the cell's :class:`StaticRatio` baseline.

Violation rate comes from the shared controller ledger — a host window
whose demand peak exceeds the physical capacity — and is reported for
the static baseline too, so the table shows *added* risk, not absolute
risk.  Everything is a pure function of the spec: fixed iteration
order, seeded workloads, no wall-clock anywhere.

Kept out of ``repro.oversub.__init__``: this module imports the
simulation engines, which import the rest of the package.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.core.errors import ConfigError
from repro.core.types import VMRequest
from repro.hardware.machine import SIM_WORKER, MachineSpec
from repro.oversub.controller import OversubParams
from repro.oversub.estimators import STRATEGIES, make_estimator
from repro.runner.spec import resolve_mix_entry
from repro.simulator.engine import SimulationResult
from repro.simulator.sizing import demand_lower_bound
from repro.simulator.vectorpool import KERNELS, POLICIES, VectorSimulation
from repro.workload.catalog import PROVIDERS
from repro.workload.distributions import LevelMix
from repro.workload.generator import WorkloadParams, generate_workload

__all__ = [
    "OversubSweepSpec",
    "OversubCellResult",
    "OversubSweepResult",
    "run_oversub_sweep",
    "render_oversub_table",
]


@dataclass(frozen=True)
class OversubSweepSpec:
    """Grid of one strategy-comparison sweep.

    ``scarcity`` scales the cluster below the workload's demand lower
    bound; at 1.0 even a perfect packing is tight, below it the static
    baseline must reject VMs — the regime where dynamic
    oversubscription can show a packing gain.
    """

    strategies: tuple[str, ...] = ("static", "percentile", "doa", "greedy")
    providers: tuple[str, ...] = ("azure",)
    mixes: tuple[str, ...] = ("F",)
    seeds: tuple[int, ...] = (0,)
    target_population: int = 120
    scarcity: float = 0.5
    policy: str = "progress"
    kernel: str = "incremental"
    update_every: float = 3600.0
    samples_per_window: int = 8
    machine: MachineSpec = field(default=SIM_WORKER)

    def __post_init__(self) -> None:
        if not self.strategies:
            raise ConfigError("need at least one strategy")
        for name in self.strategies:
            if name not in STRATEGIES:
                raise ConfigError(
                    f"unknown strategy {name!r}; expected one of {sorted(STRATEGIES)}"
                )
        for provider in self.providers:
            if provider not in PROVIDERS:
                raise ConfigError(
                    f"unknown provider {provider!r}; "
                    f"expected one of {sorted(PROVIDERS)}"
                )
        if not self.mixes or not self.seeds:
            raise ConfigError("need at least one mix and one seed")
        if not 0.0 < self.scarcity <= 2.0:
            raise ConfigError(f"scarcity must be in (0,2], got {self.scarcity}")
        if self.policy not in POLICIES:
            raise ConfigError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES}"
            )
        if self.kernel not in KERNELS:
            raise ConfigError(
                f"unknown kernel {self.kernel!r}; expected one of {KERNELS}"
            )
        if self.target_population <= 0:
            raise ConfigError("target_population must be positive")

    @classmethod
    def from_run_spec(
        cls,
        base: "RunSpec",  # noqa: F821 — deferred import, avoids a cycle
        strategies: tuple[str, ...],
        mixes: tuple[str, ...],
        seeds: tuple[int, ...],
        scarcity: float = 0.5,
        samples_per_window: int = 8,
    ) -> "OversubSweepSpec":
        """Expand a base :class:`repro.api.RunSpec` into a strategy grid.

        The base spec contributes everything a single run defines
        (provider, population, policy, kernel, machine shape, update
        period); the grid axes — strategies, mixes, seeds — and the
        sweep-only scarcity knob come in alongside.  This is the CLI's
        parse target: one validated spec instead of a dozen loose args.
        """
        return cls(
            strategies=strategies,
            providers=(base.provider,),
            mixes=mixes,
            seeds=seeds,
            target_population=base.target_population,
            scarcity=scarcity,
            policy=base.policy,
            kernel=base.kernel,
            update_every=base.oversub_update_every,
            samples_per_window=samples_per_window,
            machine=MachineSpec(
                name="oversub-pm", cpus=base.host_cpus, mem_gb=base.host_mem_gb
            ),
        )


@dataclass(frozen=True)
class OversubCellResult:
    """One (strategy, provider, mix, seed) run."""

    strategy: str
    provider: str
    mix_label: str
    seed: int
    hosts: int
    arrivals: int
    placed: int
    rejected: int
    pooled: int
    violation_rate: float
    eff_ratio_mean: float
    #: Placed-count gain over the cell's static baseline, in percent.
    packing_gain_percent: float

    def to_dict(self) -> dict[str, object]:
        return {
            "strategy": self.strategy,
            "provider": self.provider,
            "mix_label": self.mix_label,
            "seed": self.seed,
            "hosts": self.hosts,
            "arrivals": self.arrivals,
            "placed": self.placed,
            "rejected": self.rejected,
            "pooled": self.pooled,
            "violation_rate": self.violation_rate,
            "eff_ratio_mean": self.eff_ratio_mean,
            "packing_gain_percent": self.packing_gain_percent,
        }


@dataclass(frozen=True)
class OversubSweepResult:
    spec: OversubSweepSpec
    cells: tuple[OversubCellResult, ...]

    def table(self) -> str:
        return render_oversub_table(self.cells)

    def to_dicts(self) -> list[dict[str, object]]:
        return [cell.to_dict() for cell in self.cells]


def _run_strategy(
    spec: OversubSweepSpec,
    strategy: str,
    machines: Sequence[MachineSpec],
    workload: Sequence[VMRequest],
) -> SimulationResult:
    oversub = OversubParams(
        estimator=make_estimator(strategy),
        update_every=spec.update_every,
        samples_per_window=spec.samples_per_window,
    )
    sim = VectorSimulation(
        list(machines),
        policy=spec.policy,
        kernel=spec.kernel,
        oversub=oversub,
    )
    return sim.run(list(workload))


def _cell_results(
    spec: OversubSweepSpec, provider: str, mix_entry: str, seed: int
) -> Iterator[OversubCellResult]:
    mix_label, mix = resolve_mix_entry(mix_entry)
    params = WorkloadParams(
        catalog=PROVIDERS[provider],
        level_mix=mix,
        target_population=spec.target_population,
        seed=seed,
    )
    workload = generate_workload(params)
    lb = demand_lower_bound(workload, spec.machine)
    hosts = max(1, math.ceil(lb * spec.scarcity))
    machines = [
        MachineSpec(
            name=f"pm-{i}", cpus=spec.machine.cpus, mem_gb=spec.machine.mem_gb
        )
        for i in range(hosts)
    ]
    # The static baseline anchors the gain column even when the caller
    # did not request it as a row.
    baseline = _run_strategy(spec, "static", machines, workload)
    base_placed = len(baseline.placements)
    for strategy in spec.strategies:
        result = (
            baseline
            if strategy == "static"
            else _run_strategy(spec, strategy, machines, workload)
        )
        placed = len(result.placements)
        gain = (
            100.0 * (placed - base_placed) / base_placed if base_placed else 0.0
        )
        summary = result.oversub
        assert summary is not None  # every run here has a controller
        yield OversubCellResult(
            strategy=strategy,
            provider=provider,
            mix_label=mix_label,
            seed=seed,
            hosts=hosts,
            arrivals=len(workload),
            placed=placed,
            rejected=len(result.rejections),
            pooled=result.pooled_placements,
            violation_rate=summary.violation_rate,
            eff_ratio_mean=summary.eff_ratio_mean,
            packing_gain_percent=gain,
        )


def run_oversub_sweep(spec: OversubSweepSpec) -> OversubSweepResult:
    """Run the full strategy × provider × mix × seed grid."""
    cells: list[OversubCellResult] = []
    for provider in spec.providers:
        for mix_entry in spec.mixes:
            for seed in spec.seeds:
                cells.extend(_cell_results(spec, provider, mix_entry, seed))
    return OversubSweepResult(spec=spec, cells=tuple(cells))


_COLUMNS = (
    "strategy",
    "provider",
    "mix",
    "seed",
    "hosts",
    "placed",
    "rejected",
    "gain%",
    "viol%",
    "eff×",
)


def render_oversub_table(cells: Sequence[OversubCellResult]) -> str:
    """Aligned text table, one row per cell (plus header)."""
    rows = [_COLUMNS]
    for c in cells:
        rows.append(
            (
                c.strategy,
                c.provider,
                c.mix_label,
                str(c.seed),
                str(c.hosts),
                str(c.placed),
                str(c.rejected),
                f"{c.packing_gain_percent:+.1f}",
                f"{100.0 * c.violation_rate:.2f}",
                f"{c.eff_ratio_mean:.2f}",
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(_COLUMNS))]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in rows
    ]
    return "\n".join(lines)
