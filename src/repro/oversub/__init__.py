"""Usage-driven dynamic oversubscription (paper §VIII future work).

Estimators map observed per-host usage windows to dynamic effective
capacities (:mod:`~repro.oversub.estimators`); a shared controller
(:mod:`~repro.oversub.controller`) drives them periodically against
either engine; the object pipeline composes through
:mod:`~repro.oversub.pipeline`.  The strategy-sweep evaluation lives in
:mod:`repro.oversub.evaluate` (imported explicitly — it pulls in the
simulation engines).
"""

from repro.oversub.controller import (
    CapacityTarget,
    OversubController,
    OversubParams,
    OversubSummary,
)
from repro.oversub.estimators import (
    STRATEGIES,
    CapacityEstimator,
    DoaEstimator,
    GreedyEstimator,
    HostWindow,
    PeakPredictor,
    PercentileEstimator,
    StaticRatio,
    make_estimator,
)
from repro.oversub.monitor import ClusterUsageMonitor, profile_for_vm, stable_phase
from repro.oversub.pipeline import (
    EffectiveCapacityFilter,
    EffectiveCapacityView,
    ObjectClusterTarget,
    SlackAwareWeigher,
    with_oversub,
)

__all__ = [
    "CapacityTarget",
    "OversubController",
    "OversubParams",
    "OversubSummary",
    "STRATEGIES",
    "CapacityEstimator",
    "DoaEstimator",
    "GreedyEstimator",
    "HostWindow",
    "PeakPredictor",
    "PercentileEstimator",
    "StaticRatio",
    "make_estimator",
    "ClusterUsageMonitor",
    "profile_for_vm",
    "stable_phase",
    "EffectiveCapacityFilter",
    "EffectiveCapacityView",
    "ObjectClusterTarget",
    "SlackAwareWeigher",
    "with_oversub",
]
