"""Object-pipeline integration of the dynamic effective capacities.

The vector engine applies an estimator's output by overriding its
capacity arrays directly (``VectorCluster.set_effective_capacity``);
the reference engine composes through its Nova-style pipeline instead:

* :class:`EffectiveCapacityView` — the shared per-host effective
  capacity vector, keyed by machine name (filters see hosts, not
  indices);
* :class:`EffectiveCapacityFilter` — a hard constraint: the host's
  post-placement CPU reservation must fit its effective capacity;
* :class:`SlackAwareWeigher` — a soft preference for hosts left with
  the most predicted usage slack after the placement.

The object path's :class:`~repro.localsched.agent.LocalScheduler`
allocates *physical* CPU slots, so on this path a dynamic capacity can
only **restrict** placement (effective below physical); admitting more
than physical requires the vector engine's capacity override.  With
``StaticRatio(1.0)`` the filter passes exactly when ``CapacityFilter``
does, leaving decisions untouched — the golden-trace identity the
conformance suite pins.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.constants import CAPACITY_EPSILON
from repro.core.errors import ConfigError
from repro.core.types import VMRequest
from repro.localsched.agent import LocalScheduler
from repro.scheduling.filters import HostFilter
from repro.scheduling.global_scheduler import ScoreBasedScheduler
from repro.scheduling.weighers import HostWeigher

__all__ = [
    "EffectiveCapacityView",
    "EffectiveCapacityFilter",
    "SlackAwareWeigher",
    "ObjectClusterTarget",
    "with_oversub",
]


class EffectiveCapacityView:
    """Mutable per-host effective CPU capacities, keyed by machine name.

    One instance is shared between the controller (which writes via
    :meth:`update`) and the filter/weigher (which read per host).
    Effective capacities start at physical.
    """

    def __init__(self, names: Sequence[str], physical: Sequence[float]):
        if len(names) != len(physical):
            raise ConfigError(
                f"{len(names)} host names for {len(physical)} capacities"
            )
        if len(set(names)) != len(names):
            raise ConfigError("host machine names must be unique")
        self._index = {name: i for i, name in enumerate(names)}
        self.physical = np.asarray(physical, dtype=float)
        self.effective = self.physical.copy()

    def update(self, eff: np.ndarray) -> None:
        eff = np.asarray(eff, dtype=float)
        if eff.shape != self.effective.shape:
            raise ConfigError(
                f"expected {self.effective.shape} capacities, got {eff.shape}"
            )
        self.effective[:] = eff

    def effective_for(self, name: str) -> float:
        return float(self.effective[self._index[name]])

    def physical_for(self, name: str) -> float:
        return float(self.physical[self._index[name]])


class EffectiveCapacityFilter(HostFilter):
    """Host passes iff the placement's CPU reservation fits its
    effective capacity.

    Uses the host's own non-mutating :meth:`~LocalScheduler.plan` for
    the exact vNode growth the deployment would cause, so the check
    matches the engine's admission accounting (pooled placements grow
    nothing and pass whenever the current reservation fits).
    """

    def __init__(self, view: EffectiveCapacityView):
        self.view = view

    def passes(self, host: LocalScheduler, vm: VMRequest) -> bool:
        plan = host.plan(vm)
        if plan is None:
            # Physically infeasible; CapacityFilter rejects it too.
            return False
        eff = self.view.effective_for(host.machine.name)
        after = host.allocated_cpus + plan.growth
        return after <= eff + CAPACITY_EPSILON


class SlackAwareWeigher(HostWeigher):
    """Prefer hosts left with the most normalized predicted slack.

    Score = ``(effective - reservation-after-placement) / physical``.
    Unlike :class:`~repro.scheduling.weighers.WorstFitWeigher` this
    measures slack against the *estimator's* capacity, so a host whose
    VMs are predicted quiet ranks above an equally-reserved host
    running hot.
    """

    def __init__(self, view: EffectiveCapacityView):
        self.view = view

    def weigh(self, host: LocalScheduler, vm: VMRequest, index: int) -> float:
        plan = host.plan(vm)
        growth = plan.growth if plan is not None else 0
        eff = self.view.effective_for(host.machine.name)
        after = host.allocated_cpus + growth
        return (eff - after) / self.view.physical_for(host.machine.name)


class ObjectClusterTarget:
    """:class:`~repro.oversub.controller.CapacityTarget` over the
    reference engine's hosts.

    The engine's run loop maintains :attr:`live` (vm id -> (request,
    host index)) as VMs arrive and depart; the controller reads it at
    each update instant.
    """

    def __init__(self, hosts: Sequence[LocalScheduler], view: EffectiveCapacityView):
        self.hosts = list(hosts)
        self.view = view
        self.live: dict[str, tuple[VMRequest, int]] = {}

    def placements(self) -> Iterable[tuple[VMRequest, int]]:
        return self.live.values()

    def physical_capacity(self) -> Sequence[float]:
        return self.view.physical

    def allocated_capacity(self) -> Sequence[float]:
        return [float(h.allocated_cpus) for h in self.hosts]

    def apply_effective_capacity(self, eff: np.ndarray) -> None:
        self.view.update(eff)


def with_oversub(
    scheduler: ScoreBasedScheduler,
    view: EffectiveCapacityView,
    slack_weight: float = 0.0,
) -> ScoreBasedScheduler:
    """A copy of ``scheduler`` with the oversubscription stages added.

    Appends :class:`EffectiveCapacityFilter` to the filter stage and,
    when ``slack_weight`` is positive, a :class:`SlackAwareWeigher`
    with that weight to the weigher stage.
    """
    if slack_weight < 0:
        raise ConfigError(f"slack_weight must be >= 0, got {slack_weight}")
    filters = (*scheduler.filters, EffectiveCapacityFilter(view))
    weighers = scheduler.weighers
    if slack_weight > 0:
        weighers = (*weighers, (SlackAwareWeigher(view), slack_weight))
    return ScoreBasedScheduler(
        filters=filters, weighers=weighers, name=f"{scheduler.name}+oversub"
    )
