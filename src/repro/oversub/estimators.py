"""Usage-driven effective-capacity estimators (ROADMAP item 1).

SlackVM fixes each level's oversubscription ratio statically and defers
dynamic levels to future work (paper §VIII).  This module supplies the
missing layer: a :class:`CapacityEstimator` maps one host's *observed*
usage window (:class:`HostWindow`) to the effective CPU capacity the
scheduler should pack against.  Strategies:

* :class:`StaticRatio` — the paper's baseline: a fixed multiple of the
  physical core count (``ratio=1.0`` reproduces today's behaviour
  exactly; the per-level oversubscription already lives in the vNodes).
* :class:`PercentileEstimator` — Resource Central-style: scale the
  current reservation so the predicted usage peak lands at a headroom
  target below the physical capacity.
* :class:`DoaEstimator` — ScroogeVM's decrease-on-alert: a per-host
  ratio that backs off sharply on an alert and creeps up only after
  the host's peak has been stable for several windows.
* :class:`GreedyEstimator` — step the ratio up while the host is
  quiescent, multiplicative back-off toward 1 on a threshold breach.

Every estimate is clamped into ``[window.used, ratio_cap × physical]``:
never below what the VMs demonstrably used (capacity that is already
consumed cannot be reclaimed by prediction), never above the configured
oversubscription ceiling.  The property suite pins this contract.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Protocol

import numpy as np

from repro.core.errors import ConfigError

__all__ = [
    "HostWindow",
    "PeakPredictor",
    "CapacityEstimator",
    "StaticRatio",
    "PercentileEstimator",
    "DoaEstimator",
    "GreedyEstimator",
    "STRATEGIES",
    "make_estimator",
]


class PeakPredictor(Protocol):
    """Anything that maps a sample window to a predicted peak.

    Satisfied by :class:`repro.dynamiclevels.predictor.PercentilePredictor`
    and :class:`~repro.dynamiclevels.predictor.MeanStdPredictor`.
    """

    def predict(self, samples: np.ndarray) -> float: ...


def _default_predictor(percentile: float) -> PeakPredictor:
    # Imported lazily: repro.dynamiclevels.__init__ pulls in the
    # simulation engine, which imports this package — a module-level
    # import here would close that cycle.
    from repro.dynamiclevels.predictor import PercentilePredictor

    return PercentilePredictor(percentile)


class HostWindow:
    """One host's observed usage over a time window.

    ``samples`` holds the *demanded* physical cores on the window's
    sample grid — unclipped, so a breach (demand above the physical
    core count) is visible to the estimators and the violation
    accounting.  ``allocated`` is what the scheduler has reserved.
    """

    __slots__ = ("host", "time", "physical", "allocated", "samples")

    def __init__(
        self,
        host: int,
        time: float,
        physical: float,
        allocated: float,
        samples: np.ndarray,
    ):
        if physical < 0:
            raise ConfigError(f"physical capacity must be >= 0, got {physical}")
        if allocated < 0:
            raise ConfigError(f"allocated capacity must be >= 0, got {allocated}")
        self.host = host
        self.time = time
        self.physical = physical
        self.allocated = allocated
        self.samples = np.asarray(samples, dtype=float)

    @property
    def used(self) -> float:
        """Peak *served* usage: the demand peak, capped by the physical
        cores (a host cannot serve more than it has)."""
        if self.samples.size == 0:
            return 0.0
        return float(min(self.samples.max(), self.physical))

    @property
    def peak_demand(self) -> float:
        """Uncapped demand peak (exceeds ``physical`` on a breach)."""
        if self.samples.size == 0:
            return 0.0
        return float(self.samples.max())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HostWindow(host={self.host}, time={self.time}, "
            f"physical={self.physical}, allocated={self.allocated}, "
            f"samples=<{self.samples.size}>)"
        )


class CapacityEstimator(ABC):
    """Maps a host's usage window to an effective CPU capacity.

    Subclasses implement :meth:`_estimate`; callers use
    :meth:`effective_capacity`, which applies the safety clamp
    ``[window.used, ratio_cap × physical]``.  Stateful strategies key
    their state by ``window.host`` and must implement :meth:`reset` so
    one instance can be reused across independent runs.
    """

    #: Registry key; subclasses override.
    name = "estimator"

    def __init__(self, ratio_cap: float = 3.0):
        if ratio_cap < 1.0:
            raise ConfigError(f"ratio_cap must be >= 1, got {ratio_cap}")
        self.ratio_cap = ratio_cap

    @abstractmethod
    def _estimate(self, window: HostWindow) -> float:
        """Raw effective-capacity estimate in physical cores."""

    def effective_capacity(self, window: HostWindow) -> float:
        """Clamped effective capacity for one host window."""
        raw = self._estimate(window)
        upper = self.ratio_cap * window.physical
        return float(min(max(raw, window.used), upper))

    def reset(self) -> None:
        """Drop per-host state (stateless strategies: no-op)."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(ratio_cap={self.ratio_cap})"


class StaticRatio(CapacityEstimator):
    """The paper's baseline: effective capacity = ratio × physical.

    ``ratio=1.0`` (the default) is *exactly* today's behaviour — the
    per-level oversubscription is already encoded in the vNode ratios,
    so the host-level effective capacity equals the physical cores and
    the golden decision traces are reproduced byte-identically.
    """

    name = "static"

    def __init__(self, ratio: float = 1.0):
        super().__init__(ratio_cap=ratio)
        self.ratio = ratio

    def _estimate(self, window: HostWindow) -> float:
        return self.ratio * window.physical


class PercentileEstimator(CapacityEstimator):
    """Resource Central-style windowed-percentile scaling.

    Predicts the host's usage peak from the window and scales the
    current reservation so that peak would land at ``1 - headroom`` of
    the physical capacity: ``eff = allocated × (1 - headroom) ×
    physical / peak``.  An idle-but-reserved host therefore earns a
    large effective capacity (its reservations barely translate into
    usage) while a hot host shrinks toward what it demonstrably needs.
    Hosts with no reservation or an empty window report neutral
    (physical) capacity — there is no signal to extrapolate from.
    """

    name = "percentile"

    def __init__(
        self,
        predictor: PeakPredictor | None = None,
        headroom: float = 0.1,
        ratio_cap: float = 3.0,
    ):
        super().__init__(ratio_cap=ratio_cap)
        if not 0.0 <= headroom < 1.0:
            raise ConfigError(f"headroom must be in [0,1), got {headroom}")
        self.predictor = predictor if predictor is not None else _default_predictor(95.0)
        self.headroom = headroom

    def _estimate(self, window: HostWindow) -> float:
        if window.allocated <= 0.0 or window.samples.size == 0:
            return window.physical
        peak = float(self.predictor.predict(window.samples))
        if peak <= 0.0:
            # Reserved but (as good as) unused: the signal supports the
            # most aggressive packing the ceiling allows.
            return self.ratio_cap * window.physical
        target = (1.0 - self.headroom) * window.physical
        return window.allocated * target / peak


class DoaEstimator(CapacityEstimator):
    """ScroogeVM-style decrease-on-alert with per-host stability state.

    Each host carries an oversubscription ratio.  When the predicted
    usage peak crosses the ``alert`` fraction of physical capacity the
    ratio drops by ``decrease`` immediately (alerts are trusted).
    Raising it back is deliberately slow: the peak must stay within
    ``stability_margin × physical`` of the previous window's peak for
    ``stable_windows`` consecutive windows before the ratio gains
    ``increase`` — the stability signal that keeps DOA from oscillating
    on bursty hosts.
    """

    name = "doa"

    def __init__(
        self,
        predictor: PeakPredictor | None = None,
        alert: float = 0.85,
        increase: float = 0.1,
        decrease: float = 0.5,
        stable_windows: int = 2,
        stability_margin: float = 0.05,
        ratio_cap: float = 3.0,
    ):
        super().__init__(ratio_cap=ratio_cap)
        if not 0.0 < alert <= 1.0:
            raise ConfigError(f"alert threshold must be in (0,1], got {alert}")
        if increase <= 0 or decrease <= 0:
            raise ConfigError("increase and decrease steps must be positive")
        if stable_windows < 1:
            raise ConfigError(f"stable_windows must be >= 1, got {stable_windows}")
        if stability_margin < 0:
            raise ConfigError(f"stability_margin must be >= 0, got {stability_margin}")
        self.predictor = predictor if predictor is not None else _default_predictor(90.0)
        self.alert = alert
        self.increase = increase
        self.decrease = decrease
        self.stable_windows = stable_windows
        self.stability_margin = stability_margin
        # host -> (ratio, previous peak, consecutive-stable-windows)
        self._state: dict[int, tuple[float, float, int]] = {}

    def reset(self) -> None:
        self._state.clear()

    def _estimate(self, window: HostWindow) -> float:
        ratio, last_peak, streak = self._state.get(window.host, (1.0, math.nan, 0))
        peak = 0.0
        if window.samples.size and window.physical > 0:
            peak = float(self.predictor.predict(window.samples))
        alerted = window.physical > 0 and peak >= self.alert * window.physical
        if alerted:
            ratio = max(1.0, ratio - self.decrease)
            streak = 0
        else:
            stable = (
                not math.isnan(last_peak)
                and abs(peak - last_peak) <= self.stability_margin * window.physical
            )
            streak = streak + 1 if stable else 0
            if streak >= self.stable_windows:
                ratio = min(self.ratio_cap, ratio + self.increase)
        self._state[window.host] = (ratio, peak, streak)
        return ratio * window.physical


class GreedyEstimator(CapacityEstimator):
    """Step up while quiescent, multiplicative back-off on breach.

    The simplest adaptive strategy and the natural foil for DOA: no
    predictor, no stability signal.  While the raw demand peak stays
    under ``quiet × physical`` the per-host ratio gains ``step``
    additively; the moment it does not, the ratio collapses
    multiplicatively toward 1 (``1 + (ratio - 1) × backoff``) — an
    AIMD loop over host capacity.
    """

    name = "greedy"

    def __init__(
        self,
        quiet: float = 0.7,
        step: float = 0.25,
        backoff: float = 0.5,
        ratio_cap: float = 3.0,
    ):
        super().__init__(ratio_cap=ratio_cap)
        if not 0.0 < quiet <= 1.0:
            raise ConfigError(f"quiet threshold must be in (0,1], got {quiet}")
        if step <= 0:
            raise ConfigError(f"step must be positive, got {step}")
        if not 0.0 <= backoff < 1.0:
            raise ConfigError(f"backoff must be in [0,1), got {backoff}")
        self.quiet = quiet
        self.step = step
        self.backoff = backoff
        self._ratio: dict[int, float] = {}

    def reset(self) -> None:
        self._ratio.clear()

    def _estimate(self, window: HostWindow) -> float:
        ratio = self._ratio.get(window.host, 1.0)
        if window.peak_demand <= self.quiet * window.physical:
            ratio = min(self.ratio_cap, ratio + self.step)
        else:
            ratio = max(1.0, 1.0 + (ratio - 1.0) * self.backoff)
        self._ratio[window.host] = ratio
        return ratio * window.physical


#: Strategy registry: name -> zero-argument factory with the defaults
#: the evaluation sweep uses.  Fresh instances per cell — DOA and
#: greedy carry per-host state.
STRATEGIES: dict[str, Callable[[], CapacityEstimator]] = {
    StaticRatio.name: StaticRatio,
    PercentileEstimator.name: PercentileEstimator,
    DoaEstimator.name: DoaEstimator,
    GreedyEstimator.name: GreedyEstimator,
}


def make_estimator(name: str) -> CapacityEstimator:
    """Instantiate a registered strategy with its default parameters."""
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown oversubscription strategy {name!r}; "
            f"expected one of {sorted(STRATEGIES)}"
        ) from None
    return factory()
