"""Per-host usage observation windows for the capacity estimators.

The estimators need *observed* usage, but the packing simulations are
allocation-driven — nothing in the event loop evaluates the usage
profiles.  :class:`ClusterUsageMonitor` closes that gap: given the live
placements at an update instant, it reconstructs each host's demanded
cores over the trailing window from the same closed-form usage model
:mod:`repro.perfmodel` is driven by (:mod:`repro.workload.usage`), and
packages them as :class:`~repro.oversub.estimators.HostWindow` rows.

Demand is *unclipped* by host capacity: a host whose VMs want more
cores than it has shows a breach in its window, which is exactly the
signal the decrease-on-alert strategies and the violation accounting
need.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Sequence

import numpy as np

from repro.core.errors import ConfigError
from repro.core.types import VMRequest
from repro.oversub.estimators import HostWindow
from repro.workload.usage import (
    InteractiveProfile,
    StressProfile,
    UsageProfile,
    profile_for,
)

__all__ = ["ClusterUsageMonitor", "stable_phase", "profile_for_vm"]


def stable_phase(vm_id: str) -> float:
    """Deterministic per-VM diurnal phase in [0, 1).

    CRC32 of the VM id, not ``hash()``: stable across processes and
    Python versions, so monitor-driven results are reproducible.
    """
    return zlib.crc32(vm_id.encode("utf-8")) / 2**32


def profile_for_vm(vm: VMRequest) -> UsageProfile:
    """The usage profile behind a request's ``usage_kind`` tag.

    Interactive VMs get a deterministic per-VM phase (users in
    different timezones) unless the trace pinned one in
    ``metadata["phase"]``.  Unknown kinds and out-of-range parameters
    degrade to the conservative worst case — full utilisation — rather
    than erroring: the monitor observes whatever workload it is handed.
    """
    kind = vm.usage_kind
    param = float(min(max(vm.usage_param, 0.0), 1.0))
    if kind == "interactive":
        phase = float(vm.metadata.get("phase", stable_phase(vm.vm_id)))
        if param <= 0.0:
            return StressProfile(utilization=0.0)
        return InteractiveProfile(base=param, phase=phase)
    if kind in ("idle", "stress"):
        return profile_for(kind, param)
    return StressProfile(utilization=1.0)


class ClusterUsageMonitor:
    """Samples per-host demanded-core windows at update instants.

    ``window`` is the trailing observation span in seconds and
    ``samples_per_window`` the grid resolution.  :meth:`collect` is the
    estimator-facing hot path: one vectorized
    :meth:`~repro.workload.usage.UsageProfile.demand_series` call per
    live VM, accumulated into per-host rows.
    """

    def __init__(self, window: float = 1800.0, samples_per_window: int = 16):
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        if samples_per_window < 1:
            raise ConfigError(
                f"samples_per_window must be >= 1, got {samples_per_window}"
            )
        self.window = window
        self.samples_per_window = samples_per_window

    def collect(
        self,
        placements: Iterable[tuple[VMRequest, int]],
        physical: Sequence[float],
        allocated: Sequence[float],
        time: float,
    ) -> list[HostWindow]:
        """One :class:`HostWindow` per host, ending at ``time``.

        ``placements`` yields ``(request, host_index)`` for every live
        VM; ``physical``/``allocated`` are per-host core counts.  A
        VM's contribution before its arrival instant is zero (windows
        can reach back past an arrival).
        """
        physical_arr = np.asarray(physical, dtype=float)
        allocated_arr = np.asarray(allocated, dtype=float)
        if physical_arr.shape != allocated_arr.shape:
            raise ConfigError(
                "physical and allocated describe different host counts: "
                f"{physical_arr.shape} vs {allocated_arr.shape}"
            )
        n = int(physical_arr.size)
        start = max(0.0, time - self.window)
        times = np.linspace(start, time, self.samples_per_window)
        demand = np.zeros((n, self.samples_per_window), dtype=float)
        for vm, host in placements:
            series = profile_for_vm(vm).demand_series(times) * float(vm.spec.vcpus)
            if vm.arrival > start:
                series = np.where(times >= vm.arrival, series, 0.0)
            demand[host] += series
        return [
            HostWindow(
                host=j,
                time=time,
                physical=float(physical_arr[j]),
                allocated=float(allocated_arr[j]),
                samples=demand[j],
            )
            for j in range(n)
        ]
