"""Periodic effective-capacity control loop + violation accounting.

:class:`OversubController` is the piece both engines share: every
``update_every`` simulated seconds it collects per-host usage windows
(:class:`~repro.oversub.monitor.ClusterUsageMonitor`), asks the
configured :class:`~repro.oversub.estimators.CapacityEstimator` for
each host's effective capacity, and pushes the resulting vector back
into the engine through the small :class:`CapacityTarget` port —
``VectorCluster`` adapts it with a capacity-array override, the object
engine with an :class:`~repro.oversub.pipeline.EffectiveCapacityView`.

It also keeps the safety ledger: a host window whose demand peak
exceeds ``violation_threshold × physical`` counts as one violation.
Violations are counted for *every* strategy, including
:class:`~repro.oversub.estimators.StaticRatio` — that is the baseline
risk the packing-gain-vs-violation tables in EXPERIMENTS.md compare
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence

import numpy as np

from repro.core.errors import ConfigError
from repro.core.types import VMRequest
from repro.obs import names as metric_names
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.oversub.estimators import CapacityEstimator
from repro.oversub.monitor import ClusterUsageMonitor

__all__ = ["CapacityTarget", "OversubParams", "OversubSummary", "OversubController"]


class CapacityTarget(Protocol):
    """What the controller needs from an engine (structural port)."""

    def placements(self) -> Iterable[tuple[VMRequest, int]]:
        """(request, host index) for every live VM."""

    def physical_capacity(self) -> Sequence[float]:
        """Per-host physical CPU cores."""

    def allocated_capacity(self) -> Sequence[float]:
        """Per-host reserved CPU cores."""

    def apply_effective_capacity(self, eff: np.ndarray) -> None:
        """Install the per-host effective capacities."""


@dataclass(frozen=True)
class OversubParams:
    """Configuration of the dynamic-oversubscription loop.

    ``window`` defaults to ``update_every`` (back-to-back observation
    windows).  ``slack_weight`` only affects the object engine: when
    positive, a :class:`~repro.oversub.pipeline.SlackAwareWeigher` with
    that weight joins the scheduler's weigher stage.
    """

    estimator: CapacityEstimator
    update_every: float = 1800.0
    window: float | None = None
    samples_per_window: int = 16
    violation_threshold: float = 1.0
    slack_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.update_every <= 0:
            raise ConfigError(
                f"update_every must be positive, got {self.update_every}"
            )
        if self.window is not None and self.window <= 0:
            raise ConfigError(f"window must be positive, got {self.window}")
        if self.violation_threshold <= 0:
            raise ConfigError(
                f"violation_threshold must be positive, got {self.violation_threshold}"
            )
        if self.slack_weight < 0:
            raise ConfigError(
                f"slack_weight must be >= 0, got {self.slack_weight}"
            )

    def build_controller(
        self, metrics: MetricsRegistry = NULL_METRICS
    ) -> "OversubController":
        monitor = ClusterUsageMonitor(
            window=self.window if self.window is not None else self.update_every,
            samples_per_window=self.samples_per_window,
        )
        return OversubController(
            estimator=self.estimator,
            monitor=monitor,
            update_every=self.update_every,
            violation_threshold=self.violation_threshold,
            metrics=metrics,
        )


@dataclass(frozen=True)
class OversubSummary:
    """End-of-run ledger of one controller's activity."""

    strategy: str
    updates: int
    host_windows: int
    violations: int
    eff_ratio_mean: float

    @property
    def violation_rate(self) -> float:
        """Violating host-windows as a fraction of all host-windows."""
        if self.host_windows == 0:
            return 0.0
        return self.violations / self.host_windows

    def to_dict(self) -> dict[str, float | int | str]:
        return {
            "strategy": self.strategy,
            "updates": self.updates,
            "host_windows": self.host_windows,
            "violations": self.violations,
            "violation_rate": self.violation_rate,
            "eff_ratio_mean": self.eff_ratio_mean,
        }


@dataclass
class OversubController:
    """Drives estimator updates against an engine's :class:`CapacityTarget`."""

    estimator: CapacityEstimator
    monitor: ClusterUsageMonitor
    update_every: float = 1800.0
    violation_threshold: float = 1.0
    metrics: MetricsRegistry = NULL_METRICS
    updates: int = field(default=0, init=False)
    host_windows: int = field(default=0, init=False)
    violations: int = field(default=0, init=False)
    _eff_ratio_sum: float = field(default=0.0, init=False)
    _next_update: float = field(init=False)

    def __post_init__(self) -> None:
        if self.update_every <= 0:
            raise ConfigError(
                f"update_every must be positive, got {self.update_every}"
            )
        self.estimator.reset()
        self._next_update = self.update_every

    def advance(self, target: CapacityTarget, now: float) -> None:
        """Run every update instant due at or before ``now``.

        Updates fire at exact multiples of ``update_every`` regardless
        of the event cadence, so the observation grid is identical
        across policies and kernels.
        """
        while now >= self._next_update:
            self._update(target, self._next_update)
            self._next_update += self.update_every

    def _update(self, target: CapacityTarget, time: float) -> None:
        windows = self.monitor.collect(
            target.placements(),
            target.physical_capacity(),
            target.allocated_capacity(),
            time,
        )
        eff = np.empty(len(windows), dtype=float)
        violations = 0
        ratio_sum = 0.0
        counted = 0
        for w in windows:
            eff[w.host] = self.estimator.effective_capacity(w)
            if w.physical > 0:
                if w.peak_demand > self.violation_threshold * w.physical:
                    violations += 1
                ratio_sum += eff[w.host] / w.physical
                counted += 1
        target.apply_effective_capacity(eff)
        self.updates += 1
        self.host_windows += counted
        self.violations += violations
        self._eff_ratio_sum += ratio_sum
        if self.metrics.enabled:
            self.metrics.counter(metric_names.OVERSUB_UPDATES).inc()
            self.metrics.counter(metric_names.OVERSUB_HOST_WINDOWS).inc(counted)
            if violations:
                self.metrics.counter(metric_names.OVERSUB_VIOLATIONS).inc(violations)
            if counted:
                self.metrics.histogram(metric_names.OVERSUB_EFF_RATIO).observe(
                    ratio_sum / counted
                )
            self.metrics.gauge(metric_names.OVERSUB_EFF_CPU_TOTAL).set(
                float(eff.sum())
            )

    def summary(self) -> OversubSummary:
        mean = float(
            self._eff_ratio_sum / self.host_windows if self.host_windows else 1.0
        )
        return OversubSummary(
            strategy=self.estimator.name,
            updates=self.updates,
            host_windows=self.host_windows,
            violations=self.violations,
            eff_ratio_mean=mean,
        )
