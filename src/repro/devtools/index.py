"""Whole-program project index for reprolint.

One parse of the tree, many consumers: the :class:`ProjectIndex` turns
every file under the lint paths into a :class:`ModuleSummary` — the
module's resolved import records, its pragma coverage map, every
function signature, and the single-writer call/mutation summary the
serving rules key on — plus the raw per-file findings of the AST
rules.  Both are cached in a JSON file keyed on each file's content
fingerprint (sha256), so a warm ``repro lint`` run reparses only the
files that changed; the cross-module rules (R007 import parity, R009
layering, R011 single-writer) consume *summaries*, never trees, and
therefore run at full strength even when every file came out of the
cache.

The cache is a pure accelerator: deleting it (or passing
``--no-cache``) only costs a full reparse, never a different answer.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.devtools.rules import (
    Finding,
    ImportMap,
    ModuleContext,
    Rule,
)

__all__ = [
    "INDEX_CACHE_VERSION",
    "DEFAULT_CACHE_NAME",
    "ImportRecord",
    "ModuleSummary",
    "ProjectIndex",
    "signature_of",
]

#: Bump whenever the summary or cached-finding schema changes; stale
#: versions are discarded wholesale (a cache miss, never an error).
INDEX_CACHE_VERSION = 1

#: Default cache file name, created next to the lint invocation's cwd.
DEFAULT_CACHE_NAME = ".reprolint-cache.json"

_PRAGMA = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9, ]+)")
_WRITER_MARK = re.compile(r"#\s*reprolint:\s*writer\b")

#: Controller methods the single-writer rule treats as read-only.
READONLY_CONTROLLER_METHODS = frozenset({"state", "ticket", "list_vms"})

#: The attribute name marking a class as a controller owner (R011).
CONTROLLER_ATTR = "controllers"


# ---------------------------------------------------------------------------
# summary model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ImportRecord:
    """One import statement, resolved to its target module."""

    target: str  # resolved dotted module ("repro.oversub.controller")
    line: int
    col: int
    deferred: bool  # inside a function body (runs lazily, not at import)
    type_checking: bool  # under an `if TYPE_CHECKING:` guard
    snippet: str  # stripped source line (finding fingerprints)

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "line": self.line,
            "col": self.col,
            "deferred": self.deferred,
            "type_checking": self.type_checking,
            "snippet": self.snippet,
        }

    @staticmethod
    def from_dict(data: dict) -> "ImportRecord":
        return ImportRecord(
            target=data["target"],
            line=int(data["line"]),
            col=int(data["col"]),
            deferred=bool(data["deferred"]),
            type_checking=bool(data["type_checking"]),
            snippet=data["snippet"],
        )


@dataclass
class ModuleSummary:
    """Everything the cross-module rules need to know about one file.

    JSON-round-trippable by construction — a warm lint run rebuilds
    these from the cache without touching :mod:`ast`.
    """

    module: str
    rel_path: str
    imports: List[ImportRecord] = field(default_factory=list)
    #: line -> disabled rule codes; multi-line statements map every
    #: continuation line back to the codes on their first line.
    pragmas: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    #: "fn" / "Cls.meth" -> {"params": [sig strings], "line": def line}
    #: (R007 kernel parity reads these instead of reparsing).
    signatures: Dict[str, dict] = field(default_factory=dict)
    #: Per controller-owning class: writer annotations, the intra-class
    #: call graph and every controller mutation site (R011).
    writer_classes: Dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "rel_path": self.rel_path,
            "imports": [imp.to_dict() for imp in self.imports],
            "pragmas": {str(k): list(v) for k, v in self.pragmas.items()},
            "signatures": self.signatures,
            "writer_classes": self.writer_classes,
        }

    @staticmethod
    def from_dict(data: dict) -> "ModuleSummary":
        return ModuleSummary(
            module=data["module"],
            rel_path=data["rel_path"],
            imports=[ImportRecord.from_dict(d) for d in data["imports"]],
            pragmas={
                int(k): tuple(v) for k, v in data.get("pragmas", {}).items()
            },
            signatures=dict(data.get("signatures", {})),
            writer_classes=data.get("writer_classes", {}),
        )


def signature_of(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Tuple[str, ...]:
    """``name[=default]`` per parameter, skipping the first (self/cluster)."""
    args = fn.args
    params = [*args.posonlyargs, *args.args]
    defaults: List[Optional[ast.expr]] = [None] * (
        len(params) - len(args.defaults)
    ) + list(args.defaults)
    out: List[str] = []
    for arg, default in list(zip(params, defaults))[1:]:
        text = arg.arg
        if default is not None:
            text += f"={ast.unparse(default)}"
        out.append(text)
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        text = f"*, {arg.arg}"
        if default is not None:
            text += f"={ast.unparse(default)}"
        out.append(text)
    return tuple(out)


# ---------------------------------------------------------------------------
# summary extraction
# ---------------------------------------------------------------------------


def _collect_imports(ctx: ModuleContext) -> List[ImportRecord]:
    """Every import statement with its resolved target and context."""
    records: List[ImportRecord] = []
    package = ctx.module.rsplit(".", 1)[0] if "." in ctx.module else ""

    def snippet(node: ast.stmt) -> str:
        line = node.lineno - 1
        return ctx.lines[line].strip() if line < len(ctx.lines) else ""

    def resolve_from(node: ast.ImportFrom) -> str:
        base = node.module or ""
        if node.level:
            hops = ctx.module.split(".")
            hops = hops[: len(hops) - node.level]
            base = ".".join(hops + ([node.module] if node.module else []))
            base = base or package
        return base

    def visit(body: Sequence[ast.stmt], deferred: bool, guarded: bool) -> None:
        for node in body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    records.append(
                        ImportRecord(
                            alias.name, node.lineno, node.col_offset,
                            deferred, guarded, snippet(node),
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                target = resolve_from(node)
                if target:
                    records.append(
                        ImportRecord(
                            target, node.lineno, node.col_offset,
                            deferred, guarded, snippet(node),
                        )
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(node.body, True, guarded)
            elif isinstance(node, ast.ClassDef):
                visit(node.body, deferred, guarded)
            elif isinstance(node, ast.If):
                test = ast.unparse(node.test)
                is_tc = "TYPE_CHECKING" in test
                visit(node.body, deferred, guarded or is_tc)
                visit(node.orelse, deferred, guarded)
            elif isinstance(node, ast.Try):
                visit(node.body, deferred, guarded)
                for handler in node.handlers:
                    visit(handler.body, deferred, guarded)
                visit(node.orelse, deferred, guarded)
                visit(node.finalbody, deferred, guarded)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                visit(node.body, deferred, guarded)
            elif isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                visit(node.body, deferred, guarded)
                visit(node.orelse, deferred, guarded)
    visit(ctx.tree.body, False, False)
    return records


#: Compound statements keep pragma coverage on their header line only —
#: extending an `if`/`for` pragma over the whole suite would suppress
#: far more than the author wrote it against.
_SIMPLE_STMTS = (
    ast.Assign,
    ast.AnnAssign,
    ast.AugAssign,
    ast.Expr,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
    ast.Pass,
)


def pragma_coverage(
    lines: Sequence[str], tree: Optional[ast.Module] = None
) -> Dict[int, Tuple[str, ...]]:
    """Line -> disabled rule codes, with multi-line statement extents.

    A ``# reprolint: disable=Rxxx`` pragma on the *first* line of a
    simple multi-line statement (a parenthesized call, a wrapped
    comparison) covers every continuation line, so findings anchored to
    a continuation line are suppressed by the pragma the author could
    actually write — black and friends reflow the line the finding
    lands on, not the line the pragma sits on.
    """
    coverage: Dict[int, set] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if match:
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            coverage.setdefault(lineno, set()).update(codes)
    if tree is not None and coverage:
        for node in ast.walk(tree):
            if not isinstance(node, _SIMPLE_STMTS):
                continue
            end = getattr(node, "end_lineno", node.lineno)
            if end <= node.lineno:
                continue
            codes = coverage.get(node.lineno)
            if not codes:
                continue
            for lineno in range(node.lineno + 1, end + 1):
                coverage.setdefault(lineno, set()).update(codes)
    return {line: tuple(sorted(codes)) for line, codes in coverage.items()}


def _collect_signatures(ctx: ModuleContext) -> Dict[str, dict]:
    """Module-level functions and one level of class methods."""

    def entry(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> dict:
        return {"params": list(signature_of(fn)), "line": fn.lineno}

    signatures: Dict[str, dict] = {}
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            signatures[node.name] = entry(node)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    signatures[f"{node.name}.{item.name}"] = entry(item)
    return signatures


def _is_controllers_attr(node: ast.expr) -> bool:
    """True for ``self.controllers`` (any depth of trailing subscripts)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return (
        isinstance(node, ast.Attribute)
        and node.attr == CONTROLLER_ATTR
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _writer_marked(lines: Sequence[str], fn: ast.stmt) -> bool:
    """A ``# reprolint: writer`` marker on the def line or just above."""
    for lineno in (fn.lineno, fn.lineno - 1):
        if 1 <= lineno <= len(lines) and _WRITER_MARK.search(lines[lineno - 1]):
            return True
    return False


def _method_summary(
    ctx: ModuleContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
) -> dict:
    """Call edges + controller mutation sites for one method (R011)."""
    calls: set = set()
    mutations: List[dict] = []
    aliases: set = set()  # local names bound to a controller shard

    def alias_target(target: ast.expr, source: ast.expr) -> None:
        if _is_controllers_attr(source) and isinstance(target, ast.Name):
            aliases.add(target.id)
        # `for i, c in enumerate(self.controllers)` idiom
        if (
            isinstance(source, ast.Call)
            and isinstance(source.func, ast.Name)
            and source.func.id == "enumerate"
            and source.args
            and _is_controllers_attr(source.args[0])
            and isinstance(target, ast.Tuple)
            and len(target.elts) == 2
            and isinstance(target.elts[1], ast.Name)
        ):
            aliases.add(target.elts[1].id)

    # First pass: every alias binding (assignments, loops, comprehension
    # generators) — mutation detection must not depend on AST walk order.
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and isinstance(
                    node.value, ast.Subscript
                ) and _is_controllers_attr(node.value):
                    aliases.add(target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            alias_target(node.target, node.iter)
        elif isinstance(node, ast.comprehension):
            alias_target(node.target, node.iter)

    # Second pass: self-call edges and controller mutations.
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            if any(_is_controllers_attr(t) for t in node.targets):
                if fn.name != "__init__":
                    mutations.append(_mutation(ctx, node, "reassigns self.controllers"))
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                receiver = func.value
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id == "self"
                ):
                    calls.add(func.attr)
                elif _is_controllers_attr(receiver) or (
                    isinstance(receiver, ast.Name) and receiver.id in aliases
                ):
                    if func.attr not in READONLY_CONTROLLER_METHODS:
                        mutations.append(
                            _mutation(
                                ctx, node,
                                f"calls controller.{func.attr}()",
                            )
                        )
    return {
        "writer": _writer_marked(ctx.lines, fn),
        "line": fn.lineno,
        "calls": sorted(calls),
        "mutations": mutations,
    }


def _mutation(ctx: ModuleContext, node: ast.AST, desc: str) -> dict:
    line = getattr(node, "lineno", 1)
    snippet = ctx.lines[line - 1].strip() if line - 1 < len(ctx.lines) else ""
    return {
        "line": line,
        "col": getattr(node, "col_offset", 0),
        "snippet": snippet,
        "desc": desc,
    }


def _collect_writer_classes(ctx: ModuleContext) -> Dict[str, dict]:
    """Single-writer summaries for classes owning ``self.controllers``."""
    out: Dict[str, dict] = {}
    for node in ctx.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        owns = any(
            _is_controllers_attr(t)
            for item in ast.walk(node)
            if isinstance(item, ast.Assign)
            for t in item.targets
        ) or any(
            isinstance(item, ast.AnnAssign)
            and _is_controllers_attr(item.target)
            for item in ast.walk(node)
        )
        if not owns:
            continue
        methods = {
            item.name: _method_summary(ctx, item)
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        out[node.name] = {"line": node.lineno, "methods": methods}
    return out


def build_summary(ctx: ModuleContext) -> ModuleSummary:
    """The cacheable cross-module summary of one parsed file."""
    return ModuleSummary(
        module=ctx.module,
        rel_path=ctx.rel_path,
        imports=_collect_imports(ctx),
        pragmas=pragma_coverage(ctx.lines, ctx.tree),
        signatures=_collect_signatures(ctx),
        writer_classes=_collect_writer_classes(ctx),
    )


# ---------------------------------------------------------------------------
# the index
# ---------------------------------------------------------------------------


def _module_name(rel: Path) -> str:
    """Dotted module name (same scheme as :func:`lint._module_name`)."""
    parts = list(rel.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    elif len(parts) > 1:
        parts = parts[-2:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or rel.stem


class ProjectIndex:
    """Parse-once project model with a content-fingerprint cache.

    ``build()`` walks the given files; files whose sha256 matches the
    cache are restored (summary + raw findings) without parsing, the
    rest are parsed, summarized, and run through the per-file rules.
    ``parsed``/``reused`` counters expose the split for the warm-run
    acceptance test and the ``--graph`` dump.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        cache_path: Optional[str | Path] = None,
    ):
        self.root = Path(root) if root is not None else Path.cwd()
        self.cache_path = Path(cache_path) if cache_path else None
        self.summaries: Dict[str, ModuleSummary] = {}  # rel_path ->
        self.findings: Dict[str, List[Finding]] = {}  # raw, pre-pragma
        self.parsed = 0
        self.reused = 0
        self._cache = self._load_cache()
        self._dirty = False

    # -- cache I/O -----------------------------------------------------------

    def _load_cache(self) -> dict:
        if self.cache_path is None or not self.cache_path.is_file():
            return {}
        try:
            payload = json.loads(self.cache_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("version") != INDEX_CACHE_VERSION
        ):
            return {}
        files = payload.get("files")
        return files if isinstance(files, dict) else {}

    def save_cache(self) -> None:
        """Persist the current per-file state (no-op without a path).

        Entries for files outside this run's scope are kept as loaded,
        so a partial lint (one package, one file) never truncates the
        whole-project cache.
        """
        if self.cache_path is None or not self._dirty:
            return
        files: Dict[str, dict] = {
            rel: entry
            for rel, entry in self._cache.items()
            if rel not in self.summaries
            and all(k in entry for k in ("fingerprint", "summary", "findings"))
        }
        for rel in sorted(self.summaries):
            if rel in self._cache:
                files[rel] = {
                    "fingerprint": self._cache[rel]["fingerprint"],
                    "summary": self.summaries[rel].to_dict(),
                    "findings": [
                        _finding_to_cache(f) for f in self.findings[rel]
                    ],
                }
        payload = {"version": INDEX_CACHE_VERSION, "files": files}
        self.cache_path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # -- build ---------------------------------------------------------------

    def build(self, files: Sequence[Path], rules: Sequence[Rule]) -> None:
        """Index every file, reusing cache entries where sha256 matches.

        ``rules`` is the per-file rule set to evaluate on parsed files;
        the raw findings of *all* of them are cached so later runs can
        report any subset without reparsing.
        """
        for path in files:
            source = path.read_text(encoding="utf-8")
            fingerprint = hashlib.sha256(source.encode("utf-8")).hexdigest()
            try:
                rel = path.relative_to(self.root)
            except ValueError:
                rel = path
            rel_posix = rel.as_posix()
            cached = self._cache.get(rel_posix)
            if cached is not None and cached.get("fingerprint") == fingerprint:
                try:
                    summary = ModuleSummary.from_dict(cached["summary"])
                    findings = [
                        _finding_from_cache(rel_posix, d)
                        for d in cached["findings"]
                    ]
                except (KeyError, TypeError, ValueError):
                    cached = None  # malformed entry: fall through to parse
                else:
                    self.summaries[rel_posix] = summary
                    self.findings[rel_posix] = findings
                    self.reused += 1
                    continue
            tree = ast.parse(source, filename=str(path))
            module = _module_name(rel)
            ctx = ModuleContext(
                path=path,
                rel_path=rel_posix,
                module=module,
                tree=tree,
                lines=source.splitlines(),
                imports=ImportMap.collect(tree, module),
            )
            raw: List[Finding] = []
            for rule in rules:
                if rule.applies_to(ctx.module):
                    raw.extend(rule.check(ctx))
            self.summaries[rel_posix] = build_summary(ctx)
            self.findings[rel_posix] = raw
            self._cache[rel_posix] = {"fingerprint": fingerprint}
            self.parsed += 1
            self._dirty = True

    # -- views ---------------------------------------------------------------

    def by_module(self) -> Dict[str, ModuleSummary]:
        """``{dotted module name: summary}`` over the indexed files."""
        return {s.module: s for s in self.summaries.values()}

    def pragmas_for(self, rel_path: str) -> Dict[int, Tuple[str, ...]]:
        summary = self.summaries.get(rel_path)
        return summary.pragmas if summary is not None else {}


def _finding_to_cache(finding: Finding) -> dict:
    return {
        "rule": finding.rule_id,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "hint": finding.hint,
        "snippet": finding.snippet,
    }


def _finding_from_cache(rel_path: str, data: dict) -> Finding:
    return Finding(
        rule_id=data["rule"],
        path=rel_path,
        line=int(data["line"]),
        col=int(data["col"]),
        message=data["message"],
        hint=data["hint"],
        snippet=data["snippet"],
    )
