"""The reprolint rule set (R001–R013).

Each rule is a small AST or graph pass tailored to this codebase's
determinism contract: the golden-trace suite proves the engines'
decisions are byte-identical across kernels and worker counts, and
these rules make the coding patterns that could break that contract a
lint failure *before* they become a trace diff.

Rules are intentionally heuristic — they resolve imported names
through a per-module alias table and recognise the repo's own idioms
(set-typed attributes, score/ratio-named floats, ``metrics.*`` emit
sites) rather than attempting whole-program type inference.  A false
positive costs one ``sorted()`` / helper call or, for the
non-determinism rules only, a ``# reprolint: disable=Rxxx`` pragma;
a false negative costs a golden-trace bisection, so the rules lean
strict.

Two rule shapes coexist:

* **AST rules** implement :meth:`Rule.check` and see one parsed file
  at a time (cacheable per file: R001–R006, R008, R010, R012, R013);
* **graph rules** implement :meth:`Rule.check_index` and see the
  whole-program :class:`~repro.devtools.index.ProjectIndex` — module
  summaries, never trees — so they run at full strength on a warm
  cache (R007 kernel parity, R009 layering, R011 single-writer).

Adding a rule: subclass :class:`Rule`, set ``rule_id``/``title``/
``hint`` (and ``packages`` to scope it), implement :meth:`check` or
:meth:`check_index`, append it to :data:`RULES`, add good/bad
fixtures in ``tests/devtools/`` and a row to the table in
``docs/ARCHITECTURE.md`` §12.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

__all__ = [
    "Finding",
    "ModuleContext",
    "ImportMap",
    "Rule",
    "RULES",
    "DETERMINISM_RULES",
    "rule_table",
]


# ---------------------------------------------------------------------------
# model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    hint: str
    snippet: str  # stripped source line, part of the baseline fingerprint

    def fingerprint(self) -> str:
        """Line-number-free identity used by baseline files."""
        return f"{self.rule_id}:{self.path}:{self.snippet}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as written, or None for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ImportMap:
    """Alias table for resolving names back to their defining module."""

    aliases: dict[str, str] = field(default_factory=dict)

    @staticmethod
    def collect(tree: ast.AST, module: str) -> "ImportMap":
        aliases: dict[str, str] = {}
        package = module.rsplit(".", 1)[0] if "." in module else ""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else bound
                    aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    hops = module.split(".")
                    hops = hops[: len(hops) - node.level]
                    base = ".".join(hops + ([node.module] if node.module else []))
                    base = base or package
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    aliases[bound] = f"{base}.{alias.name}" if base else alias.name
        return ImportMap(aliases)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-resolved dotted name; raw spelling if the root is local."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        base = self.aliases.get(root)
        if base is None:
            return dotted
        return f"{base}.{rest}" if rest else base


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    rel_path: str  # repo-relative posix path, reported in findings
    module: str  # dotted module name ("repro.simulator.engine", "scripts.x")
    tree: ast.Module
    lines: list[str]
    imports: ImportMap

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if line - 1 < len(self.lines) else ""
        return Finding(rule.rule_id, self.rel_path, line, col, message, rule.hint, snippet)


class Rule:
    """Base class: one rule id, one fix hint, one AST pass."""

    rule_id: str = "R000"
    title: str = ""
    hint: str = ""
    #: Dotted module prefixes the rule applies to; None = every module.
    packages: Optional[tuple[str, ...]] = None
    #: Determinism rules admit no baseline entries and no pragmas.
    deterministic: bool = False

    def applies_to(self, module: str) -> bool:
        if self.packages is None:
            return True
        return any(module == p or module.startswith(p + ".") for p in self.packages)

    def check(self, ctx: ModuleContext) -> list[Finding]:
        return []

    def check_project(self, ctxs: Sequence[ModuleContext]) -> list[Finding]:
        """Cross-module checks over parsed trees (legacy hook)."""
        return []

    def check_index(self, index) -> list[Finding]:
        """Cross-module checks over a :class:`ProjectIndex`.

        Graph rules implement this instead of :meth:`check`; it runs
        once per lint invocation and consumes cached module summaries,
        so it works without reparsing on warm runs.
        """
        return []


def _index_finding(
    rule: "Rule",
    rel_path: str,
    line: int,
    col: int,
    message: str,
    snippet: str,
) -> Finding:
    """A finding built from summary data (no live ModuleContext)."""
    return Finding(rule.rule_id, rel_path, line, col, message, rule.hint, snippet)


DECISION_PACKAGES = (
    "repro.scheduling",
    "repro.simulator",
    "repro.localsched",
    "repro.migration",
    "repro.dynamiclevels",
    "repro.controlplane",
    "repro.obs",
    "repro.runner",
    "repro.sharding",
    "repro.serving",
    "repro.api",
    "repro.hardware",
    "scripts",
)


# ---------------------------------------------------------------------------
# R001 — wall-clock / entropy sources
# ---------------------------------------------------------------------------


class ClockEntropyRule(Rule):
    rule_id = "R001"
    title = "no wall-clock or entropy sources in library code"
    hint = (
        "measure elapsed time with time.perf_counter (monotonic) or the "
        "obs timing shims; derive identifiers from the run's seed, never "
        "from uuid/urandom"
    )
    deterministic = True

    #: Modules allowed to read the wall clock (the timing shims).
    allowed_modules = ("repro.obs.metrics",)

    banned = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.localtime",
            "time.gmtime",
            "time.monotonic",
            "time.monotonic_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
            "uuid.uuid1",
            "uuid.uuid4",
            "os.urandom",
        }
    )

    #: Whole modules banned by prefix — every function in them is an
    #: entropy source, so enumerate the module, not its members.
    banned_prefixes = ("secrets.",)

    def check(self, ctx: ModuleContext) -> list[Finding]:
        if ctx.module in self.allowed_modules:
            return []
        found = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                qual = ctx.imports.resolve(node.func)
                if qual is not None and (
                    qual in self.banned
                    or qual.startswith(self.banned_prefixes)
                ):
                    found.append(
                        ctx.finding(
                            self, node, f"call to nondeterministic source {qual}()"
                        )
                    )
        return found


# ---------------------------------------------------------------------------
# R002 — legacy global RNG
# ---------------------------------------------------------------------------


class GlobalRngRule(Rule):
    rule_id = "R002"
    title = "no global RNG (random.*, numpy.random module functions)"
    hint = (
        "thread an explicit numpy.random.Generator (from default_rng(seed) "
        "or SeedSequence.spawn) through the call path instead"
    )
    deterministic = True

    #: numpy.random attributes that construct explicit generators/streams
    #: (fine) rather than touching the legacy global state (banned).
    np_allowed = frozenset(
        {
            "default_rng",
            "Generator",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )

    def check(self, ctx: ModuleContext) -> list[Finding]:
        found = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.imports.resolve(node.func)
            if qual is None:
                continue
            if qual == "random" or qual.startswith("random."):
                found.append(
                    ctx.finding(
                        self, node, f"stdlib global-RNG call {qual}()"
                    )
                )
            elif qual.startswith("numpy.random."):
                leaf = qual.rsplit(".", 1)[1]
                if leaf not in self.np_allowed:
                    found.append(
                        ctx.finding(
                            self,
                            node,
                            f"legacy numpy global-RNG call {qual}()",
                        )
                    )
        return found


# ---------------------------------------------------------------------------
# R003 — default_rng() needs an explicit seed
# ---------------------------------------------------------------------------


class UnseededRngRule(Rule):
    rule_id = "R003"
    title = "default_rng() must receive an explicit seed"
    hint = "pass the run's seed (or a spawned SeedSequence): default_rng(seed)"
    deterministic = True

    def check(self, ctx: ModuleContext) -> list[Finding]:
        found = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.imports.resolve(node.func)
            if qual in ("numpy.random.default_rng", "default_rng") and not (
                node.args or node.keywords
            ):
                found.append(
                    ctx.finding(
                        self, node, "default_rng() seeded from OS entropy"
                    )
                )
        return found


# ---------------------------------------------------------------------------
# R004 — unordered iteration in decision/serialization paths
# ---------------------------------------------------------------------------

_SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)
_ORDER_CONSUMERS = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})


class UnsortedSetIterRule(Rule):
    rule_id = "R004"
    title = "no unordered set/dict.keys() iteration in decision paths"
    hint = (
        "wrap the iterable in sorted(...) — decision and serialization "
        "order must not depend on hash-table layout"
    )
    deterministic = True
    packages = DECISION_PACKAGES

    def check(self, ctx: ModuleContext) -> list[Finding]:
        set_names = self._set_bindings(ctx.tree)
        found = []
        for node in ast.walk(ctx.tree):
            exprs: list[ast.expr] = []
            if isinstance(node, ast.For):
                exprs.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                exprs.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                qual = ctx.imports.resolve(node.func)
                if qual in _ORDER_CONSUMERS or qual == "numpy.fromiter":
                    if node.args:
                        exprs.append(node.args[0])
            for expr in exprs:
                label = self._unordered(expr, set_names)
                if label:
                    found.append(
                        ctx.finding(
                            self,
                            node,
                            f"iteration over {label} leaks hash order into a "
                            "decision or serialization path",
                        )
                    )
        return found

    @staticmethod
    def _set_bindings(tree: ast.AST) -> frozenset[str]:
        """Identifiers (names and self-attributes) bound to sets."""

        def target_key(target: ast.expr) -> Optional[str]:
            if isinstance(target, ast.Name):
                return target.id
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return target.attr
            return None

        def setish_value(value: Optional[ast.expr]) -> bool:
            if isinstance(value, ast.Set):
                return True
            if isinstance(value, ast.Call):
                return _dotted(value.func) in ("set", "frozenset")
            return False

        def setish_annotation(ann: Optional[ast.expr]) -> bool:
            if ann is None:
                return False
            head = ann.value if isinstance(ann, ast.Subscript) else ann
            if isinstance(head, ast.Name):
                return head.id in _SET_ANNOTATIONS
            if isinstance(head, ast.Attribute):
                return head.attr in _SET_ANNOTATIONS
            return False

        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                if setish_value(node.value):
                    for target in node.targets:
                        key = target_key(target)
                        if key:
                            names.add(key)
            elif isinstance(node, ast.AnnAssign):
                if setish_annotation(node.annotation) or setish_value(node.value):
                    key = target_key(node.target)
                    if key:
                        names.add(key)
        return frozenset(names)

    @staticmethod
    def _unordered(expr: ast.expr, set_names: frozenset[str]) -> Optional[str]:
        """A human label when ``expr`` iterates in hash order, else None."""
        if isinstance(expr, ast.Set):
            return "a set literal"
        if isinstance(expr, ast.Call):
            callee = _dotted(expr.func)
            if callee in ("set", "frozenset"):
                return f"{callee}(...)"
            if isinstance(expr.func, ast.Attribute) and expr.func.attr == "keys":
                return ".keys()"
            return None
        if isinstance(expr, ast.Name) and expr.id in set_names:
            return f"set-typed variable {expr.id!r}"
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in set_names
        ):
            return f"set-typed attribute self.{expr.attr}"
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            left = UnsortedSetIterRule._unordered(expr.left, set_names)
            right = UnsortedSetIterRule._unordered(expr.right, set_names)
            return left or right
        return None


# ---------------------------------------------------------------------------
# R005 — float ==/!= on scoring expressions
# ---------------------------------------------------------------------------

_FLOAT_HINT = re.compile(
    r"(score|ratio|weight|slack|blend|epsilon|progress)", re.IGNORECASE
)
_FLOAT_CONSTS = frozenset(
    {"math.inf", "numpy.inf", "math.nan", "numpy.nan", "math.pi", "math.e"}
)


class FloatEqualityRule(Rule):
    rule_id = "R005"
    title = "no ==/!= on float-typed scoring expressions"
    hint = (
        "use floats_equal/floats_differ from repro.scheduling.constants "
        "(CAPACITY_EPSILON tolerance), or math.isinf/isnan for sentinels"
    )
    packages = ("repro.scheduling", "repro.simulator")

    def check(self, ctx: ModuleContext) -> list[Finding]:
        found = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            floatish = next(
                (o for o in operands if self._floatish(o, ctx.imports)), None
            )
            if floatish is not None:
                desc = _dotted(floatish) or ast.unparse(floatish)
                found.append(
                    ctx.finding(
                        self,
                        node,
                        f"exact float comparison on {desc!r} in a scoring path",
                    )
                )
        return found

    @classmethod
    def _floatish(cls, node: ast.expr, imports: ImportMap) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp):
            return cls._floatish(node.operand, imports)
        if isinstance(node, ast.Call):
            return _dotted(node.func) == "float"
        if isinstance(node, ast.Subscript):
            return cls._floatish(node.value, imports)
        if isinstance(node, (ast.Name, ast.Attribute)):
            qual = imports.resolve(node)
            if qual in _FLOAT_CONSTS:
                return True
            terminal = node.attr if isinstance(node, ast.Attribute) else node.id
            return bool(_FLOAT_HINT.search(terminal))
        return False


# ---------------------------------------------------------------------------
# R006 — mutable defaults / frozen-dataclass mutation
# ---------------------------------------------------------------------------

_MUTABLE_FACTORIES = frozenset(
    {
        "list",
        "dict",
        "set",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
    }
)


class MutableStateRule(Rule):
    rule_id = "R006"
    title = "no mutable default arguments; no frozen-dataclass backdoors"
    hint = (
        "default to None (or a field(default_factory=...)) and build the "
        "container inside the function; mutate frozen dataclasses only "
        "via object.__setattr__ inside __post_init__"
    )

    def check(self, ctx: ModuleContext) -> list[Finding]:
        found: list[Finding] = []

        def visit(node: ast.AST, func: Optional[str]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for default in [
                    *node.args.defaults,
                    *[d for d in node.args.kw_defaults if d is not None],
                ]:
                    if self._mutable(default, ctx.imports):
                        found.append(
                            ctx.finding(
                                self,
                                default,
                                f"mutable default argument in {node.name}() is "
                                "shared across calls",
                            )
                        )
                func = node.name
            elif isinstance(node, ast.Call):
                if ctx.imports.resolve(node.func) == "object.__setattr__":
                    if func != "__post_init__":
                        where = f"{func}()" if func else "module scope"
                        found.append(
                            ctx.finding(
                                self,
                                node,
                                "object.__setattr__ outside __post_init__ "
                                f"(in {where}) bypasses dataclass immutability",
                            )
                        )
            for child in ast.iter_child_nodes(node):
                visit(child, func)

        visit(ctx.tree, None)
        return found

    @staticmethod
    def _mutable(node: ast.expr, imports: ImportMap) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            return imports.resolve(node.func) in _MUTABLE_FACTORIES
        return False


# ---------------------------------------------------------------------------
# R007 — kernel signature parity (vectorpool vs refkernel/prunekernel)
# ---------------------------------------------------------------------------


class KernelParityRule(Rule):
    rule_id = "R007"
    title = "alternate-kernel decision surfaces must match VectorCluster"
    hint = (
        "keep VectorCluster.<name> and refkernel.naive_<name> / "
        "prunekernel.pruned_<name> parameter names, order and defaults "
        "identical — the golden-trace and kernel-equivalence suites "
        "compare the kernels call-for-call"
    )

    ref_module = "repro.simulator.refkernel"
    vec_module = "repro.simulator.vectorpool"
    vec_class = "VectorCluster"
    naive_prefix = "naive_"
    #: Every (module, function prefix, label) whose ``<prefix><name>``
    #: free functions mirror a ``VectorCluster.<name>`` method.
    kernel_modules: tuple[tuple[str, str, str], ...] = (
        (ref_module, naive_prefix, "refkernel"),
        ("repro.simulator.prunekernel", "pruned_", "prunekernel"),
    )

    def check_index(self, index) -> list[Finding]:
        modules = index.by_module()
        vec = modules.get(self.vec_module)
        if vec is None:
            return []  # partial lint run: nothing to compare against
        class_prefix = f"{self.vec_class}."
        methods = {
            name[len(class_prefix):]: info
            for name, info in vec.signatures.items()
            if name.startswith(class_prefix)
        }
        if not methods:
            return [
                _index_finding(
                    self, vec.rel_path, 1, 0,
                    f"class {self.vec_class} not found in {self.vec_module}",
                    f"class:{self.vec_class}",
                )
            ]
        found: list[Finding] = []
        for module, prefix, label in self.kernel_modules:
            ref = modules.get(module)
            if ref is None:
                continue  # partial lint run
            mirrors = {
                name[len(prefix):]: info
                for name, info in ref.signatures.items()
                if "." not in name
                and name.startswith(prefix)
                and not name[len(prefix):].startswith("_")
            }
            for name, info in sorted(mirrors.items()):
                snippet = f"def {prefix}{name}"
                method = methods.get(name)
                if method is None:
                    found.append(
                        _index_finding(
                            self, ref.rel_path, info["line"], 0,
                            f"{label}.{prefix}{name} has no "
                            f"{self.vec_class}.{name} counterpart",
                            snippet,
                        )
                    )
                    continue
                ref_sig = tuple(info["params"])
                vec_sig = tuple(method["params"])
                if ref_sig != vec_sig:
                    found.append(
                        _index_finding(
                            self, ref.rel_path, info["line"], 0,
                            f"signature drift on {name}: {label}.{prefix}{name}"
                            f"({', '.join(ref_sig)}) vs {self.vec_class}.{name}"
                            f"({', '.join(vec_sig)})",
                            snippet,
                        )
                    )
        return found


# ---------------------------------------------------------------------------
# R008 — metrics emit sites must use registered constants
# ---------------------------------------------------------------------------


class MetricNameRule(Rule):
    rule_id = "R008"
    title = "metric emit sites must use registered name constants"
    hint = (
        "define the name in repro.obs.names (and ALL_METRIC_NAMES) and "
        "emit via the constant, not an inline string literal"
    )

    kinds = frozenset({"counter", "gauge", "histogram", "timer"})
    exempt_modules = ("repro.obs.metrics", "repro.obs.names")

    def check(self, ctx: ModuleContext) -> list[Finding]:
        if ctx.module in self.exempt_modules:
            return []
        found = []
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.kinds
            ):
                continue
            receiver = _dotted(node.func.value)
            if receiver is None or "metrics" not in receiver.lower():
                continue
            if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
                node.args[0].value, str
            ):
                found.append(
                    ctx.finding(
                        self,
                        node,
                        f"inline metric name {node.args[0].value!r} at a "
                        f".{node.func.attr}() emit site",
                    )
                )
        return found


# ---------------------------------------------------------------------------
# R009 — architecture import layering (graph rule)
# ---------------------------------------------------------------------------


class ImportLayeringRule(Rule):
    rule_id = "R009"
    title = "module-level imports must follow the architecture DAG"
    hint = (
        "import strictly downward through the layers in "
        "repro.devtools.graphs.ARCH_LAYERS; break legitimate late-bound "
        "wiring with an `if TYPE_CHECKING:` guard or a function-scoped "
        "import, and record deliberate exceptions in "
        "MODULE_LAYER_OVERRIDES"
    )

    def check_index(self, index) -> list[Finding]:
        # Deferred import: graphs -> index -> rules would otherwise cycle.
        from repro.devtools.graphs import (
            build_edges,
            find_cycles,
            layering_violations,
        )

        edges = build_edges(index)
        found = [
            _index_finding(
                self,
                v["rel_path"],
                v["line"],
                v["col"],
                v["message"],
                v["snippet"],
            )
            for v in layering_violations(index, edges)
        ]
        modules = index.by_module()
        for cycle in find_cycles(index, edges):
            anchor = modules[cycle[0]]
            chain = " -> ".join([*cycle, cycle[0]])
            found.append(
                _index_finding(
                    self,
                    anchor.rel_path,
                    1,
                    0,
                    f"module-level import cycle: {chain}",
                    f"cycle:{'->'.join(cycle)}",
                )
            )
        return found


# ---------------------------------------------------------------------------
# R010 — async safety in repro.serving
# ---------------------------------------------------------------------------

#: Dotted prefixes whose calls block the event loop.
_BLOCKING_PREFIXES = (
    "subprocess.",
    "socket.",
    "urllib.",
    "requests.",
    "http.client.",
)
_BLOCKING_CALLS = frozenset(
    {"time.sleep", "os.system", "os.popen", "open", "input"}
)
_LOOP_FACTORIES = frozenset(
    {"asyncio.get_event_loop", "asyncio.get_running_loop", "asyncio.new_event_loop"}
)


class AsyncSafetyRule(Rule):
    rule_id = "R010"
    title = "serving coroutines must stay on the virtual clock"
    hint = (
        "inside async code use `await clock.sleep(dt)` / `clock.now()` "
        "(repro.serving.VirtualClock) instead of blocking calls, bare "
        "asyncio.sleep, or loop.time(); await every coroutine you create"
    )
    packages = ("repro.serving",)

    def check(self, ctx: ModuleContext) -> list[Finding]:
        found: list[Finding] = []
        async_defs = self._async_defs(ctx.tree)
        for fn in self._functions(ctx.tree):
            if isinstance(fn, ast.AsyncFunctionDef):
                found.extend(self._check_async_body(ctx, fn))
            found.extend(self._check_unawaited(ctx, fn, async_defs))
        return found

    @staticmethod
    def _functions(tree: ast.Module) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        return [
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    @staticmethod
    def _async_defs(tree: ast.Module) -> frozenset[str]:
        """Names of every async def in the module (incl. methods)."""
        return frozenset(
            node.name
            for node in ast.walk(tree)
            if isinstance(node, ast.AsyncFunctionDef)
        )

    @staticmethod
    def _own_statements(fn: ast.AST) -> Iterable[ast.AST]:
        """Walk a function body without descending into nested defs."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_async_body(
        self, ctx: ModuleContext, fn: ast.AsyncFunctionDef
    ) -> list[Finding]:
        found: list[Finding] = []
        # Bindings first: the statement walk is unordered, so collect
        # every `loop = asyncio.get_event_loop()` name before looking
        # at calls.
        loop_names: set[str] = set()
        for node in self._own_statements(fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if ctx.imports.resolve(node.value.func) in _LOOP_FACTORIES:
                    loop_names.update(
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    )
        for node in self._own_statements(fn):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.imports.resolve(node.func)
            if qual in _BLOCKING_CALLS or (
                qual is not None and qual.startswith(_BLOCKING_PREFIXES)
            ):
                found.append(
                    ctx.finding(
                        self,
                        node,
                        f"blocking call {qual}() inside async def "
                        f"{fn.name} stalls the event loop",
                    )
                )
            elif qual == "asyncio.sleep" and not self._is_zero_sleep(node):
                found.append(
                    ctx.finding(
                        self,
                        node,
                        "bare asyncio.sleep bypasses VirtualClock "
                        f"in async def {fn.name}",
                    )
                )
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "time":
                receiver = node.func.value
                is_loop = (
                    isinstance(receiver, ast.Name) and receiver.id in loop_names
                ) or (
                    isinstance(receiver, ast.Call)
                    and ctx.imports.resolve(receiver.func) in _LOOP_FACTORIES
                )
                if is_loop:
                    found.append(
                        ctx.finding(
                            self,
                            node,
                            "loop.time() bypasses VirtualClock "
                            f"in async def {fn.name}",
                        )
                    )
        return found

    @staticmethod
    def _is_zero_sleep(node: ast.Call) -> bool:
        """``asyncio.sleep(0)`` — the sanctioned cooperative yield."""
        return (
            len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == 0
        )

    def _check_unawaited(
        self,
        ctx: ModuleContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        async_defs: frozenset[str],
    ) -> list[Finding]:
        found: list[Finding] = []
        for node in self._own_statements(fn):
            if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
                continue
            call = node.value
            name: Optional[str] = None
            if isinstance(call.func, ast.Name):
                name = call.func.id
            elif (
                isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == "self"
            ):
                name = call.func.attr
            if name in async_defs:
                found.append(
                    ctx.finding(
                        self,
                        node,
                        f"coroutine {name}() created but never awaited "
                        "(the call does nothing)",
                    )
                )
        return found


# ---------------------------------------------------------------------------
# R011 — single-writer scheduler invariant (graph rule)
# ---------------------------------------------------------------------------


class SingleWriterRule(Rule):
    rule_id = "R011"
    title = "controller state has exactly one writer task"
    hint = (
        "route every controller mutation through the annotated scheduler "
        "loop (mark it `# reprolint: writer`); other tasks enqueue work "
        "items instead of touching self.controllers directly"
    )
    packages = ("repro.serving",)

    def check_index(self, index) -> list[Finding]:
        found: list[Finding] = []
        for summary in sorted(
            index.by_module().values(), key=lambda s: s.module
        ):
            if not self.applies_to(summary.module):
                continue
            for cls_name, cls in sorted(summary.writer_classes.items()):
                found.extend(self._check_class(summary, cls_name, cls))
        return found

    def _check_class(self, summary, cls_name: str, cls: dict) -> list[Finding]:
        methods: dict = cls["methods"]
        writers = {n for n, m in methods.items() if m.get("writer")}
        # __init__ builds the fleet before any task exists: implicit
        # setup-phase writer, but it never satisfies the annotation
        # requirement on its own.
        setup_closure = self._closure({"__init__"}, methods)
        writer_closure = self._closure(writers, methods)
        mutating = {
            name: m for name, m in methods.items() if m.get("mutations")
        }
        runtime_mutators = {
            name for name in mutating if name not in setup_closure
        }
        found: list[Finding] = []
        if runtime_mutators and not writers:
            found.append(
                _index_finding(
                    self,
                    summary.rel_path,
                    cls["line"],
                    0,
                    f"class {cls_name} mutates controller state but no "
                    "method is annotated `# reprolint: writer`",
                    f"class:{cls_name}",
                )
            )
            return found
        for name in sorted(runtime_mutators):
            if name in writer_closure:
                continue
            for mutation in mutating[name]["mutations"]:
                found.append(
                    _index_finding(
                        self,
                        summary.rel_path,
                        mutation["line"],
                        mutation["col"],
                        f"{cls_name}.{name} {mutation['desc']} outside the "
                        "single-writer scheduler closure",
                        mutation["snippet"],
                    )
                )
        return found

    @staticmethod
    def _closure(roots: set[str], methods: dict) -> set[str]:
        """Methods reachable from ``roots`` via ``self.<m>()`` calls."""
        seen = set(roots) & set(methods)
        frontier = list(seen)
        while frontier:
            name = frontier.pop()
            for callee in methods.get(name, {}).get("calls", ()):
                if callee in methods and callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen


# ---------------------------------------------------------------------------
# R012 — process-boundary hygiene (executor submissions)
# ---------------------------------------------------------------------------

_EXECUTOR_CONSTRUCTORS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "ProcessPoolExecutor",
        "multiprocessing.Pool",
    }
)
_NONTRANSPORTABLE_CONSTRUCTORS = frozenset(
    {
        "open",
        "numpy.random.default_rng",
        "default_rng",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.SeedSequence",
        "socket.socket",
    }
)


class ProcessBoundaryRule(Rule):
    rule_id = "R012"
    title = "executor submissions must be module-level + JSON-primitive"
    hint = (
        "submit a module-level worker function with JSON-primitive "
        "payload dicts (RunSpec.to_dict() style); reconstruct RNGs and "
        "open files inside the worker from seeds/paths"
    )
    packages = ("repro.sharding", "repro.runner")

    def check(self, ctx: ModuleContext) -> list[Finding]:
        module_defs = {
            node.name
            for node in ctx.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        found: list[Finding] = []
        for fn in [
            n
            for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]:
            found.extend(self._check_scope(ctx, fn, module_defs))
        return found

    def _check_scope(
        self,
        ctx: ModuleContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        module_defs: set[str],
    ) -> list[Finding]:
        executors: set[str] = set()
        tainted: dict[str, str] = {}  # name -> what it holds
        nested_defs = {
            node.name
            for node in ast.walk(fn)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not fn
        }
        found: list[Finding] = []

        def note_binding(name: str, value: ast.expr) -> None:
            if not isinstance(value, ast.Call):
                return
            qual = ctx.imports.resolve(value.func)
            if qual in _EXECUTOR_CONSTRUCTORS:
                executors.add(name)
            elif qual in _NONTRANSPORTABLE_CONSTRUCTORS:
                tainted[name] = qual

        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        note_binding(target.id, node.value)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        note_binding(item.optional_vars.id, item.context_expr)
            elif isinstance(node, ast.Call):
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("submit", "map", "apply_async")
                    and isinstance(func.value, ast.Name)
                    and func.value.id in executors
                ):
                    continue
                if not node.args:
                    continue
                target, *payload = node.args
                found.extend(
                    self._check_callable(ctx, node, target, module_defs, nested_defs)
                )
                for arg in [*payload, *[k.value for k in node.keywords]]:
                    found.extend(self._check_payload(ctx, node, arg, tainted))
        return found

    def _check_callable(
        self,
        ctx: ModuleContext,
        call: ast.Call,
        target: ast.expr,
        module_defs: set[str],
        nested_defs: set[str],
    ) -> list[Finding]:
        if isinstance(target, ast.Lambda):
            return [
                ctx.finding(
                    self,
                    call,
                    "lambda submitted across the process boundary is not "
                    "importable by the worker",
                )
            ]
        if isinstance(target, ast.Name):
            if target.id in nested_defs and target.id not in module_defs:
                return [
                    ctx.finding(
                        self,
                        call,
                        f"nested function {target.id}() submitted across the "
                        "process boundary; move it to module level",
                    )
                ]
            return []
        if isinstance(target, ast.Attribute):
            desc = _dotted(target) or "a bound method"
            return [
                ctx.finding(
                    self,
                    call,
                    f"{desc} submitted across the process boundary; submit a "
                    "module-level function instead of a bound method",
                )
            ]
        return []

    def _check_payload(
        self,
        ctx: ModuleContext,
        call: ast.Call,
        arg: ast.expr,
        tainted: dict[str, str],
    ) -> list[Finding]:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and node.id in tainted:
                return [
                    ctx.finding(
                        self,
                        call,
                        f"payload carries {tainted[node.id]}() handle "
                        f"{node.id!r} across the process boundary; pass "
                        "seeds/paths and rebuild in the worker",
                    )
                ]
            if isinstance(node, ast.Call):
                qual = ctx.imports.resolve(node.func)
                if qual in _NONTRANSPORTABLE_CONSTRUCTORS:
                    return [
                        ctx.finding(
                            self,
                            call,
                            f"payload constructs {qual}() inline across the "
                            "process boundary; pass seeds/paths and rebuild "
                            "in the worker",
                        )
                    ]
        return []


# ---------------------------------------------------------------------------
# R013 — determinism taint: wall clock -> replayable artifacts
# ---------------------------------------------------------------------------


class DeterminismTaintRule(Rule):
    rule_id = "R013"
    title = "wall-clock values must not reach replayable artifacts"
    hint = (
        "decision logs, audit logs, checkpoints and fingerprint digests "
        "must be functions of seeds and virtual time only; keep "
        "perf_counter telemetry in metrics/report fields that replay "
        "ignores, or drop it before persisting"
    )
    packages = DECISION_PACKAGES

    def check(self, ctx: ModuleContext) -> list[Finding]:
        from repro.devtools.taint import wallclock_taint

        found: list[Finding] = []
        for sink in wallclock_taint(ctx.tree, ctx.imports.resolve):
            snippet = (
                ctx.lines[sink.line - 1].strip()
                if sink.line - 1 < len(ctx.lines)
                else ""
            )
            found.append(
                Finding(
                    self.rule_id,
                    ctx.rel_path,
                    sink.line,
                    sink.col,
                    f"wall-clock-derived value flows into {sink.description}",
                    self.hint,
                    snippet,
                )
            )
        return found


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

RULES: tuple[Rule, ...] = (
    ClockEntropyRule(),
    GlobalRngRule(),
    UnseededRngRule(),
    UnsortedSetIterRule(),
    FloatEqualityRule(),
    MutableStateRule(),
    KernelParityRule(),
    MetricNameRule(),
    ImportLayeringRule(),
    AsyncSafetyRule(),
    SingleWriterRule(),
    ProcessBoundaryRule(),
    DeterminismTaintRule(),
)

DETERMINISM_RULES: frozenset[str] = frozenset(
    r.rule_id for r in RULES if r.deterministic
)


def rule_table() -> list[tuple[str, str, str]]:
    """``(id, title, hint)`` rows, e.g. for the docs table."""
    return [(r.rule_id, r.title, r.hint) for r in RULES]
