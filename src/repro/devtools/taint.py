"""Intra-module determinism taint analysis for reprolint (R013).

Wall-clock reads (``time.perf_counter`` and friends) are legal in
decision packages *as telemetry* — the contract (PR 8/9, CONTRIBUTING
invariant 5) is that their values never reach a *replayable artifact*:
decision logs, audit logs, checkpoints, or fingerprint inputs.  This
module tracks that flow within one file:

* **sources** — calls to the wall-clock family (``perf_counter``,
  ``perf_counter_ns``, ``process_time``, ``monotonic``, …);
* **propagation** — assignment, arithmetic, comparisons, f-strings,
  container literals, subscript stores (tainting the container),
  attribute stores on ``self``, and calls whose argument or receiver
  is tainted;
* **function summaries** — a fixpoint over the module's own functions
  so taint flows through helpers: a function returning a tainted value
  taints its call sites, and a tainted argument taints the callee's
  parameter (which may then hit a sink inside the callee);
* **sinks** — ``.append``/``.write`` on checkpoint-like receivers,
  ``.append`` on ``decision_log``/``audit_log``, ``.update`` on a
  hashlib digest, ``.record`` on recorder-like receivers, and calls to
  in-module functions that themselves append to a decision/audit log.

The analysis is deliberately intra-module and name-based: it trades
soundness-in-the-large for zero-configuration precision on this
codebase's idioms, and every finding it raises is a value that really
did originate at a wall-clock read.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["TaintSink", "wallclock_taint"]

#: Resolved call targets that produce wall-clock-derived values.
WALL_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
)

#: Receiver names whose ``.append`` is a replayable decision artifact.
LOG_RECEIVERS = frozenset({"decision_log", "audit_log"})

#: Substrings marking a receiver as checkpoint-like.
CHECKPOINT_MARKERS = ("checkpoint", "ckpt")

#: Constructor targets producing a fingerprint digest (``.update`` sink).
DIGEST_CONSTRUCTORS = frozenset(
    {"hashlib.sha256", "hashlib.sha1", "hashlib.md5", "hashlib.blake2b",
     "hashlib.blake2s", "sha256", "sha1", "md5", "blake2b", "blake2s"}
)


@dataclass(frozen=True)
class TaintSink:
    """One tainted value reaching a replayable artifact."""

    line: int
    col: int
    description: str


@dataclass
class _FunctionInfo:
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: Tuple[str, ...]
    tainted_params: Set[str] = field(default_factory=set)
    returns_tainted: bool = False
    is_logger: bool = False  # body appends to a decision/audit log


def _collect_functions(tree: ast.Module) -> Dict[str, _FunctionInfo]:
    """Module functions, class methods, and nested defs by lookup key.

    Bare-name calls resolve via the simple name; ``self.x()`` calls
    resolve via the simple name too (methods are registered under both
    ``Cls.meth`` and ``meth`` when unambiguous).
    """
    out: Dict[str, _FunctionInfo] = {}

    def params_of(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Tuple[str, ...]:
        a = fn.args
        return tuple(
            arg.arg for arg in [*a.posonlyargs, *a.args, *a.kwonlyargs]
        )

    def register(fn, qual: str) -> None:
        info = _FunctionInfo(qual, fn, params_of(fn))
        out.setdefault(qual, info)
        simple = fn.name
        # simple-name alias for call resolution; first wins (ambiguity
        # just loses precision, never soundness of reported findings)
        out.setdefault(simple, info)

    def visit(body: Sequence[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}" if prefix else node.name
                register(node, qual)
                visit(node.body, f"{qual}.")
            elif isinstance(node, ast.ClassDef):
                visit(node.body, f"{node.name}.")

    visit(tree.body, "")
    return out


def _is_logger(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Does this function append to a decision/audit log receiver?"""
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "append"
            and _terminal_attr(node.func.value) in LOG_RECEIVERS
        ):
            return True
    return False


def _terminal_attr(node: ast.expr) -> Optional[str]:
    """Last name component of a receiver: ``self.decision_log`` -> that."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _target_key(node: ast.expr) -> Optional[str]:
    """Assignment-target key: local name or ``self.attr``."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


class _FunctionAnalysis:
    """One forward pass over a function body with a taint environment."""

    def __init__(
        self,
        info: _FunctionInfo,
        functions: Dict[str, _FunctionInfo],
        resolve,
        emit: bool,
    ):
        self.info = info
        self.functions = functions
        self.resolve = resolve  # dotted resolution via ImportMap
        self.emit = emit
        self.tainted: Set[str] = set(info.tainted_params)
        self.digests: Set[str] = set()  # names bound to hashlib digests
        self.returns_tainted = False
        self.sinks: List[TaintSink] = []
        self.callee_taints: List[Tuple[str, str]] = []  # (qual, param)

    # -- expression taint ----------------------------------------------------

    def expr_tainted(self, node: Optional[ast.expr]) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            key = _target_key(node)
            if key is not None and key in self.tainted:
                return True
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Call):
            return self.call_tainted(node)
        if isinstance(node, ast.BinOp):
            return self.expr_tainted(node.left) or self.expr_tainted(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.expr_tainted(node.operand)
        if isinstance(node, ast.Compare):
            return self.expr_tainted(node.left) or any(
                self.expr_tainted(c) for c in node.comparators
            )
        if isinstance(node, ast.BoolOp):
            return any(self.expr_tainted(v) for v in node.values)
        if isinstance(node, ast.IfExp):
            return self.expr_tainted(node.body) or self.expr_tainted(node.orelse)
        if isinstance(node, ast.JoinedStr):
            return any(
                self.expr_tainted(v.value)
                for v in node.values
                if isinstance(v, ast.FormattedValue)
            )
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return any(self.expr_tainted(e) for e in node.elts)
        if isinstance(node, ast.Dict):
            return any(
                self.expr_tainted(v) for v in [*node.keys, *node.values]
            )
        if isinstance(node, ast.Subscript):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Starred):
            return self.expr_tainted(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return any(
                self.expr_tainted(gen.iter) for gen in node.generators
            ) or self.expr_tainted(node.elt)
        if isinstance(node, ast.DictComp):
            return any(
                self.expr_tainted(gen.iter) for gen in node.generators
            ) or self.expr_tainted(node.value)
        if isinstance(node, ast.Await):
            return self.expr_tainted(node.value)
        return False

    def call_tainted(self, node: ast.Call) -> bool:
        dotted = self.resolve(node.func)
        if dotted in WALL_SOURCES:
            return True
        callee = self._callee_info(node)
        if callee is not None and callee.returns_tainted:
            return True
        # unknown call: tainted receiver or argument taints the result
        # (e.g. record.get("wall_s"), round(wall, 3), str(wall))
        if isinstance(node.func, ast.Attribute) and self.expr_tainted(
            node.func.value
        ):
            return True
        return any(
            self.expr_tainted(a)
            for a in [*node.args, *[k.value for k in node.keywords]]
        )

    def _callee_info(self, node: ast.Call) -> Optional[_FunctionInfo]:
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            name = func.attr
        if name is None:
            return None
        info = self.functions.get(name)
        if info is not None and info.node is self.info.node:
            return None  # direct recursion: nothing new to learn
        return info

    # -- statements ----------------------------------------------------------

    def run(self) -> None:
        self._visit_body(self.info.node.body)

    def _visit_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._check_calls(stmt.value)
            tainted = self.expr_tainted(stmt.value)
            digest = self._is_digest_ctor(stmt.value)
            for target in stmt.targets:
                self._assign(target, tainted, digest)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._check_calls(stmt.value)
                self._assign(
                    stmt.target,
                    self.expr_tainted(stmt.value),
                    self._is_digest_ctor(stmt.value),
                )
        elif isinstance(stmt, ast.AugAssign):
            self._check_calls(stmt.value)
            if self.expr_tainted(stmt.value):
                self._assign(stmt.target, True, False)
        elif isinstance(stmt, ast.Return):
            self._check_calls(stmt.value)
            if self.expr_tainted(stmt.value):
                self.returns_tainted = True
        elif isinstance(stmt, ast.Expr):
            self._check_calls(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_calls(stmt.iter)
            if self.expr_tainted(stmt.iter):
                self._assign(stmt.target, True, False)
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.While, ast.If)):
            self._check_calls(stmt.test)
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check_calls(item.context_expr)
            self._visit_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._visit_body(stmt.body)
            for handler in stmt.handlers:
                self._visit_body(handler.body)
            self._visit_body(stmt.orelse)
            self._visit_body(stmt.finalbody)
        # nested defs are analyzed as their own functions

    def _assign(self, target: ast.expr, tainted: bool, digest: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, tainted, digest)
            return
        if isinstance(target, ast.Subscript):
            # record["wall_s"] = wall  — the whole container is tainted
            key = _target_key(target.value)
            if tainted and key is not None:
                self.tainted.add(key)
            return
        key = _target_key(target)
        if key is None:
            return
        if digest:
            self.digests.add(key)
        if tainted:
            self.tainted.add(key)
        else:
            self.tainted.discard(key)

    def _is_digest_ctor(self, node: Optional[ast.expr]) -> bool:
        return (
            isinstance(node, ast.Call)
            and self.resolve(node.func) in DIGEST_CONSTRUCTORS
        )

    # -- sinks and interprocedural edges -------------------------------------

    def _check_calls(self, expr: Optional[ast.expr]) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._check_call(node)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        args = [*node.args, *[k.value for k in node.keywords]]
        any_tainted = any(self.expr_tainted(a) for a in args)

        if isinstance(func, ast.Attribute):
            receiver = func.value
            terminal = _terminal_attr(receiver)
            if func.attr == "append" and any_tainted:
                if terminal in LOG_RECEIVERS:
                    self._sink(node, f"{terminal}.append")
                    return
                if terminal is not None and any(
                    m in terminal.lower() for m in CHECKPOINT_MARKERS
                ):
                    self._sink(node, f"{terminal}.append (checkpoint)")
                    return
            if func.attr == "write" and any_tainted and terminal is not None:
                if any(m in terminal.lower() for m in CHECKPOINT_MARKERS):
                    self._sink(node, f"{terminal}.write (checkpoint)")
                    return
            if (
                func.attr == "update"
                and any_tainted
                and isinstance(receiver, ast.Name)
                and receiver.id in self.digests
            ):
                self._sink(node, f"{receiver.id}.update (fingerprint digest)")
                return
            if (
                func.attr == "record"
                and any_tainted
                and terminal is not None
                and "recorder" in terminal.lower()
            ):
                self._sink(node, f"{terminal}.record")
                return

        callee = self._callee_info(node)
        if callee is not None:
            if callee.is_logger and any_tainted:
                self._sink(node, f"{callee.qualname}() (appends to decision/audit log)")
                return
            # positional args -> parameter taint for the fixpoint
            offset = 0
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and callee.params
                and callee.params[0] == "self"
            ):
                offset = 1
            for i, arg in enumerate(node.args):
                if self.expr_tainted(arg) and i + offset < len(callee.params):
                    self.callee_taints.append(
                        (callee.qualname, callee.params[i + offset])
                    )
            for kw in node.keywords:
                if kw.arg is not None and self.expr_tainted(kw.value):
                    if kw.arg in callee.params:
                        self.callee_taints.append((callee.qualname, kw.arg))

    def _sink(self, node: ast.Call, what: str) -> None:
        if self.emit:
            self.sinks.append(
                TaintSink(
                    line=node.lineno,
                    col=node.col_offset,
                    description=what,
                )
            )


def wallclock_taint(tree: ast.Module, resolve) -> List[TaintSink]:
    """All wall-clock-to-artifact flows in one module.

    ``resolve`` maps an expression to its dotted import target (the
    rule passes ``ctx.imports.resolve``).  Runs the per-function
    analyses to a fixpoint over ``returns_tainted`` and parameter
    taint, then one emitting pass to collect sinks.
    """
    functions = _collect_functions(tree)
    infos = {id(info.node): info for info in functions.values()}
    for info in infos.values():
        info.is_logger = _is_logger(info.node)

    changed = True
    rounds = 0
    while changed and rounds < 20:
        changed = False
        rounds += 1
        for info in infos.values():
            run = _FunctionAnalysis(info, functions, resolve, emit=False)
            run.run()
            if run.returns_tainted and not info.returns_tainted:
                info.returns_tainted = True
                changed = True
            for qual, param in run.callee_taints:
                target = functions.get(qual)
                if target is not None and param not in target.tainted_params:
                    target.tainted_params.add(param)
                    changed = True

    sinks: List[TaintSink] = []
    for info in infos.values():
        run = _FunctionAnalysis(info, functions, resolve, emit=True)
        run.run()
        sinks.extend(run.sinks)
    return sorted(sinks, key=lambda s: (s.line, s.col, s.description))
