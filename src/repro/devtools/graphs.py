"""Architecture DAG and import-graph analysis for reprolint (R009).

The repository's layering contract, refined from the coarse picture in
``docs/ARCHITECTURE.md`` (core/workload → simulator/scheduling →
oversub/sharding → api/serving → cli) down to the real package set.
Every package is assigned an integer rank; a module-level import from
package A to package B is legal only when B sits *strictly below* A
(or both live in the same package).  Function-scoped ("deferred") and
``if TYPE_CHECKING:`` imports are exempt — they are the sanctioned
cycle-breakers for late-bound wiring — but module-level back-edges and
import cycles are findings.

Two modules intentionally live above their home package and carry
explicit overrides rather than silent exemptions: ``repro.core.facade``
(the kitchen-sink convenience surface re-exporting simulator/analysis
types) and ``repro.obs.audit`` (the cross-layer audit fingerprint that
hashes scheduler and simulator state).  The root ``repro`` package
``__init__`` is the public re-export surface and is exempt outright.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.devtools.index import ImportRecord, ModuleSummary, ProjectIndex

__all__ = [
    "ARCH_LAYERS",
    "MODULE_LAYER_OVERRIDES",
    "EXEMPT_MODULES",
    "ImportEdge",
    "layer_rank",
    "module_rank",
    "build_edges",
    "layering_violations",
    "find_cycles",
    "graph_payload",
]

#: The architecture DAG, bottom (imported by everyone) to top.  Rank is
#: the tuple index; an import must point strictly downward.
ARCH_LAYERS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("foundation", ("core",)),
    ("substrate", ("hardware", "workload", "obs")),
    ("placement", ("localsched",)),
    ("policy", ("scheduling", "perfmodel")),
    ("engine", ("simulator", "controlplane")),
    ("models", ("analysis", "dynamiclevels", "migration")),
    ("runner", ("runner",)),
    ("oversub", ("oversub",)),
    ("sharding", ("sharding",)),
    ("api", ("api",)),
    ("surface", ("serving", "bench", "devtools")),
    ("cli", ("cli",)),
    ("entry", ("__main__",)),
)

#: Modules whose *import behavior* belongs to a higher band than their
#: home package.  Keep this list short and justified — each entry is an
#: architectural decision, not an escape hatch.
MODULE_LAYER_OVERRIDES: Dict[str, str] = {
    # Convenience facade: one-stop re-export of workload+simulator+
    # analysis for notebooks; sits beside the api band by design.
    "repro.core.facade": "api",
    # Audit fingerprints hash live scheduler/simulator state, so the
    # module reaches across layers on purpose (read-only).
    "repro.obs.audit": "api",
}

#: Modules excluded from layering entirely (public re-export roots).
EXEMPT_MODULES = frozenset({"repro"})

_PACKAGE_RANK: Dict[str, int] = {
    pkg: rank
    for rank, (_name, pkgs) in enumerate(ARCH_LAYERS)
    for pkg in pkgs
}
_LAYER_RANK: Dict[str, int] = {
    name: rank for rank, (name, _pkgs) in enumerate(ARCH_LAYERS)
}


class ImportEdge:
    """A module-level import edge in the project graph."""

    __slots__ = ("source", "target", "record")

    def __init__(self, source: str, target: str, record: ImportRecord):
        self.source = source
        self.target = target
        self.record = record

    def to_dict(self) -> dict:
        return {
            "from": self.source,
            "to": self.target,
            "line": self.record.line,
            "deferred": self.record.deferred,
            "type_checking": self.record.type_checking,
        }


def _package_of(module: str) -> Optional[str]:
    """Second dotted component of a ``repro.*`` module, else ``None``."""
    if module == "repro" or not module.startswith("repro."):
        return None
    return module.split(".")[1]


def layer_rank(layer_name: str) -> int:
    return _LAYER_RANK[layer_name]


def module_rank(module: str) -> Optional[int]:
    """Layer rank of a module, honoring per-module overrides."""
    override = MODULE_LAYER_OVERRIDES.get(module)
    if override is not None:
        return _LAYER_RANK[override]
    package = _package_of(module)
    if package is None:
        return None
    return _PACKAGE_RANK.get(package)


def _resolve_target(target: str, modules: Dict[str, ModuleSummary]) -> Optional[str]:
    """Map an import target onto an indexed module, if it is one.

    ``from repro.oversub.controller import X`` targets the module
    itself; ``from repro.oversub import controller`` targets the
    package ``__init__`` — both resolve as long as the file is indexed.
    """
    if target in modules:
        return target
    head = target.rsplit(".", 1)[0] if "." in target else None
    if head and head in modules:
        return head
    return None


def build_edges(index: ProjectIndex) -> List[ImportEdge]:
    """All intra-project import edges (including deferred/guarded)."""
    modules = index.by_module()
    edges: List[ImportEdge] = []
    for module, summary in sorted(modules.items()):
        for record in summary.imports:
            resolved = _resolve_target(record.target, modules)
            if resolved is not None and resolved != module:
                edges.append(ImportEdge(module, resolved, record))
    return edges


def layering_violations(
    index: ProjectIndex, edges: Optional[Sequence[ImportEdge]] = None
) -> List[dict]:
    """Back-edges and unknown packages in the module-level graph.

    Returns finding payloads ``{module, rel_path, line, col, snippet,
    message}`` — the R009 rule turns them into :class:`Finding`s.
    """
    if edges is None:
        edges = build_edges(index)
    modules = index.by_module()
    violations: List[dict] = []

    seen_unknown: set = set()
    for module in sorted(modules):
        if module in EXEMPT_MODULES or not module.startswith("repro."):
            continue
        package = _package_of(module)
        if package is not None and package not in _PACKAGE_RANK:
            if package not in seen_unknown:
                seen_unknown.add(package)
                violations.append(
                    {
                        "module": module,
                        "rel_path": modules[module].rel_path,
                        "line": 1,
                        "col": 0,
                        "snippet": f"package:{package}",
                        "message": (
                            f"package 'repro.{package}' is not in the "
                            "architecture DAG (devtools/graphs.py "
                            "ARCH_LAYERS); place it in a layer"
                        ),
                    }
                )

    for edge in edges:
        if edge.record.deferred or edge.record.type_checking:
            continue  # sanctioned late-bound wiring
        if edge.source in EXEMPT_MODULES:
            continue
        src_rank = module_rank(edge.source)
        dst_rank = module_rank(edge.target)
        if src_rank is None or dst_rank is None:
            continue
        src_pkg = _package_of(edge.source)
        dst_pkg = _package_of(edge.target)
        if src_pkg == dst_pkg and src_pkg is not None:
            continue
        if dst_rank < src_rank:
            continue
        summary = index.by_module()[edge.source]
        direction = "same-rank" if dst_rank == src_rank else "upward"
        violations.append(
            {
                "module": edge.source,
                "rel_path": summary.rel_path,
                "line": edge.record.line,
                "col": edge.record.col,
                "snippet": edge.record.snippet,
                "message": (
                    f"{direction} import {edge.source} -> {edge.target} "
                    f"violates the architecture DAG "
                    f"(rank {src_rank} -> {dst_rank}); move the import "
                    "under TYPE_CHECKING or defer it into the function "
                    "that needs it, or fix the layering"
                ),
            }
        )
    return violations


def find_cycles(
    index: ProjectIndex, edges: Optional[Sequence[ImportEdge]] = None
) -> List[List[str]]:
    """Strongly connected components (size > 1) of module-level imports.

    Ranks already forbid cross-package cycles; this catches the case
    ranks cannot see — a cycle between modules of the *same* package.
    Iterative Tarjan, deterministic ordering.
    """
    if edges is None:
        edges = build_edges(index)
    graph: Dict[str, List[str]] = {}
    for edge in edges:
        if edge.record.deferred or edge.record.type_checking:
            continue
        graph.setdefault(edge.source, []).append(edge.target)
        graph.setdefault(edge.target, [])
    for targets in graph.values():
        targets.sort()

    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: set = set()
    stack: List[str] = []
    counter = [0]
    sccs: List[List[str]] = []

    for root in sorted(graph):
        if root in index_of:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index_of[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = graph[node]
            advanced = False
            while child_i < len(children):
                child = children[child_i]
                child_i += 1
                if child not in index_of:
                    work[-1] = (node, child_i)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                scc: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1:
                    sccs.append(sorted(scc))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sorted(sccs)


def graph_payload(index: ProjectIndex) -> dict:
    """The ``repro lint --graph`` debug dump (JSON-ready)."""
    edges = build_edges(index)
    modules = index.by_module()
    return {
        "version": 1,
        "layers": [
            {"rank": rank, "name": name, "packages": list(pkgs)}
            for rank, (name, pkgs) in enumerate(ARCH_LAYERS)
        ],
        "overrides": dict(MODULE_LAYER_OVERRIDES),
        "modules": {
            module: {
                "path": summary.rel_path,
                "package": _package_of(module),
                "rank": module_rank(module),
            }
            for module, summary in sorted(modules.items())
        },
        "edges": [edge.to_dict() for edge in edges],
        "violations": layering_violations(index, edges),
        "cycles": find_cycles(index, edges),
        "cache": {
            "files": len(index.summaries),
            "parsed": index.parsed,
            "reused": index.reused,
        },
    }
