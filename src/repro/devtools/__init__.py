"""Developer tooling: the determinism & simulation-safety linter.

``repro.devtools.lint`` (``repro lint`` on the CLI, or
``python -m repro.devtools.lint``) is an AST-based static-analysis
pass over ``src/`` and ``scripts/`` whose rules encode the invariants
the golden-trace and kernel-equivalence suites enforce dynamically —
so determinism regressions fail a lint job *before* they fail a
byte-identity diff.  See ``docs/ARCHITECTURE.md`` §12 for the rule
table and the baseline workflow.
"""

from __future__ import annotations

from typing import Any

# Lazy re-exports: importing `repro.devtools.lint` for `python -m`
# execution must not find the module pre-imported by its own package
# (runpy's RuntimeWarning), so the package namespace resolves names on
# first attribute access instead of at import time.
_EXPORTS = {
    "Baseline": "repro.devtools.baseline",
    "Finding": "repro.devtools.rules",
    "LintReport": "repro.devtools.lint",
    "lint_paths": "repro.devtools.lint",
    "build_index": "repro.devtools.lint",
    "findings_from_index": "repro.devtools.lint",
    "main": "repro.devtools.lint",
    "RULES": "repro.devtools.rules",
    "DETERMINISM_RULES": "repro.devtools.rules",
    "rule_table": "repro.devtools.rules",
    "ProjectIndex": "repro.devtools.index",
    "ModuleSummary": "repro.devtools.index",
    "ARCH_LAYERS": "repro.devtools.graphs",
    "graph_payload": "repro.devtools.graphs",
}


def __getattr__(name: str) -> Any:
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "lint_paths",
    "build_index",
    "findings_from_index",
    "main",
    "RULES",
    "DETERMINISM_RULES",
    "rule_table",
    "ProjectIndex",
    "ModuleSummary",
    "ARCH_LAYERS",
    "graph_payload",
]
