"""reprolint — determinism & simulation-safety static analysis.

Usage (all equivalent)::

    repro lint [paths ...] [options]
    python -m repro.devtools.lint [paths ...] [options]

With no paths, lints ``src`` and ``scripts`` under the current
directory.  Options::

    --format text|json    report style (default text)
    --baseline PATH       subtract a committed baseline (see baseline.py)
    --write-baseline      rewrite PATH from the current findings and exit
    --rules R001,R004     run a subset of rules
    --list-rules          print the rule table and exit
    --graph               dump the import graph / layering analysis (JSON)
    --cache PATH          index cache file (default .reprolint-cache.json)
    --no-cache            ignore and don't write the index cache

Exit codes: **0** clean (modulo baseline), **1** new findings,
**2** usage error (bad path/format/rule, malformed baseline).

The pass is whole-program: every file is parsed once into the
:class:`~repro.devtools.index.ProjectIndex` (content-fingerprint
cached, so warm runs reparse only changed files), the per-file AST
rules run on parse, and the graph rules (R007 parity, R009 layering,
R011 single-writer) run over the cached module summaries.

Suppression: non-determinism rules honour a
``# reprolint: disable=Rxxx`` pragma on the flagged line (or on the
first line of the flagged multi-line statement); the determinism
rules R001–R004 ignore pragmas *and* baseline entries — those
findings can only be fixed.  R013 accepts a justified pragma but can
never be baselined.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.devtools.baseline import Baseline, BaselineError
from repro.devtools.index import DEFAULT_CACHE_NAME, ProjectIndex
from repro.devtools.rules import (
    DETERMINISM_RULES,
    RULES,
    Finding,
    ImportMap,
    ModuleContext,
    Rule,
    rule_table,
)

__all__ = [
    "Finding",
    "LintReport",
    "build_index",
    "findings_from_index",
    "lint_paths",
    "main",
    "LintUsageError",
]


class LintUsageError(Exception):
    """Bad invocation (unknown rule, missing path, bad baseline): exit 2."""


# ---------------------------------------------------------------------------
# discovery & parsing
# ---------------------------------------------------------------------------


def _module_name(path: Path) -> str:
    """Dotted module name for reporting and rule scoping.

    Files under a ``src`` directory get their package-dotted name
    (``src/repro/cli.py`` -> ``repro.cli``); anything else is rooted at
    its top directory name (``scripts/regen_golden.py`` ->
    ``scripts.regen_golden``).
    """
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    elif len(parts) > 1:
        parts = parts[-2:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Python files under the given files/directories, sorted."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.add(path)
        elif path.is_dir():
            files.update(p for p in path.rglob("*.py"))
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    return sorted(files)


def load_context(path: Path, root: Optional[Path] = None) -> ModuleContext:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    try:
        rel = path.relative_to(root or Path.cwd())
    except ValueError:
        rel = path
    module = _module_name(rel)
    return ModuleContext(
        path=path,
        rel_path=rel.as_posix(),
        module=module,
        tree=tree,
        lines=source.splitlines(),
        imports=ImportMap.collect(tree, module),
    )


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------


def _suppressed(finding: Finding, pragmas: Dict[int, Tuple[str, ...]]) -> bool:
    """True when pragma coverage disables this (non-determinism) rule.

    Coverage comes from the module summary: the pragma's own line plus,
    for simple multi-line statements, every continuation line — so a
    pragma on the first line of a wrapped call suppresses findings the
    parser anchors further down.
    """
    if finding.rule_id in DETERMINISM_RULES:
        return False
    return finding.rule_id in pragmas.get(finding.line, ())


def build_index(
    paths: Sequence[str | Path],
    root: Optional[Path] = None,
    cache: Optional[str | Path] = None,
) -> ProjectIndex:
    """Index every Python file under ``paths``.

    All per-file rules run on each (re)parsed file so the cache stays
    complete regardless of any ``--rules`` subset in effect.
    """
    files = discover_files(paths)
    index = ProjectIndex(root=root or Path.cwd(), cache_path=cache)
    index.build(files, RULES)
    return index


def findings_from_index(
    index: ProjectIndex, rules: Sequence[Rule] = RULES
) -> list[Finding]:
    """Pragma-filtered findings for ``rules`` from a built index."""
    selected = {r.rule_id for r in rules}
    findings: list[Finding] = []
    for rel_path in sorted(index.findings):
        pragmas = index.pragmas_for(rel_path)
        for finding in index.findings[rel_path]:
            if finding.rule_id in selected and not _suppressed(finding, pragmas):
                findings.append(finding)
    for rule in rules:
        for finding in rule.check_index(index):
            if not _suppressed(finding, index.pragmas_for(finding.path)):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] = RULES,
    root: Optional[Path] = None,
    cache: Optional[str | Path] = None,
) -> list[Finding]:
    """Run the rule set over every Python file under ``paths``.

    Findings come back sorted by (path, line, rule) and already
    filtered through inline pragmas; baseline subtraction is the
    caller's concern (see :class:`Baseline`).  Pass ``cache`` to reuse
    and update an index cache file across runs.
    """
    index = build_index(paths, root=root, cache=cache)
    findings = findings_from_index(index, rules)
    index.save_cache()
    return findings


class LintReport:
    """Findings + baseline arithmetic + reporters."""

    def __init__(self, findings: list[Finding], baseline: Optional[Baseline] = None):
        self.findings = findings
        self.baseline = baseline
        self.new = baseline.filter_new(findings) if baseline else list(findings)

    @property
    def ok(self) -> bool:
        return not self.new

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_text(self) -> str:
        lines = []
        for f in self.new:
            lines.append(f"{f.path}:{f.line}:{f.col + 1}: {f.rule_id} {f.message}")
            lines.append(f"    hint: {f.hint}")
        baselined = len(self.findings) - len(self.new)
        summary = f"{len(self.new)} finding(s)"
        if baselined:
            summary += f" ({baselined} baselined occurrence(s) suppressed)"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "version": 1,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.new],
            "baselined": len(self.findings) - len(self.new),
            "counts": self._counts(),
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def _counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.new:
            counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
        return counts


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & simulation-safety static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src and scripts)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="report format (default text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON; its findings don't fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule subset (e.g. R001,R004)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="dump the import graph, layering analysis and cache stats "
        "as JSON and exit 0",
    )
    parser.add_argument(
        "--cache",
        default=DEFAULT_CACHE_NAME,
        help=f"project index cache file (default {DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and don't write the index cache",
    )
    return parser


def _select_rules(spec: Optional[str]) -> tuple[Rule, ...]:
    if spec is None:
        return RULES
    wanted = {r.strip().upper() for r in spec.split(",") if r.strip()}
    known = {r.rule_id for r in RULES}
    unknown = wanted - known
    if unknown or not wanted:
        raise LintUsageError(
            f"unknown rule id(s): {sorted(unknown) or spec!r}; "
            f"known: {sorted(known)}"
        )
    return tuple(r for r in RULES if r.rule_id in wanted)


def _default_paths() -> list[str]:
    paths = [p for p in ("src", "scripts") if Path(p).is_dir()]
    if not paths:
        raise LintUsageError(
            "no paths given and neither ./src nor ./scripts exists"
        )
    return paths


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits 2 on usage errors already
        return int(exc.code or 0)
    if args.list_rules:
        for rule_id, title, _hint in rule_table():
            print(f"{rule_id}  {title}")
        return 0
    cache = None if args.no_cache else args.cache
    try:
        rules = _select_rules(args.rules)
        paths = args.paths or _default_paths()
        index = build_index(paths, cache=cache)
        if args.graph:
            from repro.devtools.graphs import graph_payload

            index.save_cache()
            print(json.dumps(graph_payload(index), indent=2, sort_keys=True))
            return 0
        findings = findings_from_index(index, rules)
        index.save_cache()
        if args.write_baseline:
            if not args.baseline:
                raise LintUsageError("--write-baseline requires --baseline PATH")
            Baseline.from_findings(findings).save(args.baseline)
            print(f"wrote {len(findings)} finding(s) to {args.baseline}")
            return 0
        baseline = Baseline.load(args.baseline) if args.baseline else None
    except (LintUsageError, BaselineError, OSError, SyntaxError) as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return 2
    report = LintReport(findings, baseline)
    print(report.to_json() if args.fmt == "json" else report.to_text())
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
