"""reprolint — determinism & simulation-safety static analysis.

Usage (all equivalent)::

    repro lint [paths ...] [options]
    python -m repro.devtools.lint [paths ...] [options]

With no paths, lints ``src`` and ``scripts`` under the current
directory.  Options::

    --format text|json    report style (default text)
    --baseline PATH       subtract a committed baseline (see baseline.py)
    --write-baseline      rewrite PATH from the current findings and exit
    --rules R001,R004     run a subset of rules
    --list-rules          print the rule table and exit

Exit codes: **0** clean (modulo baseline), **1** new findings,
**2** usage error (bad path/format/rule, malformed baseline).

Suppression: non-determinism rules (R005–R008) honour a trailing
``# reprolint: disable=R005`` pragma on the flagged line; the
determinism rules R001–R004 ignore pragmas *and* baseline entries —
those findings can only be fixed.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.devtools.baseline import Baseline, BaselineError
from repro.devtools.rules import (
    DETERMINISM_RULES,
    RULES,
    Finding,
    ImportMap,
    ModuleContext,
    Rule,
    rule_table,
)

__all__ = ["Finding", "LintReport", "lint_paths", "main", "LintUsageError"]

_PRAGMA = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9, ]+)")


class LintUsageError(Exception):
    """Bad invocation (unknown rule, missing path, bad baseline): exit 2."""


# ---------------------------------------------------------------------------
# discovery & parsing
# ---------------------------------------------------------------------------


def _module_name(path: Path) -> str:
    """Dotted module name for reporting and rule scoping.

    Files under a ``src`` directory get their package-dotted name
    (``src/repro/cli.py`` -> ``repro.cli``); anything else is rooted at
    its top directory name (``scripts/regen_golden.py`` ->
    ``scripts.regen_golden``).
    """
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    elif len(parts) > 1:
        parts = parts[-2:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Python files under the given files/directories, sorted."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.add(path)
        elif path.is_dir():
            files.update(p for p in path.rglob("*.py"))
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    return sorted(files)


def load_context(path: Path, root: Optional[Path] = None) -> ModuleContext:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    try:
        rel = path.relative_to(root or Path.cwd())
    except ValueError:
        rel = path
    module = _module_name(rel)
    return ModuleContext(
        path=path,
        rel_path=rel.as_posix(),
        module=module,
        tree=tree,
        lines=source.splitlines(),
        imports=ImportMap.collect(tree, module),
    )


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------


def _suppressed(finding: Finding, ctx: ModuleContext) -> bool:
    """True when a same-line pragma disables this (non-determinism) rule."""
    if finding.rule_id in DETERMINISM_RULES:
        return False
    if finding.line - 1 >= len(ctx.lines):
        return False
    match = _PRAGMA.search(ctx.lines[finding.line - 1])
    if not match:
        return False
    codes = {c.strip() for c in match.group(1).split(",")}
    return finding.rule_id in codes


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] = RULES,
    root: Optional[Path] = None,
) -> list[Finding]:
    """Run the rule set over every Python file under ``paths``.

    Findings come back sorted by (path, line, rule) and already
    filtered through inline pragmas; baseline subtraction is the
    caller's concern (see :class:`Baseline`).
    """
    ctxs = [load_context(p, root=root) for p in discover_files(paths)]
    findings: list[Finding] = []
    for ctx in ctxs:
        for rule in rules:
            if not rule.applies_to(ctx.module):
                continue
            for finding in rule.check(ctx):
                if not _suppressed(finding, ctx):
                    findings.append(finding)
    for rule in rules:
        findings.extend(rule.check_project(ctxs))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


class LintReport:
    """Findings + baseline arithmetic + reporters."""

    def __init__(self, findings: list[Finding], baseline: Optional[Baseline] = None):
        self.findings = findings
        self.baseline = baseline
        self.new = baseline.filter_new(findings) if baseline else list(findings)

    @property
    def ok(self) -> bool:
        return not self.new

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_text(self) -> str:
        lines = []
        for f in self.new:
            lines.append(f"{f.path}:{f.line}:{f.col + 1}: {f.rule_id} {f.message}")
            lines.append(f"    hint: {f.hint}")
        baselined = len(self.findings) - len(self.new)
        summary = f"{len(self.new)} finding(s)"
        if baselined:
            summary += f" ({baselined} baselined occurrence(s) suppressed)"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "version": 1,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.new],
            "baselined": len(self.findings) - len(self.new),
            "counts": self._counts(),
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def _counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.new:
            counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
        return counts


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & simulation-safety static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src and scripts)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="report format (default text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON; its findings don't fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule subset (e.g. R001,R004)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def _select_rules(spec: Optional[str]) -> tuple[Rule, ...]:
    if spec is None:
        return RULES
    wanted = {r.strip().upper() for r in spec.split(",") if r.strip()}
    known = {r.rule_id for r in RULES}
    unknown = wanted - known
    if unknown or not wanted:
        raise LintUsageError(
            f"unknown rule id(s): {sorted(unknown) or spec!r}; "
            f"known: {sorted(known)}"
        )
    return tuple(r for r in RULES if r.rule_id in wanted)


def _default_paths() -> list[str]:
    paths = [p for p in ("src", "scripts") if Path(p).is_dir()]
    if not paths:
        raise LintUsageError(
            "no paths given and neither ./src nor ./scripts exists"
        )
    return paths


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits 2 on usage errors already
        return int(exc.code or 0)
    if args.list_rules:
        for rule_id, title, _hint in rule_table():
            print(f"{rule_id}  {title}")
        return 0
    try:
        rules = _select_rules(args.rules)
        paths = args.paths or _default_paths()
        findings = lint_paths(paths, rules=rules)
        if args.write_baseline:
            if not args.baseline:
                raise LintUsageError("--write-baseline requires --baseline PATH")
            Baseline.from_findings(findings).save(args.baseline)
            print(f"wrote {len(findings)} finding(s) to {args.baseline}")
            return 0
        baseline = Baseline.load(args.baseline) if args.baseline else None
    except (LintUsageError, BaselineError, OSError, SyntaxError) as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return 2
    report = LintReport(findings, baseline)
    print(report.to_json() if args.fmt == "json" else report.to_text())
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
