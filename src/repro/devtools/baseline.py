"""Finding baselines: burn legacy debt down without blocking new work.

A baseline is a committed JSON file mapping finding *fingerprints* to
occurrence counts.  ``repro lint --baseline lint-baseline.json``
subtracts baselined occurrences from the current findings, so legacy
violations don't fail the build while any **new** violation does.

Fingerprints are line-number-free — ``rule_id:path:stripped source
line`` — so unrelated edits above a baselined finding don't resurrect
it.  Identical source lines in one file share a fingerprint; the
stored count keeps "one more copy of an already-baselined line" a new
finding.

The determinism rules (R001–R004) admit **zero** suppressions: their
entries are rejected at load time (the violation must be fixed, not
baselined), and :meth:`Baseline.from_findings` refuses to write them.
The determinism-taint rule R013 is also unbaselinable — a wall-clock
value flowing into a replayable artifact is never legacy debt — but,
unlike R001–R004, it accepts an inline pragma with a justifying
comment for flows that are deliberate telemetry.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.core.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.devtools.lint import Finding

__all__ = ["Baseline", "BaselineError", "BASELINE_VERSION"]

BASELINE_VERSION = 1

#: Rules whose findings may never be baselined (determinism rules,
#: plus the determinism-taint rule — pragma-able but not legacy debt).
_UNSUPPRESSABLE: frozenset[str] = frozenset(
    {"R001", "R002", "R003", "R004", "R013"}
)


class BaselineError(ReproError):
    """A baseline file is malformed or contains forbidden entries."""


@dataclass(frozen=True)
class Baseline:
    """An immutable fingerprint -> allowed-occurrence-count table."""

    fingerprints: Mapping[str, int] = field(default_factory=dict)

    @staticmethod
    def load(path: str | Path) -> "Baseline":
        """Read a baseline file, validating schema and rule eligibility."""
        raw = Path(path).read_text(encoding="utf-8")
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"baseline {path} must be an object with version={BASELINE_VERSION}"
            )
        table = payload.get("findings", {})
        if not isinstance(table, dict):
            raise BaselineError(f"baseline {path}: 'findings' must be an object")
        fingerprints: dict[str, int] = {}
        for fp, count in table.items():
            if not isinstance(fp, str) or not isinstance(count, int) or count < 1:
                raise BaselineError(
                    f"baseline {path}: entry {fp!r}: {count!r} is malformed"
                )
            rule_id = fp.split(":", 1)[0]
            if rule_id in _UNSUPPRESSABLE:
                raise BaselineError(
                    f"baseline {path}: {fp!r} suppresses determinism rule "
                    f"{rule_id}, which admits zero suppressions — fix the "
                    "violation instead"
                )
            fingerprints[fp] = count
        return Baseline(fingerprints)

    @staticmethod
    def from_findings(findings: Iterable["Finding"]) -> "Baseline":
        """Baseline for the given findings (determinism rules refused)."""
        counts: Counter[str] = Counter()
        for finding in findings:
            if finding.rule_id in _UNSUPPRESSABLE:
                raise BaselineError(
                    f"{finding.path}:{finding.line}: determinism rule "
                    f"{finding.rule_id} cannot be baselined — fix the violation"
                )
            counts[finding.fingerprint()] += 1
        return Baseline(dict(counts))

    def save(self, path: str | Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": dict(sorted(self.fingerprints.items())),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def filter_new(self, findings: Iterable["Finding"]) -> list["Finding"]:
        """Findings not covered by this baseline, in input order.

        Each fingerprint's first ``count`` occurrences are absorbed;
        everything beyond that (and every unknown fingerprint) is new.
        """
        budget = dict(self.fingerprints)
        fresh: list["Finding"] = []
        for finding in findings:
            fp = finding.fingerprint()
            left = budget.get(fp, 0)
            if left > 0:
                budget[fp] = left - 1
            else:
                fresh.append(finding)
        return fresh

    def __len__(self) -> int:
        return sum(self.fingerprints.values())


EMPTY_BASELINE = Baseline({})
