"""Host-failure injection for the cloud simulation.

Production clusters lose PMs; a packing scheduler must leave enough
aggregate headroom to re-place the victims.  This module extends the
vector engine with host-failure events: at a failure's timestamp the
host is drained and marked dead (its remaining capacity is zero), every
victim VM is re-submitted through the global scheduler, and VMs that no
longer fit anywhere are recorded as *lost*.

Used by the failure-injection tests and the resilience example; not a
paper experiment (the paper's evaluation assumes healthy PMs) but a
substrate a production adopter needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.config import SlackVMConfig
from repro.core.errors import SimulationError
from repro.core.types import VMRequest
from repro.hardware.machine import MachineSpec
from repro.simulator.engine import PlacementRecord, SimulationResult, Timeline
from repro.simulator.events import EventKind, workload_events
from repro.simulator.vectorpool import POLICIES, VectorCluster

__all__ = ["HostFailure", "FaultReport", "FaultySimulation"]


@dataclass(frozen=True, slots=True)
class HostFailure:
    """One PM dies (permanently) at ``time``."""

    time: float
    host: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SimulationError(f"failure time must be >= 0, got {self.time}")
        if self.host < 0:
            raise SimulationError(f"host index must be >= 0, got {self.host}")


@dataclass
class FaultReport:
    """What happened at each injected failure."""

    failed_hosts: list[int] = field(default_factory=list)
    recovered_vms: int = 0
    lost_vms: list[str] = field(default_factory=list)


class FaultySimulation:
    """A :class:`~repro.simulator.vectorpool.VectorSimulation` variant
    that injects permanent host failures and re-places the victims."""

    def __init__(
        self,
        machines: Sequence[MachineSpec],
        failures: Sequence[HostFailure],
        config: SlackVMConfig | None = None,
        policy: str = "progress",
    ):
        if policy not in POLICIES:
            raise SimulationError(f"unknown policy {policy!r}")
        self.machines = list(machines)
        for f in failures:
            if f.host >= len(self.machines):
                raise SimulationError(
                    f"failure targets host {f.host} but the cluster has "
                    f"{len(self.machines)} hosts"
                )
        self.failures = sorted(failures, key=lambda f: f.time)
        self.config = config or SlackVMConfig()
        self.policy = policy
        self.report = FaultReport()

    def _fail_host(self, cluster: VectorCluster, host: int,
                   placements: dict[str, PlacementRecord],
                   alive: set[str]) -> None:
        victims = [cluster.request_of(vm_id) for vm_id in cluster.vms_on(host)]
        for vm in victims:
            cluster.remove(vm.vm_id)
        cluster.kill_host(host)
        self.report.failed_hosts.append(host)
        # Victims re-enter through the scheduler, largest first (the
        # hardest to place; a classic recovery ordering).
        for vm in sorted(
            victims, key=lambda r: (-r.spec.vcpus, -r.spec.mem_gb, r.vm_id)
        ):
            feasible, _g, _o = cluster.feasibility(vm)
            if feasible.any():
                target = cluster.select_best(feasible, vm, self.policy)
                record = cluster.deploy(vm, target)
                placements[vm.vm_id] = record
                self.report.recovered_vms += 1
            else:
                self.report.lost_vms.append(vm.vm_id)
                alive.discard(vm.vm_id)

    def run(self, workload: list[VMRequest]) -> SimulationResult:
        cluster = VectorCluster(self.machines, self.config)
        queue = workload_events(list(workload))
        placements: dict[str, PlacementRecord] = {}
        rejections: list[str] = []
        timeline = Timeline()
        pooled = 0
        alive: set[str] = set()
        pending_failures = list(self.failures)
        self.report = FaultReport()
        for event in queue.drain():
            while pending_failures and pending_failures[0].time <= event.time:
                failure = pending_failures.pop(0)
                self._fail_host(cluster, failure.host, placements, alive)
            vm = event.vm
            if event.kind is EventKind.ARRIVAL:
                feasible, _g, _o = cluster.feasibility(vm)
                if not feasible.any():
                    rejections.append(vm.vm_id)
                else:
                    host = cluster.select_best(feasible, vm, self.policy)
                    record = cluster.deploy(vm, host)
                    pooled += record.pooled
                    placements[vm.vm_id] = record
                    alive.add(vm.vm_id)
            else:
                if vm.vm_id in alive:
                    cluster.remove(vm.vm_id)
                    alive.discard(vm.vm_id)
            timeline.record(
                event.time,
                float(cluster.alloc_cpu.sum()),
                float(cluster.alloc_mem.sum()),
            )
        for failure in pending_failures:  # failures after the last event
            self._fail_host(cluster, failure.host, placements, alive)
        return SimulationResult(
            num_hosts=cluster.num_hosts,
            capacity_cpu=float(cluster.cap_cpu.sum()),
            capacity_mem=float(cluster.cap_mem.sum()),
            placements=placements,
            rejections=rejections,
            timeline=timeline,
            pooled_placements=pooled,
        )
