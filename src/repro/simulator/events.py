"""Discrete-event machinery for the cloud simulation.

A minimal, deterministic event queue: events fire in timestamp order;
at equal timestamps departures fire before arrivals (so a leaving VM's
resources are reusable immediately, matching CloudSimPlus semantics),
and insertion order breaks remaining ties.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterator

from repro.core.types import VMRequest

__all__ = ["EventKind", "Event", "EventQueue", "workload_events"]


class EventKind(IntEnum):
    """Priority doubles as the equal-timestamp ordering."""

    DEPARTURE = 0
    ARRIVAL = 1


@dataclass(frozen=True, slots=True, order=True)
class Event:
    time: float
    kind: EventKind
    seq: int
    vm: VMRequest = field(compare=False)


class EventQueue:
    """A heap-backed event queue with deterministic ordering."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def push(self, time: float, kind: EventKind, vm: VMRequest) -> None:
        heapq.heappush(self._heap, Event(time, kind, self._seq, vm))
        self._seq += 1

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Event]:
        while self._heap:
            yield heapq.heappop(self._heap)


def workload_events(workload: list[VMRequest]) -> EventQueue:
    """Queue every arrival and (finite) departure of a trace."""
    q = EventQueue()
    for vm in sorted(workload, key=lambda v: (v.arrival, v.vm_id)):
        q.push(vm.arrival, EventKind.ARRIVAL, vm)
        if vm.departure is not None:
            q.push(vm.departure, EventKind.DEPARTURE, vm)
    return q
