"""Discrete-event machinery for the cloud simulation.

A minimal, deterministic event queue: events fire in timestamp order;
at equal timestamps departures fire before arrivals (so a leaving VM's
resources are reusable immediately, matching CloudSimPlus semantics),
and insertion order breaks remaining ties.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterator

from repro.core.types import VMRequest

__all__ = [
    "EventKind",
    "Event",
    "EventQueue",
    "workload_events",
    "workload_event_list",
    "iter_event_batches",
]


class EventKind(IntEnum):
    """Priority doubles as the equal-timestamp ordering."""

    DEPARTURE = 0
    ARRIVAL = 1


@dataclass(frozen=True, slots=True, order=True)
class Event:
    time: float
    kind: EventKind
    seq: int
    vm: VMRequest = field(compare=False)


class EventQueue:
    """A heap-backed event queue with deterministic ordering."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def push(self, time: float, kind: EventKind, vm: VMRequest) -> None:
        heapq.heappush(self._heap, Event(time, kind, self._seq, vm))
        self._seq += 1

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Event]:
        while self._heap:
            yield heapq.heappop(self._heap)

    def sorted_drain(self) -> list[Event]:
        """Drain every queued event at once, in exactly ``drain()`` order.

        The event order is total (``(time, kind, seq)`` — no two events
        compare equal), so one key-based sort yields the same sequence
        as repeated heap pops at a fraction of the comparison cost; the
        vector engine's uninstrumented hot loop iterates the returned
        list directly.  Events pushed afterwards start a fresh queue.
        """
        events = self._heap
        self._heap = []
        events.sort(key=lambda e: (e.time, e.kind, e.seq))
        return events


def workload_events(workload: list[VMRequest]) -> EventQueue:
    """Queue every arrival and (finite) departure of a trace."""
    q = EventQueue()
    for vm in sorted(workload, key=lambda v: (v.arrival, v.vm_id)):
        q.push(vm.arrival, EventKind.ARRIVAL, vm)
        if vm.departure is not None:
            q.push(vm.departure, EventKind.DEPARTURE, vm)
    return q


def workload_event_list(workload: list[VMRequest]) -> list[Event]:
    """Every event of a trace as a time-ordered list.

    Exactly ``workload_events(workload).sorted_drain()`` — same events,
    same ``seq`` numbering, same total order — without paying the heap
    invariant on every push.  The vector engine's uninstrumented fast
    path iterates this list directly.
    """
    events: list[Event] = []
    seq = 0
    for vm in sorted(workload, key=lambda v: (v.arrival, v.vm_id)):
        events.append(Event(vm.arrival, EventKind.ARRIVAL, seq, vm))
        seq += 1
        if vm.departure is not None:
            events.append(Event(vm.departure, EventKind.DEPARTURE, seq, vm))
            seq += 1
    events.sort(key=lambda e: (e.time, e.kind, e.seq))
    return events


def iter_event_batches(
    events: list[Event],
) -> Iterator[tuple[list[Event], list[Event]]]:
    """Group a time-ordered event list into same-timestamp batches.

    Yields ``(departures, arrivals)`` per distinct timestamp, in
    timestamp order.  Concatenating every batch reproduces ``events``
    exactly: within a timestamp the total order ``(time, kind, seq)``
    already places all departures (kind 0) before all arrivals (kind 1),
    so the split is a cut, not a reorder.  Timestamps are grouped by
    exact float equality — the same comparison the event ordering uses,
    so "same batch" and "tied in the queue" are the same predicate.

    The vector engine drains each batch through one grouped dispatch
    (bulk departures, then arrivals) instead of per-event dispatch,
    amortising cache synchronisation across the batch.
    """
    n = len(events)
    i = 0
    while i < n:
        t = events[i].time
        j = i
        while j < n and events[j].time == t:  # reprolint: disable=R005
            j += 1
        k = i
        while k < j and events[k].kind == EventKind.DEPARTURE:
            k += 1
        yield events[i:k], events[k:j]
        i = j
