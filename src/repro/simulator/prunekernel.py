"""Hierarchical candidate-pruning kernel (``kernel="pruned"``).

The incremental kernel (:mod:`repro.simulator.vectorpool`) made the
hot path allocation-free and event-proportional, but ``select()`` is
still *linear in the host count*: scored policies end in an ``argmax``
over the full masked-score array, and ``first_fit`` scans the per-level
candidate mask block by block.  At 100k hosts those O(n) sweeps are
the whole event budget.

This module makes selection **sublinear** by partitioning the fleet
into fixed blocks of :data:`PRUNE_BLOCK` hosts and maintaining, per
partition, the small summaries that let ``select()`` touch only a
candidate slice:

* **Partition maxima** (scored policies) — every cached VM shape
  already keeps its masked score vector ``where(feasible, scores,
  -inf)`` up to date through the mutation log; the pruned kernel
  additionally keeps ``blockmax[b] = masked[b*B:(b+1)*B].max()``.  The
  argmax then costs ``O(n/B + B)`` instead of ``O(n)``: argmax over
  the partition maxima finds the first block attaining the global
  maximum, argmax inside that one block finds the winning host.  Both
  argmaxes return the *first* maximal entry, so the composition picks
  exactly the host ``np.argmax`` would — same bits, same tie-breaks.

* **Candidate counters** (``first_fit``) — per (level, block) counts
  of hosts whose cached candidate bit is set.  The block scan skips
  every partition whose counter is zero without touching the mask, so
  a nearly-full fleet costs ``O(n/B)`` per miss instead of ``O(n)``.

Invalidation is lazy and rides the structures that already exist:
score partitions are refreshed from the same mutation-log replay that
refreshes the masked vectors (only the touched blocks are reduced
again), and candidate counters are adjusted bit-by-bit inside the
dirty-host candidate refresh.  When a replay finds the log too far
gone (more than a quarter of the fleet touched, bulk ``invalidate()``,
``set_effective_capacity`` rewrites, cache-capacity evictions) the
kernel **falls back to the full vectorized scan** and rebuilds the
partition summaries from scratch — correctness never depends on the
summaries, only speed does.

Every number the pruned kernel compares or returns is produced by the
*incremental kernel's own arithmetic* (`_masked_scores`,
`_refresh_shape`, `_feasibility_block`); this module only reorders
*which hosts get looked at*.  That is why the pruned kernel is
bit-identical to ``incremental`` and ``naive`` — a contract enforced
by the three-way kernel-equivalence property suite, the golden-trace
corpus, and the scale-tier conformance fixtures
(``tests/fixtures/golden/scale/``).

The reprolint rule R007 extends its signature-parity check to this
module: every ``pruned_<name>`` function must keep the parameter
names, order and defaults of ``VectorCluster.<name>``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.core.types import VMRequest
    from repro.simulator.vectorpool import VectorCluster

__all__ = [
    "PRUNE_BLOCK",
    "PruneState",
    "pruned_select",
    "pruned_first_feasible",
]

#: Hosts per partition.  ``select()`` costs ``O(n/B + B)``, so the
#: sweet spot is near ``sqrt(n)``; 256 keeps both sides of the split
#: in the hundreds across the whole 5k-100k bench range while staying
#: a no-op for small clusters (one partition == the old full scan).
PRUNE_BLOCK = 256


class PruneState:
    """Partition bookkeeping attached to a ``kernel="pruned"`` cluster.

    Holds the geometry (block size, ``reduceat`` offsets) and the
    per-(level, partition) candidate counters; the per-shape partition
    maxima live inside the shape-cache entries themselves (they share
    the entry's lifetime and mutation-log position).
    """

    __slots__ = ("block", "num_blocks", "starts", "cand_counts")

    def __init__(self, num_hosts: int, num_levels: int, block: int = PRUNE_BLOCK):
        self.block = block
        self.num_blocks = (num_hosts + block - 1) // block
        #: Partition start offsets, the ``np.{maximum,add}.reduceat``
        #: index vector for whole-structure rebuilds.
        self.starts = np.arange(0, num_hosts, block, dtype=np.intp)
        #: ``cand_counts[li, b]`` — number of set candidate bits for
        #: level ``li`` in partition ``b``.  Zero means "no host in
        #: this partition can possibly admit a VM of this level", the
        #: first-fit skip condition.
        self.cand_counts = np.zeros((num_levels, self.num_blocks), dtype=np.int64)

    # -- partition maxima (scored policies) --------------------------------

    def block_maxima(self, masked: np.ndarray) -> np.ndarray:
        """Fresh per-partition maxima of a masked score vector."""
        return np.maximum.reduceat(masked, self.starts)

    def update_block_maxima(
        self, masked: np.ndarray, blockmax: np.ndarray, idx: np.ndarray
    ) -> None:
        """Re-reduce only the partitions containing hosts in ``idx``.

        ``masked`` has already been refreshed at ``idx``; partitions
        not represented in ``idx`` kept every input unchanged, so their
        maxima are still exact.
        """
        n = masked.shape[0]
        block = self.block
        for b in np.unique(idx // block):
            lo = int(b) * block
            hi = min(lo + block, n)
            blockmax[b] = masked[lo:hi].max()

    def argmax(self, masked: np.ndarray, blockmax: np.ndarray) -> int:
        """``int(np.argmax(masked))`` in ``O(n/B + B)``.

        ``np.argmax`` returns the first maximal entry.  The first
        partition attaining the global maximum necessarily contains
        the first maximal host (any earlier host with that value would
        have lifted its own partition's maximum), and the in-partition
        argmax returns the first maximal host within it — so the
        composition is exact, ties and all.
        """
        b = int(np.argmax(blockmax))
        lo = b * self.block
        hi = min(lo + self.block, masked.shape[0])
        return lo + int(np.argmax(masked[lo:hi]))

    # -- candidate counters (first_fit) ------------------------------------

    def rebuild_cand_counts(self, cand: np.ndarray) -> None:
        """Recount every partition from a freshly rebuilt mask."""
        np.add.reduceat(
            cand.astype(np.int64), self.starts, axis=1, out=self.cand_counts
        )

    def adjust_cand_bit(self, li: int, host: int, old: bool, new: bool) -> None:
        """Single-bit counter maintenance (the dirty-host path)."""
        if old != new:
            self.cand_counts[li, host // self.block] += 1 if new else -1


def pruned_select(cluster: "VectorCluster", vm: "VMRequest", policy: str) -> Optional[int]:
    """Best feasible host under ``policy``; bit-identical to
    :meth:`VectorCluster.select`, sublinear in hosts.

    Scored policies reuse the incremental kernel's shape cache — same
    keys, same masked vectors, same mutation-log replay — with a
    per-partition maxima array appended to each entry.  Shapes the
    cache cannot serve (non-uniform memory ratios, capacity overflow)
    take the incremental kernel's full-scan path unchanged.
    """
    if policy == "first_fit":
        return pruned_first_feasible(cluster, vm)
    if not cluster._uniform_mem:
        feasible, _growth, _own = cluster.feasibility(vm)
        if not feasible.any():
            return None
        return cluster.select_best(feasible, vm, policy)
    state = cluster._prune
    assert state is not None  # kernel="pruned" always builds one
    li = cluster._vm_level_index(vm)
    # Same cache key as the incremental kernel (see select() there for
    # why the raw ratio participates).
    key = (li, vm.level.ratio, vm.spec.vcpus, vm.spec.mem_gb, policy)
    entry = cluster._shape_cache.get(key)
    pos = len(cluster._mutlog)
    if entry is None:
        if len(cluster._shape_cache) >= cluster._shape_cache_cap:
            feasible, _growth, _own = cluster.feasibility(vm)
            if not feasible.any():
                return None
            return cluster.select_best(feasible, vm, policy)
        masked = cluster._masked_scores(vm, li, policy, None)
        entry = [pos, masked, state.block_maxima(masked)]
        cluster._shape_cache[key] = entry
    elif entry[0] < pos:
        touched = cluster._mutlog[entry[0] : pos]
        if len(touched) * 4 >= cluster.num_hosts:
            # The log is too far gone: full vectorized rebuild of both
            # the masked vector and its partition maxima (the "heap
            # ran dry" fallback).
            cluster._masked_scores(vm, li, policy, entry[1])
            entry[2] = state.block_maxima(entry[1])
        else:
            cluster._sync()
            idx = np.fromiter(sorted(set(touched)), dtype=np.intp)
            cluster._refresh_shape(entry[1], idx, vm, li, policy)
            state.update_block_maxima(entry[1], entry[2], idx)
        entry[0] = pos
    j = state.argmax(entry[1], entry[2])
    best = entry[1].item(j)
    if math.isinf(best) and best < 0:
        return None
    return int(j)


def pruned_first_feasible(cluster: "VectorCluster", vm: "VMRequest") -> Optional[int]:
    """Lowest-index feasible host; bit-identical to
    :meth:`VectorCluster.first_feasible`, skipping empty partitions.

    The candidate bit is a *necessary* admission condition, so a
    partition whose counter is zero provably contains no feasible host
    and is skipped without reading the mask.  Partitions are visited in
    ascending order and exact feasibility decides inside each, so the
    first hit is the global lowest-index feasible host.
    """
    li = cluster._vm_level_index(vm)
    cluster._sync_cand()
    state = cluster._prune
    assert state is not None
    counts = state.cand_counts[li]
    n = cluster.num_hosts
    block = state.block
    for b in np.flatnonzero(counts):
        lo = int(b) * block
        hi = min(lo + block, n)
        feasible = cluster._feasibility_block(vm, li, slice(lo, hi))
        if feasible.any():
            return lo + int(np.argmax(feasible))
    return None
