"""Discrete-event cloud simulator: events, engines, metrics, sizing."""

from repro.simulator.engine import (
    PlacementRecord,
    Simulation,
    SimulationResult,
    Timeline,
    build_hosts,
)
from repro.simulator.conformance import result_stream
from repro.simulator.events import (
    Event,
    EventKind,
    EventQueue,
    iter_event_batches,
    workload_events,
)
from repro.simulator.faults import FaultReport, FaultySimulation, HostFailure
from repro.simulator.metrics import (
    UnallocatedShares,
    combine_unallocated,
    pm_savings_percent,
    time_averaged_unallocated,
    unallocated_at_peak,
)
from repro.simulator.refkernel import naive_feasibility, naive_scores
from repro.simulator.sizing import SizingResult, demand_lower_bound, minimal_cluster
from repro.simulator.vectorpool import (
    KERNELS,
    POLICIES,
    VectorCluster,
    VectorSimulation,
)

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "workload_events",
    "iter_event_batches",
    "result_stream",
    "HostFailure",
    "FaultySimulation",
    "FaultReport",
    "Simulation",
    "SimulationResult",
    "PlacementRecord",
    "Timeline",
    "build_hosts",
    "VectorCluster",
    "VectorSimulation",
    "POLICIES",
    "KERNELS",
    "naive_feasibility",
    "naive_scores",
    "UnallocatedShares",
    "unallocated_at_peak",
    "time_averaged_unallocated",
    "combine_unallocated",
    "pm_savings_percent",
    "SizingResult",
    "demand_lower_bound",
    "minimal_cluster",
]
